"""Tests for the bounded distributions and their analytic moments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    Mixture,
    PointMass,
    TruncatedNormal,
    TwoPoint,
    UniformValues,
)


def empirical_check(dist, n: int = 200_000, seed: int = 0, tol: float = 0.5):
    """Sampled mean must match the analytic mean within tolerance."""
    rng = np.random.default_rng(seed)
    sample = dist.sample(rng, n)
    assert sample.shape == (n,)
    assert np.all(sample >= dist.lo - 1e-9) and np.all(sample <= dist.hi + 1e-9)
    assert sample.mean() == pytest.approx(dist.mean, abs=tol)


class TestPointMass:
    def test_moments(self):
        d = PointMass(42.0)
        assert d.mean == 42.0 and d.variance == 0.0
        assert np.all(d.sample(np.random.default_rng(0), 10) == 42.0)


class TestUniform:
    def test_moments(self):
        d = UniformValues(10.0, 30.0)
        assert d.mean == 20.0
        assert d.variance == pytest.approx(400 / 12)
        empirical_check(d)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformValues(5.0, 5.0)


class TestTwoPoint:
    def test_moments(self):
        d = TwoPoint(0.3, 0.0, 100.0)
        assert d.mean == pytest.approx(30.0)
        assert d.variance == pytest.approx(0.3 * 0.7 * 10_000)
        empirical_check(d)

    def test_values_are_two_points(self):
        d = TwoPoint(0.5, 0.0, 100.0)
        s = d.sample(np.random.default_rng(1), 1000)
        assert set(np.unique(s)) <= {0.0, 100.0}

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            TwoPoint(1.5)

    @given(p=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_mean_formula(self, p):
        assert TwoPoint(p, 0.0, 100.0).mean == pytest.approx(100.0 * p)


class TestTruncatedNormal:
    def test_symmetric_case_mean_unchanged(self):
        d = TruncatedNormal(50.0, 5.0, 0.0, 100.0)
        assert d.mean == pytest.approx(50.0, abs=1e-9)
        empirical_check(d)

    def test_truncation_pulls_mean_inward(self):
        # Parent mean at the lower bound: truncation pulls the mean up.
        d = TruncatedNormal(0.0, 10.0, 0.0, 100.0)
        assert d.mean > 0.0
        empirical_check(d, tol=0.3)

    def test_variance_shrinks_under_truncation(self):
        wide = TruncatedNormal(50.0, 40.0, 0.0, 100.0)
        assert wide.variance < 40.0**2

    def test_analytic_mean_matches_reference_formula(self):
        # Cross-check against the standard formula computed independently:
        # alpha = -4/3, beta = 16/3; mean = 20 + 15*phi(alpha)/(1-Phi(alpha)).
        import math

        alpha = (0.0 - 20.0) / 15.0
        phi = math.exp(-0.5 * alpha**2) / math.sqrt(2 * math.pi)
        big_phi = 0.5 * (1 + math.erf(alpha / math.sqrt(2)))
        expected = 20.0 + 15.0 * phi / (1.0 - big_phi)
        d = TruncatedNormal(20.0, 15.0, 0.0, 100.0)
        # The reference above ignores the (negligible) upper tail at beta=16/3.
        assert d.mean == pytest.approx(expected, abs=1e-4)

    def test_no_mass_raises(self):
        d = TruncatedNormal(-1000.0, 1.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            _ = d.mean

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            TruncatedNormal(50.0, 0.0)

    @given(
        mu=st.floats(min_value=5, max_value=95),
        sigma=st.floats(min_value=0.5, max_value=20),
    )
    @settings(max_examples=40)
    def test_mean_always_inside_bounds(self, mu, sigma):
        d = TruncatedNormal(mu, sigma, 0.0, 100.0)
        assert 0.0 < d.mean < 100.0


class TestMixture:
    def test_mean_is_weighted_average(self):
        m = Mixture(
            [PointMass(10.0), PointMass(30.0)],
            weights=[0.25, 0.75],
        )
        assert m.mean == pytest.approx(25.0)
        assert m.variance == pytest.approx(0.25 * 225 + 0.75 * 25)

    def test_equal_weights_default(self):
        m = Mixture([PointMass(0.0), PointMass(100.0)])
        assert m.mean == pytest.approx(50.0)

    def test_sampling_matches_mean(self):
        m = Mixture(
            [
                TruncatedNormal(20.0, 3.0, 0.0, 100.0),
                TruncatedNormal(70.0, 5.0, 0.0, 100.0),
            ]
        )
        empirical_check(m)

    def test_support_is_union(self):
        m = Mixture([UniformValues(0, 10), UniformValues(50, 60)])
        assert m.lo == 0 and m.hi == 60

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            Mixture([])
        with pytest.raises(ValueError):
            Mixture([PointMass(1.0)], weights=[0.0])
        with pytest.raises(ValueError):
            Mixture([PointMass(1.0), PointMass(2.0)], weights=[-1.0, 2.0])
