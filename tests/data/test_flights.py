"""Tests for the synthetic flight-records dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.flights import (
    CARRIERS,
    FLIGHT_ATTRIBUTES,
    make_flights_population,
    make_flights_table,
)


class TestPopulation:
    def test_all_carriers_present(self):
        pop = make_flights_population("arrival_delay", total_rows=10**6, seed=0)
        assert sorted(pop.group_names) == sorted(code for code, _ in CARRIERS)

    def test_sizes_follow_shares(self):
        pop = make_flights_population("arrival_delay", total_rows=10**6, seed=0)
        sizes = dict(zip(pop.group_names, pop.sizes()))
        assert sizes["WN"] > sizes["HA"]  # big vs small carrier
        assert abs(pop.total_size - 10**6) < len(CARRIERS) + 1

    def test_density_estimation_scaleup_preserves_means(self):
        # The paper scales by density estimation: distributions unchanged,
        # sizes scaled.  Means must be identical across scales.
        small = make_flights_population("arrival_delay", total_rows=10**5, seed=0)
        big = make_flights_population("arrival_delay", total_rows=10**7, seed=0)
        assert np.allclose(small.true_means(), big.true_means())
        assert big.total_size == pytest.approx(100 * small.total_size, rel=0.01)

    def test_conflicting_pairs_exist(self):
        # The delay attributes must contain close pairs (the Table 3 driver).
        pop = make_flights_population("arrival_delay", total_rows=10**6, seed=0)
        assert float(pop.eta().min()) < 1.0

    def test_elapsed_time_easier_than_delays(self):
        elapsed = make_flights_population("elapsed_time", total_rows=10**6, seed=0)
        arrival = make_flights_population("arrival_delay", total_rows=10**6, seed=0)
        assert elapsed.difficulty() < arrival.difficulty()

    @pytest.mark.parametrize("attribute", sorted(FLIGHT_ATTRIBUTES))
    def test_bounds_respected(self, attribute):
        pop = make_flights_population(attribute, total_rows=10**5, seed=1)
        _, c, _ = FLIGHT_ATTRIBUTES[attribute]
        assert pop.c == c
        assert np.all(pop.true_means() > 0) and np.all(pop.true_means() < c)

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            make_flights_population("bogus")


class TestTable:
    def test_schema(self):
        t = make_flights_table(num_rows=5_000, seed=0)
        for col in ("carrier", "elapsed_time", "arrival_delay", "departure_delay",
                    "distance", "year"):
            assert col in t
        assert t.num_rows == 5_000

    def test_values_bounded(self):
        t = make_flights_table(num_rows=5_000, seed=0)
        for attribute, (_, c, _) in FLIGHT_ATTRIBUTES.items():
            vals = t.column(attribute)
            assert vals.min() >= 0 and vals.max() <= c

    def test_carrier_mix(self):
        t = make_flights_table(num_rows=50_000, seed=0)
        carriers, counts = np.unique(t.column("carrier"), return_counts=True)
        assert len(carriers) == len(CARRIERS)
        by = dict(zip(carriers, counts))
        assert by["WN"] > by["AQ"]
