"""Tests for groups, samplers, and populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import TwoPoint
from repro.data.population import MaterializedGroup, Population, VirtualGroup


class TestMaterializedGroup:
    def test_mean_and_size(self):
        g = MaterializedGroup("g", np.array([1.0, 2.0, 3.0]))
        assert g.size == 3 and g.true_mean == pytest.approx(2.0)

    def test_wor_sampler_is_permutation(self):
        values = np.arange(100, dtype=np.float64)
        g = MaterializedGroup("g", values)
        sampler = g.sampler(np.random.default_rng(0), without_replacement=True)
        draws = sampler.draw(100)
        assert np.array_equal(np.sort(draws), values)
        with pytest.raises(ValueError):
            sampler.draw(1)

    def test_wor_prefix_is_uniform_subset(self):
        # First-m draws must hit each element with equal probability.
        values = np.arange(10, dtype=np.float64)
        g = MaterializedGroup("g", values)
        counts = np.zeros(10)
        for s in range(500):
            sampler = g.sampler(np.random.default_rng(s), without_replacement=True)
            first = sampler.draw(3)
            counts[first.astype(int)] += 1
        freq = counts / counts.sum()
        assert np.all(np.abs(freq - 0.1) < 0.03)

    def test_wor_draw_is_read_only(self):
        """Regression: draw used to hand out a writable view of the run's
        permutation, so a caller mutating the block corrupted later draws."""
        values = np.arange(50, dtype=np.float64)
        g = MaterializedGroup("g", values)
        sampler = g.sampler(np.random.default_rng(3), without_replacement=True)
        reference = g.sampler(np.random.default_rng(3), without_replacement=True)
        block = sampler.draw(10)
        with pytest.raises(ValueError):
            block[0] = -1.0
        # Even a copy-then-mutate must leave the stream untouched.
        _ = block.copy()
        reference.draw(10)
        assert np.array_equal(sampler.draw(40), reference.draw(40))

    def test_wr_sampler_unbounded(self):
        g = MaterializedGroup("g", np.array([5.0, 7.0]))
        sampler = g.sampler(np.random.default_rng(1), without_replacement=False)
        draws = sampler.draw(1000)
        assert set(np.unique(draws)) <= {5.0, 7.0}
        assert sampler.consumed == 1000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MaterializedGroup("g", np.array([]))


class TestVirtualGroup:
    def test_analytic_mean(self):
        g = VirtualGroup("g", TwoPoint(0.4, 0.0, 100.0), 10**9)
        assert g.true_mean == pytest.approx(40.0)
        assert g.size == 10**9

    def test_draws_from_distribution(self):
        g = VirtualGroup("g", TwoPoint(0.4, 0.0, 100.0), 1000)
        sampler = g.sampler(np.random.default_rng(2), without_replacement=True)
        draws = sampler.draw(500)
        assert set(np.unique(draws)) <= {0.0, 100.0}

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            VirtualGroup("g", TwoPoint(0.5), 0)


class TestPopulation:
    def _pop(self):
        return Population(
            groups=[
                MaterializedGroup("a", np.full(10, 10.0)),
                MaterializedGroup("b", np.full(20, 30.0)),
                MaterializedGroup("c", np.full(30, 31.0)),
            ],
            c=100.0,
        )

    def test_shape_accessors(self):
        pop = self._pop()
        assert pop.k == 3
        assert pop.total_size == 60
        assert pop.sizes().tolist() == [10, 20, 30]
        assert pop.group_names == ["a", "b", "c"]
        assert np.allclose(pop.true_means(), [10.0, 30.0, 31.0])

    def test_eta(self):
        pop = self._pop()
        # a: min(|10-30|, |10-31|) = 20; b: min(20, 1) = 1; c: 1.
        assert np.allclose(pop.eta(), [20.0, 1.0, 1.0])

    def test_difficulty(self):
        assert self._pop().difficulty() == pytest.approx((100.0 / 1.0) ** 2)

    def test_difficulty_infinite_on_ties(self):
        pop = Population(
            groups=[
                MaterializedGroup("a", np.full(5, 10.0)),
                MaterializedGroup("b", np.full(5, 10.0)),
            ],
            c=100.0,
        )
        assert pop.difficulty() == float("inf")

    def test_single_group_eta_infinite(self):
        pop = Population(groups=[MaterializedGroup("a", np.full(5, 1.0))], c=10.0)
        assert pop.eta()[0] == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            Population(groups=[], c=1.0)
        with pytest.raises(ValueError):
            Population(groups=[MaterializedGroup("a", np.ones(3))], c=0.0)
        with pytest.raises(ValueError):
            Population(
                groups=[
                    MaterializedGroup("a", np.ones(3)),
                    MaterializedGroup("a", np.ones(3)),
                ],
                c=1.0,
            )

    def test_from_arrays(self):
        pop = Population.from_arrays(["x", "y"], [np.ones(4), np.zeros(2)], c=1.0)
        assert pop.k == 2 and pop.total_size == 6
        with pytest.raises(ValueError):
            Population.from_arrays(["x"], [np.ones(1), np.ones(1)], c=1.0)
