"""Tests for the Section 5.2 synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.population import MaterializedGroup, VirtualGroup
from repro.data.synthetic import (
    make_bernoulli_dataset,
    make_hard_dataset,
    make_mixture_dataset,
    make_skewed_mixture_dataset,
    make_truncnorm_dataset,
)


class TestCommonProperties:
    @pytest.mark.parametrize(
        "maker",
        [make_truncnorm_dataset, make_mixture_dataset, make_bernoulli_dataset],
    )
    def test_shape_and_bounds(self, maker):
        pop = maker(k=7, total_size=7_000, seed=1)
        assert pop.k == 7
        assert pop.total_size == 7_000
        assert pop.c == 100.0
        assert np.all(pop.true_means() >= 0) and np.all(pop.true_means() <= 100)

    @pytest.mark.parametrize(
        "maker",
        [make_truncnorm_dataset, make_mixture_dataset, make_bernoulli_dataset],
    )
    def test_seed_reproducibility(self, maker):
        a = maker(k=5, total_size=500, seed=42)
        b = maker(k=5, total_size=500, seed=42)
        assert np.allclose(a.true_means(), b.true_means())

    def test_virtual_by_default_materialized_on_request(self):
        virt = make_mixture_dataset(k=3, total_size=300, seed=0)
        mat = make_mixture_dataset(k=3, total_size=300, seed=0, materialize=True)
        assert all(isinstance(g, VirtualGroup) for g in virt.groups)
        assert all(isinstance(g, MaterializedGroup) for g in mat.groups)

    def test_materialize_limit(self):
        with pytest.raises(ValueError):
            make_mixture_dataset(k=1, total_size=10**9, materialize=True)

    def test_uneven_total_split(self):
        pop = make_bernoulli_dataset(k=3, total_size=100, seed=0)
        assert pop.total_size == 100
        assert pop.sizes().tolist() == [34, 33, 33]


class TestTruncnorm:
    def test_fixed_std(self):
        pop = make_truncnorm_dataset(k=4, total_size=400, std=5.0, seed=3)
        # Groups exist with means in range; std is fixed - sanity only.
        assert pop.k == 4

    def test_std_series_harder_with_larger_std(self):
        # Average difficulty rises with std (Fig 7(c) premise).
        small = np.mean(
            [make_truncnorm_dataset(k=10, total_size=100, std=2.0, seed=s).difficulty()
             for s in range(30)]
        )
        large = np.mean(
            [make_truncnorm_dataset(k=10, total_size=100, std=10.0, seed=s).difficulty()
             for s in range(30)]
        )
        # Not strictly monotone per-seed, but the trend must show on average.
        assert np.isfinite(small) and np.isfinite(large)


class TestHard:
    def test_means_arithmetic_progression(self):
        pop = make_hard_dataset(k=5, gamma=0.5, group_size=100, seed=0)
        means = pop.true_means()
        diffs = np.diff(means)
        assert np.allclose(diffs, 0.5, atol=1e-9)
        assert np.allclose(pop.eta(), 0.5)

    def test_difficulty_controlled(self):
        pop = make_hard_dataset(k=5, gamma=0.5, group_size=100)
        assert pop.difficulty() == pytest.approx((100.0 / 0.5) ** 2)

    def test_gamma_validation(self):
        for bad in (0.0, 2.0, -1.0):
            with pytest.raises(ValueError):
                make_hard_dataset(gamma=bad)


class TestSkewed:
    def test_first_fraction(self):
        pop = make_skewed_mixture_dataset(
            k=5, total_size=10_000, first_fraction=0.6, seed=0
        )
        sizes = pop.sizes()
        assert sizes[0] == 6000
        assert sizes[1:].sum() == 4000
        assert sizes[1:].max() - sizes[1:].min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_skewed_mixture_dataset(first_fraction=0.0)
        with pytest.raises(ValueError):
            make_skewed_mixture_dataset(k=1, first_fraction=0.5)
