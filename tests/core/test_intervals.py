"""Tests for interval-overlap logic, including hypothesis equivalence checks."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    pairwise_overlap_matrix,
    separated_equal_width,
    separated_equal_width_batch,
    separated_general,
)


def brute_force_separated(centers: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """O(k^2) oracle for 'interval i intersects no other interval'."""
    k = len(centers)
    out = np.ones(k, dtype=bool)
    for i in range(k):
        for j in range(k):
            if i != j and abs(centers[i] - centers[j]) <= widths[i] + widths[j]:
                out[i] = False
    return out


class TestSeparatedEqualWidth:
    def test_single_interval_trivially_separated(self):
        assert separated_equal_width(np.array([5.0]), 1.0).tolist() == [True]

    def test_well_separated(self):
        out = separated_equal_width(np.array([0.0, 10.0, 20.0]), 1.0)
        assert out.all()

    def test_chain_overlap(self):
        # 0-2-4: each neighbor pair overlaps with eps=1.5.
        out = separated_equal_width(np.array([0.0, 2.0, 4.0]), 1.5)
        assert not out.any()

    def test_one_isolated_in_the_middle_of_pairs(self):
        out = separated_equal_width(np.array([0.0, 1.0, 50.0, 99.0, 100.0]), 1.0)
        assert out.tolist() == [False, False, True, False, False]

    def test_touching_intervals_count_as_overlap(self):
        # distance exactly 2*eps -> closed intervals touch -> not separated.
        out = separated_equal_width(np.array([0.0, 2.0]), 1.0)
        assert not out.any()

    @given(
        centers=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=12
        ),
        eps=st.floats(min_value=1e-3, max_value=50.0),
    )
    @settings(max_examples=200)
    def test_matches_brute_force(self, centers, eps):
        centers = np.array(centers, dtype=np.float64)
        widths = np.full(len(centers), eps)
        expected = brute_force_separated(centers, widths)
        got = separated_equal_width(centers, eps)
        assert np.array_equal(got, expected)


class TestSeparatedGeneral:
    def test_zero_width_points(self):
        # Points are separated iff distinct.
        out = separated_general(np.array([1.0, 1.0, 3.0]), np.zeros(3))
        assert out.tolist() == [False, False, True]

    def test_wide_interval_reaches_far(self):
        # Interval 0 has width 10 and swallows interval 1 at distance 5.
        out = separated_general(np.array([0.0, 5.0]), np.array([10.0, 0.1]))
        assert not out.any()

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=200)
    def test_matches_brute_force(self, data):
        centers = np.array([d[0] for d in data])
        widths = np.array([d[1] for d in data])
        expected = brute_force_separated(centers, widths)
        got = separated_general(centers, widths)
        assert np.array_equal(got, expected)


class TestSeparatedEqualWidthBatch:
    def test_matches_per_row(self):
        rng = np.random.default_rng(0)
        est = rng.uniform(0, 100, size=(50, 8))
        eps = rng.uniform(0.5, 10.0, size=50)
        batch = separated_equal_width_batch(est, eps)
        for b in range(50):
            row = separated_equal_width(est[b], float(eps[b]))
            assert np.array_equal(batch[b], row)

    def test_single_column(self):
        out = separated_equal_width_batch(np.zeros((4, 1)), np.ones(4))
        assert out.all()

    def test_shape_validation(self):
        import pytest

        with pytest.raises(ValueError):
            separated_equal_width_batch(np.zeros(5), np.ones(5))
        with pytest.raises(ValueError):
            separated_equal_width_batch(np.zeros((5, 2)), np.ones(4))


class TestPairwiseOverlapMatrix:
    def test_symmetric_no_self_overlap(self):
        m = pairwise_overlap_matrix(np.array([0.0, 1.0, 10.0]), np.array([1.0, 1.0, 1.0]))
        assert np.array_equal(m, m.T)
        assert not m.diagonal().any()
        assert m[0, 1] and not m[0, 2]

    def test_consistent_with_separated_general(self):
        rng = np.random.default_rng(3)
        centers = rng.uniform(0, 100, 15)
        widths = rng.uniform(0, 10, 15)
        m = pairwise_overlap_matrix(centers, widths)
        sep = separated_general(centers, widths)
        assert np.array_equal(sep, ~m.any(axis=1))
