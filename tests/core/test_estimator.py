"""Tests for the incremental mean estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import RunningMean, prefix_means


class TestRunningMean:
    def test_empty_mean_undefined(self):
        with pytest.raises(ValueError):
            RunningMean().mean

    def test_add_sequence(self):
        rm = RunningMean()
        assert rm.add(2.0) == 2.0
        assert rm.add(4.0) == 3.0
        assert rm.count == 2

    def test_extend_matches_numpy(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(0, 100, 1000)
        rm = RunningMean()
        rm.extend(block)
        assert rm.mean == pytest.approx(block.mean())

    def test_extend_prefix_matches_one_at_a_time(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(0, 100, 257)
        rm1 = RunningMean()
        rm1.add(50.0)
        prefix = rm1.extend_prefix(block)
        rm2 = RunningMean()
        rm2.add(50.0)
        singles = np.array([rm2.add(x) for x in block])
        assert np.allclose(prefix, singles)
        assert rm1.mean == pytest.approx(rm2.mean)

    def test_rewind(self):
        rm = RunningMean()
        rm.extend(np.array([1.0, 2.0, 3.0]))
        snapshot = (rm.count, rm.total)
        rm.extend(np.array([100.0]))
        rm.rewind_to(*snapshot)
        assert rm.count == 3
        assert rm.mean == pytest.approx(2.0)

    def test_copy_independent(self):
        rm = RunningMean()
        rm.add(1.0)
        cp = rm.copy()
        cp.add(3.0)
        assert rm.count == 1 and cp.count == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RunningMean(count=-1)
        with pytest.raises(ValueError):
            RunningMean(total=5.0, count=0)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50)
    )
    @settings(max_examples=100)
    def test_mean_invariant(self, values):
        rm = RunningMean()
        for v in values:
            rm.add(v)
        assert rm.mean == pytest.approx(np.mean(values))


class TestPrefixMeans:
    def test_no_prior(self):
        out = prefix_means(0.0, 0, np.array([2.0, 4.0, 6.0]))
        assert np.allclose(out, [2.0, 3.0, 4.0])

    def test_with_prior(self):
        # prior: two samples summing to 10 (mean 5).
        out = prefix_means(10.0, 2, np.array([4.0]))
        assert out[0] == pytest.approx(14.0 / 3.0)

    def test_empty_block(self):
        assert prefix_means(1.0, 1, np.array([])).shape == (0,)
