"""Tests for the batched IFOCUS executor and its equivalence to the reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ifocus import run_ifocus
from repro.core.reference import run_ifocus_reference
from repro.engines.memory import InMemoryEngine
from repro.viz.properties import check_ordering
from tests.conftest import (
    make_materialized_population,
    make_twopoint_population,
    make_virtual_population,
)


class TestBasicBehaviour:
    def test_returns_all_groups(self, small_engine):
        res = run_ifocus(small_engine, delta=0.05, seed=1)
        assert res.k == 4
        assert len(res.groups) == 4
        assert len(res.inactive_order) == 4
        assert res.algorithm == "ifocus"

    def test_correct_ordering_well_separated(self, small_engine):
        res = run_ifocus(small_engine, delta=0.05, seed=1)
        true = small_engine.population.true_means()
        assert check_ordering(res.estimates, true)

    def test_estimates_close_to_truth(self, small_engine):
        res = run_ifocus(small_engine, delta=0.05, seed=2)
        true = small_engine.population.true_means()
        # Final half-widths bound the error (the guarantee held in this run).
        for g in res.groups:
            assert abs(g.estimate - true[g.index]) <= max(g.half_width, 1e-9) + 5.0

    def test_samples_bounded_by_group_sizes(self, small_engine):
        res = run_ifocus(small_engine, delta=0.05, seed=3)
        assert np.all(res.samples_per_group <= small_engine.population.sizes())

    def test_total_samples_consistent(self, small_engine):
        res = run_ifocus(small_engine, delta=0.05, seed=4)
        assert res.total_samples == int(res.samples_per_group.sum())
        assert res.stats.total_samples == res.total_samples

    def test_hard_pair_gets_more_samples(self, close_engine):
        res = run_ifocus(close_engine, delta=0.05, seed=5)
        # Groups 1 and 2 (42 vs 45) are the contentious pair; each must get
        # at least as many samples as every well-separated group.
        s = res.samples_per_group
        assert s[1] >= s.max() - 1
        assert s[2] >= s.max() - 1
        assert s[0] < s[1]

    def test_inactive_order_matches_finalized_rounds(self, close_engine):
        res = run_ifocus(close_engine, delta=0.05, seed=6)
        rounds = [res.groups[g].finalized_round for g in res.inactive_order]
        assert rounds == sorted(rounds)

    def test_single_group(self):
        pop = make_materialized_population([50.0], sizes=100)
        res = run_ifocus(InMemoryEngine(pop), delta=0.05, seed=0)
        # A single group is trivially separated at the first check (m=2).
        assert res.samples_per_group[0] == 2

    def test_invalid_delta(self, small_engine):
        with pytest.raises(ValueError):
            run_ifocus(small_engine, delta=0.0)
        with pytest.raises(ValueError):
            run_ifocus(small_engine, delta=1.0)

    def test_invalid_batching(self, small_engine):
        with pytest.raises(ValueError):
            run_ifocus(small_engine, initial_batch=0)
        with pytest.raises(ValueError):
            run_ifocus(small_engine, initial_batch=64, max_batch=32)

    def test_negative_resolution_rejected(self, small_engine):
        with pytest.raises(ValueError):
            run_ifocus(small_engine, resolution=-1.0)


class TestDeterminism:
    def test_same_seed_same_result(self, close_engine):
        r1 = run_ifocus(close_engine, delta=0.05, seed=42)
        r2 = run_ifocus(close_engine, delta=0.05, seed=42)
        assert np.array_equal(r1.estimates, r2.estimates)
        assert np.array_equal(r1.samples_per_group, r2.samples_per_group)

    def test_different_seed_different_draws(self, close_engine):
        r1 = run_ifocus(close_engine, delta=0.05, seed=1)
        r2 = run_ifocus(close_engine, delta=0.05, seed=2)
        assert not np.array_equal(r1.estimates, r2.estimates)

    def test_batch_size_invariance(self, close_engine):
        base = run_ifocus(close_engine, delta=0.05, seed=9)
        for ib, mb in [(1, 1), (3, 17), (500, 100000)]:
            res = run_ifocus(close_engine, delta=0.05, seed=9, initial_batch=ib, max_batch=max(ib, mb))
            assert np.allclose(base.estimates, res.estimates)
            assert np.array_equal(base.samples_per_group, res.samples_per_group)
            assert base.inactive_order == res.inactive_order


class TestReferenceEquivalence:
    def _assert_equivalent(self, engine, **kw):
        fast = run_ifocus(engine, **kw)
        ref = run_ifocus_reference(engine, **kw)
        assert np.allclose(fast.estimates, ref.estimates, rtol=1e-12, atol=1e-9)
        assert np.array_equal(fast.samples_per_group, ref.samples_per_group)
        assert fast.inactive_order == ref.inactive_order
        assert fast.rounds == ref.rounds

    def test_equivalence_default(self, close_engine):
        self._assert_equivalent(close_engine, delta=0.05, seed=13)

    def test_equivalence_with_replacement(self, close_engine):
        self._assert_equivalent(close_engine, delta=0.05, seed=14, without_replacement=False)

    def test_equivalence_resolution(self, close_engine):
        self._assert_equivalent(close_engine, delta=0.05, seed=15, resolution=2.0)

    def test_equivalence_heuristic(self, close_engine):
        self._assert_equivalent(close_engine, delta=0.05, seed=16, heuristic_factor=2.0)

    def test_equivalence_exhaustion(self):
        # Tiny groups with nearly equal means force full reads.
        pop = make_materialized_population([50.0, 50.4], sizes=60, spread=8.0, seed=3)
        self._assert_equivalent(InMemoryEngine(pop), delta=0.05, seed=17)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=5),
        spread=st.floats(min_value=1.0, max_value=15.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_equivalence_randomized(self, seed, k, spread):
        rng = np.random.default_rng(seed)
        means = rng.uniform(10, 90, k).tolist()
        pop = make_materialized_population(means, sizes=300, spread=spread, seed=seed + 1)
        self._assert_equivalent(InMemoryEngine(pop), delta=0.1, seed=seed)


class TestResolutionVariant:
    def test_resolution_cuts_samples_on_close_pair(self):
        # Means 0.5 apart: plain IFOCUS must drill far; r=2 stops early.
        pop = make_virtual_population([40.0, 40.5, 80.0], sizes=10**7, spread=5.0)
        engine = InMemoryEngine(pop)
        coarse = run_ifocus(engine, delta=0.05, resolution=2.0, seed=21)
        fine = run_ifocus(engine, delta=0.05, resolution=0.1, seed=21)
        assert coarse.total_samples < fine.total_samples
        assert coarse.algorithm == "ifocusr"

    def test_resolution_stop_bounds_close_pair_half_width(self):
        # Groups 0 and 1 (means 0.2 apart) cannot separate before eps < r/4,
        # so they must be finalized by the resolution stop with eps < r/4.
        pop = make_virtual_population([40.0, 40.2, 80.0], sizes=10**7)
        res = run_ifocus(InMemoryEngine(pop), delta=0.05, resolution=4.0, seed=22)
        for gid in (0, 1):
            assert res.groups[gid].half_width < 4.0 / 4.0


class TestExhaustion:
    def test_tiny_identical_groups_exhaust(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, 50)
        pop = make_materialized_population([50.0, 50.0], sizes=50, spread=10.0, seed=8)
        engine = InMemoryEngine(pop)
        res = run_ifocus(engine, delta=0.05, seed=23)
        # Both groups have close means and only 50 elements - they are read
        # in full and finalized exactly.
        assert all(g.exhausted for g in res.groups)
        true = engine.population.true_means()
        assert np.allclose(res.estimates, true)
        del values

    def test_exhausted_estimate_is_exact(self):
        pop = make_materialized_population([30.0, 30.1], sizes=40, spread=5.0, seed=9)
        engine = InMemoryEngine(pop)
        res = run_ifocus(engine, delta=0.05, seed=24)
        for g in res.groups:
            if g.exhausted:
                assert g.estimate == pytest.approx(engine.population.groups[g.index].true_mean)
                assert g.half_width == 0.0
                assert g.samples == engine.population.groups[g.index].size


class TestMaxRounds:
    def test_truncation_flag(self, close_engine):
        res = run_ifocus(close_engine, delta=0.05, seed=25, max_rounds=10)
        assert res.params["truncated"]
        assert res.rounds <= 10
        assert np.all(res.samples_per_group <= 10)

    def test_no_truncation_when_finishing_early(self, small_engine):
        res = run_ifocus(small_engine, delta=0.05, seed=26, max_rounds=10**7)
        assert not res.params["truncated"]


class TestTrace:
    def test_trace_recorded(self, close_engine):
        res = run_ifocus(close_engine, delta=0.05, seed=27, trace_every=10)
        assert res.trace is not None
        assert len(res.trace) > 0
        samples = res.trace.samples_series()
        assert np.all(np.diff(samples) > 0)
        counts = res.trace.active_counts()
        assert np.all(np.diff(counts) <= 0)  # active set only shrinks

    def test_trace_estimates_shape(self, close_engine):
        res = run_ifocus(close_engine, delta=0.05, seed=28, trace_every=25)
        mat = res.trace.estimate_matrix()
        assert mat.shape[1] == close_engine.k

    def test_trace_matches_reference(self, close_engine):
        fast = run_ifocus(close_engine, delta=0.05, seed=29, trace_every=7)
        ref = run_ifocus_reference(close_engine, delta=0.05, seed=29, trace_every=7)
        assert len(fast.trace) == len(ref.trace)
        for a, b in zip(fast.trace, ref.trace):
            assert a.round_index == b.round_index
            assert a.cumulative_samples == b.cumulative_samples
            assert a.active == b.active
            assert np.allclose(a.estimates, b.estimates)


class TestStatisticalGuarantee:
    @pytest.mark.slow
    def test_ordering_holds_with_high_probability(self):
        """Run many trials on a moderately hard instance; the failure rate
        must stay at or below delta (it is, in practice, far below)."""
        delta = 0.2
        failures = 0
        trials = 40
        pop = make_twopoint_population([0.30, 0.38, 0.55, 0.70], sizes=10**6)
        engine = InMemoryEngine(pop)
        true = pop.true_means()
        for t in range(trials):
            res = run_ifocus(engine, delta=delta, seed=1000 + t)
            if not check_ordering(res.estimates, true):
                failures += 1
        assert failures / trials <= delta

    @pytest.mark.slow
    def test_heuristic_factor_breaks_accuracy_eventually(self):
        """Fig 5(b): aggressive interval shrinking must cause mistakes on the
        hard instance while the honest schedule stays correct."""
        from repro.data.synthetic import make_hard_dataset

        honest_fails = 0
        aggressive_fails = 0
        trials = 25
        for t in range(trials):
            pop = make_hard_dataset(k=5, gamma=0.4, group_size=10**7, seed=t)
            engine = InMemoryEngine(pop)
            true = pop.true_means()
            honest = run_ifocus(engine, delta=0.05, resolution=1.0, seed=t)
            aggressive = run_ifocus(
                engine, delta=0.05, resolution=1.0, seed=t, heuristic_factor=8.0
            )
            honest_fails += not check_ordering(honest.estimates, true, resolution=1.0)
            aggressive_fails += not check_ordering(aggressive.estimates, true, resolution=1.0)
        assert honest_fails == 0
        assert aggressive_fails > 0
