"""Tests for the frozen-exact-obstacle rule.

A group read to exhaustion freezes at its *exact* mean.  Our executors keep
that frozen value as an obstacle: no active group may leave the active set
while its confidence interval still covers a frozen exact mean.  Without the
rule, an active group whose only close competitor exhausted early could
finalize on the wrong side of the competitor's exact average (see the module
docstring of repro.core.ifocus).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifocus import run_ifocus
from repro.core.reference import run_ifocus_reference
from repro.data.population import MaterializedGroup, Population
from repro.engines.memory import InMemoryEngine
from repro.viz.properties import check_ordering


def asymmetric_population(seed: int, gap: float = 0.6, tiny_size: int = 120) -> Population:
    """A tiny group (exhausts quickly) with a big group ``gap`` above it,
    plus a far-away easy group."""
    rng = np.random.default_rng(seed)
    small = np.clip(rng.normal(50.0, 10.0, tiny_size), 0, 100)
    big = np.clip(rng.normal(50.0 + gap, 10.0, 200_000), 0, 100)
    far = np.clip(rng.normal(90.0, 5.0, 200_000), 0, 100)
    return Population(
        groups=[
            MaterializedGroup("tiny", small),
            MaterializedGroup("big", big),
            MaterializedGroup("far", far),
        ],
        c=100.0,
    )


class TestObstacleRule:
    def test_big_group_keeps_sampling_past_frozen_value(self):
        pop = asymmetric_population(seed=1)
        engine = InMemoryEngine(pop)
        res = run_ifocus(engine, delta=0.05, seed=2)
        assert res.groups[0].exhausted
        # The big group must have sampled enough that its interval cleared
        # the tiny group's exact mean.
        big = res.groups[1]
        tiny_exact = pop.groups[0].true_mean
        assert abs(big.estimate - tiny_exact) > big.half_width or big.exhausted

    def test_ordering_correct_across_seeds(self):
        failures = 0
        for seed in range(20):
            pop = asymmetric_population(seed=100 + seed)
            engine = InMemoryEngine(pop)
            res = run_ifocus(engine, delta=0.1, seed=seed)
            failures += not check_ordering(res.estimates, pop.true_means())
        assert failures <= 2  # delta = 0.1; typically 0

    def test_batched_and_reference_agree(self):
        pop = asymmetric_population(seed=3)
        engine = InMemoryEngine(pop)
        fast = run_ifocus(engine, delta=0.05, seed=4)
        ref = run_ifocus_reference(engine, delta=0.05, seed=4)
        assert np.allclose(fast.estimates, ref.estimates)
        assert np.array_equal(fast.samples_per_group, ref.samples_per_group)
        assert fast.inactive_order == ref.inactive_order

    def test_far_group_not_blocked(self):
        # The obstacle rule must not force extra work on groups whose
        # intervals never cover the frozen value.
        pop = asymmetric_population(seed=5)
        engine = InMemoryEngine(pop)
        res = run_ifocus(engine, delta=0.05, seed=6)
        far = res.groups[2]
        big = res.groups[1]
        assert far.samples < big.samples

    def test_both_sides_exhaust_on_tiny_gap(self):
        # With a sub-resolvable gap the big group must end up reading a lot
        # (the small group is exact at ~gap below; the big group samples
        # until its interval clears that point).  The tiny group is made
        # large enough (5000 rows) that its empirical mean pins the gap.
        pop = asymmetric_population(seed=7, gap=0.3, tiny_size=5_000)
        engine = InMemoryEngine(pop)
        res = run_ifocus(engine, delta=0.05, seed=8)
        assert res.groups[0].exhausted
        assert check_ordering(res.estimates, pop.true_means())
        assert res.groups[1].samples > 50_000
