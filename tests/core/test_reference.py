"""Tests for the reference loop's hooks and the reactivation variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import LoopContext, default_policy, run_ifocus_reference
from repro.engines.memory import InMemoryEngine
from repro.viz.properties import check_ordering
from tests.conftest import make_materialized_population


class TestHooks:
    def test_on_finalize_called_once_per_group(self, small_engine):
        seen: list[int] = []
        run_ifocus_reference(
            small_engine, delta=0.05, seed=1, on_finalize=lambda gid, o: seen.append(gid)
        )
        assert sorted(seen) == list(range(small_engine.k))

    def test_on_finalize_order_matches_inactive_order(self, close_engine):
        seen: list[int] = []
        res = run_ifocus_reference(
            close_engine, delta=0.05, seed=2, on_finalize=lambda gid, o: seen.append(gid)
        )
        assert seen == res.inactive_order

    def test_min_half_width_forces_extra_sampling(self, small_engine):
        plain = run_ifocus_reference(small_engine, delta=0.05, seed=3)
        tight = run_ifocus_reference(small_engine, delta=0.05, seed=3, min_half_width=1.0)
        assert tight.total_samples > plain.total_samples
        for g in tight.groups:
            if not g.exhausted:
                assert g.half_width < 1.0

    def test_terminate_when_stops_early(self, close_engine):
        res = run_ifocus_reference(
            close_engine, delta=0.05, seed=4, terminate_when=lambda ctx: ctx.round_index >= 50
        )
        assert res.rounds <= 51

    def test_custom_policy_receives_context(self, small_engine):
        contexts: list[int] = []

        def spy_policy(ctx: LoopContext) -> np.ndarray:
            contexts.append(ctx.round_index)
            return default_policy(ctx)

        run_ifocus_reference(small_engine, delta=0.05, seed=5, policy=spy_policy)
        assert contexts and contexts == sorted(contexts)

    def test_algorithm_name_override(self, small_engine):
        res = run_ifocus_reference(small_engine, delta=0.05, seed=6, algorithm_name="custom")
        assert res.algorithm == "custom"


class TestLoopContext:
    def test_resolved_pair_fraction(self):
        ctx = LoopContext(
            estimates=np.zeros(4),
            half_widths=np.zeros(4),
            active=np.array([True, True, False, False]),
            counts=np.ones(4, dtype=np.int64),
            round_index=1,
            sizes=np.full(4, 10),
        )
        # 2 inactive of 4: 2*1 / (4*3) = 1/6.
        assert ctx.resolved_pair_fraction() == pytest.approx(1 / 6)

    def test_single_group_fraction_is_one(self):
        ctx = LoopContext(
            estimates=np.zeros(1),
            half_widths=np.zeros(1),
            active=np.array([True]),
            counts=np.ones(1, dtype=np.int64),
            round_index=1,
            sizes=np.array([5]),
        )
        assert ctx.resolved_pair_fraction() == 1.0


class TestReactivation:
    def test_reactivation_runs_and_orders(self, close_engine):
        res = run_ifocus_reference(close_engine, delta=0.05, seed=7, reactivation=True)
        assert check_ordering(res.estimates, close_engine.population.true_means())
        assert res.params["reactivation"]

    def test_reactivation_never_cheaper(self):
        # Option (b) can only add samples relative to option (a) on the same
        # draws (re-activated groups resume sampling).
        pop = make_materialized_population([30.0, 33.0, 70.0], sizes=20_000, spread=12.0, seed=8)
        engine = InMemoryEngine(pop)
        a = run_ifocus_reference(engine, delta=0.1, seed=9, reactivation=False)
        b = run_ifocus_reference(engine, delta=0.1, seed=9, reactivation=True)
        assert b.total_samples >= a.total_samples
