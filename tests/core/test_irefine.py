"""Tests for IREFINE (Algorithms 2/3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifocus import run_ifocus
from repro.core.irefine import run_irefine
from repro.engines.memory import InMemoryEngine
from repro.viz.properties import check_ordering
from tests.conftest import make_materialized_population, make_virtual_population


class TestBasics:
    def test_orders_correctly(self, small_engine):
        res = run_irefine(small_engine, delta=0.05, seed=1)
        assert check_ordering(res.estimates, small_engine.population.true_means())
        assert res.algorithm == "irefine"

    def test_costs_more_than_ifocus_on_virtual(self):
        # The aggressive halving wastes samples vs IFOCUS (Theorem 3.10's
        # extra log(1/eta) factor); compare on an instance with room to halve.
        pop = make_virtual_population([20.0, 45.0, 47.0, 80.0], sizes=10**7)
        engine = InMemoryEngine(pop)
        ifocus = run_ifocus(engine, delta=0.05, seed=2)
        irefine = run_irefine(engine, delta=0.05, seed=2)
        assert irefine.total_samples > ifocus.total_samples

    def test_rounds_are_iterations(self, small_engine):
        res = run_irefine(small_engine, delta=0.05, seed=3)
        # eps halves from c/2 each iteration; a handful suffice here.
        assert 1 <= res.rounds <= 20

    def test_sample_count_quadruples_per_iteration(self, small_engine):
        res = run_irefine(small_engine, delta=0.05, seed=4)
        # Final per-group count is dominated by the last ESTIMATEMEAN call.
        assert res.total_samples > 0
        assert res.stats.total_samples == res.total_samples

    def test_resolution_variant(self):
        pop = make_virtual_population([40.0, 40.3, 80.0], sizes=10**7)
        engine = InMemoryEngine(pop)
        relaxed = run_irefine(engine, delta=0.05, resolution=4.0, seed=5)
        plain = run_irefine(engine, delta=0.05, seed=5, max_iterations=24)
        assert relaxed.total_samples < plain.total_samples
        assert relaxed.algorithm == "irefiner"

    def test_exhaustion_scans_small_groups(self):
        pop = make_materialized_population([50.0, 50.2], sizes=100, spread=8.0, seed=6)
        engine = InMemoryEngine(pop)
        res = run_irefine(engine, delta=0.05, seed=7)
        assert all(g.exhausted for g in res.groups)
        assert np.allclose(res.estimates, pop.true_means())
        # Earlier refinement draws accrue on top of the final full scan.
        assert np.all(res.samples_per_group >= pop.sizes())

    def test_max_iterations_truncates(self):
        pop = make_virtual_population([50.0, 50.0001], sizes=10**9)
        res = run_irefine(InMemoryEngine(pop), delta=0.05, seed=8, max_iterations=6)
        assert res.params["truncated"]

    def test_invalid_args(self, small_engine):
        with pytest.raises(ValueError):
            run_irefine(small_engine, delta=0.0)
        with pytest.raises(ValueError):
            run_irefine(small_engine, resolution=-1.0)

    def test_deterministic_given_seed(self, small_engine):
        a = run_irefine(small_engine, delta=0.05, seed=9)
        b = run_irefine(small_engine, delta=0.05, seed=9)
        assert np.array_equal(a.estimates, b.estimates)
        assert np.array_equal(a.samples_per_group, b.samples_per_group)

    @pytest.mark.slow
    def test_statistical_correctness(self):
        delta = 0.2
        fails = 0
        trials = 25
        for t in range(trials):
            pop = make_materialized_population(
                [30.0, 36.0, 60.0], sizes=50_000, spread=15.0, seed=100 + t
            )
            engine = InMemoryEngine(pop)
            res = run_irefine(engine, delta=delta, seed=t)
            fails += not check_ordering(res.estimates, pop.true_means())
        assert fails / trials <= delta
