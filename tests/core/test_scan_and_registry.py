"""Tests for the SCAN baseline and the algorithm registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import ALGORITHMS, algorithm_names, run_algorithm
from repro.core.scan import run_scan
from repro.engines.memory import InMemoryEngine
from repro.needletail.cost import NeedletailCostModel
from tests.conftest import make_materialized_population


class TestScan:
    def test_exact_means(self, small_engine):
        res = run_scan(small_engine)
        assert np.allclose(res.estimates, small_engine.population.true_means())
        assert all(g.exhausted for g in res.groups)
        assert res.algorithm == "scan"

    def test_reads_everything(self, small_engine):
        res = run_scan(small_engine)
        assert np.array_equal(res.samples_per_group, small_engine.population.sizes())

    def test_linear_cost(self):
        pop_small = make_materialized_population([10.0, 90.0], sizes=1000)
        pop_big = make_materialized_population([10.0, 90.0], sizes=10_000)
        small = run_scan(InMemoryEngine(pop_small, cost_model=NeedletailCostModel()))
        big = run_scan(InMemoryEngine(pop_big, cost_model=NeedletailCostModel()))
        ratio = big.stats.total_seconds / small.stats.total_seconds
        assert ratio == pytest.approx(10.0, rel=0.01)

    def test_ignores_sampling_kwargs(self, small_engine):
        res = run_scan(small_engine, delta=0.05, seed=3)
        assert res.params["exact"]


class TestRegistry:
    def test_names(self):
        assert algorithm_names() == [
            "ifocus", "ifocusr", "irefine", "irefiner", "roundrobin", "roundrobinr",
        ]
        assert "scan" in algorithm_names(include_scan=True)
        assert set(algorithm_names(include_scan=True)) == set(ALGORITHMS)

    def test_dispatch_all(self, small_engine):
        for name in algorithm_names(include_scan=True):
            res = run_algorithm(name, small_engine, delta=0.05, resolution=1.0, seed=1)
            assert res.k == small_engine.k
            if name != "scan":
                assert res.algorithm == name

    def test_r_variants_require_resolution(self, small_engine):
        for name in ("ifocusr", "irefiner", "roundrobinr"):
            with pytest.raises(ValueError):
                run_algorithm(name, small_engine, resolution=0.0)

    def test_plain_variants_force_zero_resolution(self, small_engine):
        # Passing a resolution to a plain variant must not relax it.
        res = run_algorithm("ifocus", small_engine, delta=0.05, resolution=5.0, seed=2)
        assert res.params["resolution"] == 0.0

    def test_unknown_name(self, small_engine):
        with pytest.raises(KeyError):
            run_algorithm("bogus", small_engine)

    def test_case_insensitive(self, small_engine):
        res = run_algorithm("IFOCUS", small_engine, delta=0.05, seed=3)
        assert res.algorithm == "ifocus"
