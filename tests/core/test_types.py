"""Tests for result/trace types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import GroupOutcome, OrderingResult, RoundSnapshot, Trace


def _result(estimates) -> OrderingResult:
    est = np.asarray(estimates, dtype=np.float64)
    k = est.shape[0]
    groups = [
        GroupOutcome(i, f"g{i}", float(est[i]), 10, 0.5, False, 10) for i in range(k)
    ]
    return OrderingResult(
        algorithm="test",
        estimates=est,
        samples_per_group=np.full(k, 10, dtype=np.int64),
        rounds=10,
        groups=groups,
        inactive_order=list(range(k)),
    )


class TestOrderingResult:
    def test_order_and_ranking(self):
        res = _result([30.0, 10.0, 20.0])
        assert res.order().tolist() == [1, 2, 0]
        assert res.ranking().tolist() == [2, 0, 1]

    def test_total_samples(self):
        assert _result([1.0, 2.0]).total_samples == 20

    def test_summary_contains_key_facts(self):
        s = _result([1.0, 2.0]).summary()
        assert "test" in s and "k=2" in s

    def test_k(self):
        assert _result([1.0, 2.0, 3.0]).k == 3


class TestTrace:
    def _snap(self, m, estimates, active):
        return RoundSnapshot(
            round_index=m,
            cumulative_samples=m * len(active),
            active=tuple(active),
            estimates=np.asarray(estimates, dtype=np.float64),
            epsilon=1.0,
        )

    def test_series_accessors(self):
        trace = Trace(every=1)
        trace.append(self._snap(1, [1.0, 2.0], [0, 1]))
        trace.append(self._snap(2, [1.5, 2.5], [0]))
        assert trace.samples_series().tolist() == [2, 2]
        assert trace.active_counts().tolist() == [2, 1]
        assert trace.estimate_matrix().shape == (2, 2)
        assert len(trace) == 2

    def test_intervals(self):
        snap = self._snap(1, [5.0], [0])
        assert snap.intervals() == [(4.0, 6.0)]

    def test_iteration(self):
        trace = Trace(every=1)
        trace.append(self._snap(1, [1.0], [0]))
        assert [s.round_index for s in trace] == [1]


class TestGroupOutcome:
    def test_frozen(self):
        g = GroupOutcome(0, "a", 1.0, 5, 0.1, False, 5)
        with pytest.raises(AttributeError):
            g.estimate = 2.0  # type: ignore[misc]
