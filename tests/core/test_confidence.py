"""Tests for the confidence-interval schedules (Theorem 3.2 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import (
    EpsilonSchedule,
    anytime_epsilon,
    chernoff_sample_size,
    hoeffding_epsilon,
    ifocus_epsilon,
    iterated_log,
)


class TestIteratedLog:
    def test_small_m_clamped_to_zero(self):
        assert iterated_log(1) == 0.0
        assert iterated_log(2) == 0.0  # ln(2) < 1 -> clamp

    def test_large_m_positive(self):
        assert iterated_log(100) == pytest.approx(math.log(math.log(100)))

    def test_monotone_nondecreasing(self):
        ms = np.arange(1, 10_000)
        vals = iterated_log(ms)
        assert np.all(np.diff(vals) >= 0)

    def test_kappa_scales_inner_log(self):
        # log_kappa(m) = ln m / ln kappa, so a larger kappa shrinks the term.
        assert iterated_log(1000, kappa=4.0) < iterated_log(1000, kappa=2.0)

    def test_kappa_below_one_rejected(self):
        with pytest.raises(ValueError):
            iterated_log(10, kappa=0.5)

    def test_vector_input(self):
        out = iterated_log(np.array([1, 10, 100]))
        assert out.shape == (3,)


class TestAnytimeEpsilon:
    def test_decreasing_in_m(self):
        eps = anytime_epsilon(np.arange(3, 100_000), delta=0.05)
        assert np.all(np.diff(eps) < 0)

    def test_scales_with_c(self):
        e1 = anytime_epsilon(50, delta=0.05, c=1.0)
        e100 = anytime_epsilon(50, delta=0.05, c=100.0)
        assert e100 == pytest.approx(100.0 * e1)

    def test_without_replacement_tighter(self):
        # The finite-population factor only shrinks epsilon.
        m = np.arange(2, 1000)
        wr = anytime_epsilon(m, delta=0.05)
        wor = anytime_epsilon(m, delta=0.05, n=1000)
        assert np.all(wor <= wr)

    def test_wor_epsilon_near_exhaustion_small(self):
        # At m = n the factor is 1/n: epsilon collapses.
        full = anytime_epsilon(1000, delta=0.05, n=1000)
        free = anytime_epsilon(1000, delta=0.05)
        assert full < free / 10

    def test_smaller_delta_wider(self):
        assert anytime_epsilon(100, delta=0.01) > anytime_epsilon(100, delta=0.2)

    def test_m_below_one_rejected(self):
        with pytest.raises(ValueError):
            anytime_epsilon(0, delta=0.05)

    def test_invalid_delta_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                anytime_epsilon(10, delta=bad)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            anytime_epsilon(10, delta=0.05, n=0)

    @given(
        m=st.integers(min_value=1, max_value=10**6),
        delta=st.floats(min_value=1e-4, max_value=0.5),
        c=st.floats(min_value=0.1, max_value=1000),
    )
    @settings(max_examples=100)
    def test_always_positive_and_finite(self, m, delta, c):
        eps = anytime_epsilon(m, delta=delta, c=c)
        assert eps > 0
        assert math.isfinite(eps)

    @pytest.mark.slow
    def test_empirical_anytime_coverage(self):
        """The bound must hold for ALL m simultaneously w.p. >= 1 - delta.

        Empirical check on the adversarial two-point distribution: count runs
        where |running mean - mu| ever exceeds eps_m.
        """
        delta = 0.1
        rng = np.random.default_rng(1234)
        n_runs, horizon = 400, 2000
        failures = 0
        ms = np.arange(1, horizon + 1)
        eps = anytime_epsilon(ms, delta=delta, c=1.0)
        for _ in range(n_runs):
            x = (rng.random(horizon) < 0.5).astype(np.float64)
            means = np.cumsum(x) / ms
            if np.any(np.abs(means - 0.5) > eps):
                failures += 1
        assert failures / n_runs <= delta


class TestIFocusEpsilon:
    def test_matches_anytime_with_delta_over_k(self):
        e1 = ifocus_epsilon(100, k=10, delta=0.05, c=100.0)
        e2 = anytime_epsilon(100, delta=0.005, c=100.0)
        assert e1 == pytest.approx(e2)

    def test_heuristic_factor_divides(self):
        base = ifocus_epsilon(100, k=5, delta=0.05)
        shrunk = ifocus_epsilon(100, k=5, delta=0.05, heuristic_factor=4.0)
        assert shrunk == pytest.approx(base / 4.0)

    def test_more_groups_wider(self):
        assert ifocus_epsilon(100, k=50, delta=0.05) > ifocus_epsilon(100, k=5, delta=0.05)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ifocus_epsilon(10, k=0, delta=0.05)


class TestHoeffdingEpsilon:
    def test_formula(self):
        m, delta, c = 200, 0.05, 10.0
        expected = c * math.sqrt(math.log(2 / delta) / (2 * m))
        assert hoeffding_epsilon(m, delta, c) == pytest.approx(expected)

    def test_vector(self):
        out = hoeffding_epsilon(np.array([10, 100]), 0.05)
        assert out[0] > out[1]


class TestChernoffSampleSize:
    def test_formula(self):
        eps, delta, c = 0.1, 0.05, 1.0
        expected = math.ceil(1.0 / (2 * eps**2) * math.log(2 / delta))
        assert chernoff_sample_size(eps, delta, c) == expected

    def test_quadruples_when_eps_halves(self):
        m1 = chernoff_sample_size(0.2, 0.05)
        m2 = chernoff_sample_size(0.1, 0.05)
        assert 3.5 <= m2 / m1 <= 4.5

    def test_sufficiency_empirical(self):
        """Lemma 4: the Chernoff size must deliver |nu - mu| <= eps w.h.p."""
        eps, delta = 0.05, 0.1
        m = chernoff_sample_size(eps, delta)
        rng = np.random.default_rng(7)
        fails = 0
        runs = 300
        for _ in range(runs):
            x = (rng.random(m) < 0.5).astype(np.float64)
            if abs(x.mean() - 0.5) > eps:
                fails += 1
        assert fails / runs <= delta

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chernoff_sample_size(0.0, 0.05)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.1, 1.5)


class TestEpsilonSchedule:
    def test_call_matches_function(self):
        sched = EpsilonSchedule(k=10, delta=0.05, c=100.0)
        m = np.arange(2, 50)
        direct = ifocus_epsilon(m, k=10, delta=0.05, c=100.0, n=5000)
        assert np.allclose(np.asarray(sched(m, 5000.0)), np.asarray(direct))

    def test_rounds_until(self):
        sched = EpsilonSchedule(k=10, delta=0.05, c=100.0)
        target = 1.0
        m_star = sched.rounds_until(target)
        assert float(sched(m_star)) < target
        assert float(sched(m_star - 1)) >= target

    def test_rounds_until_unreachable(self):
        sched = EpsilonSchedule(k=2, delta=0.05, c=1.0)
        with pytest.raises(ValueError):
            sched.rounds_until(1e-12, m_hi=10_000)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EpsilonSchedule(k=0, delta=0.05)
        with pytest.raises(ValueError):
            EpsilonSchedule(k=5, delta=0.05, kappa=0.9)
        with pytest.raises(ValueError):
            EpsilonSchedule(k=5, delta=0.05, heuristic_factor=0.0)
