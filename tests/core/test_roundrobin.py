"""Tests for the ROUNDROBIN baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifocus import run_ifocus
from repro.core.roundrobin import run_roundrobin
from repro.engines.memory import InMemoryEngine
from repro.viz.properties import check_ordering
from tests.conftest import make_materialized_population


class TestBasics:
    def test_orders_correctly(self, small_engine):
        res = run_roundrobin(small_engine, delta=0.05, seed=1)
        assert check_ordering(res.estimates, small_engine.population.true_means())
        assert res.algorithm == "roundrobin"

    def test_all_groups_sampled_equally(self, close_engine):
        res = run_roundrobin(close_engine, delta=0.05, seed=2)
        # Every non-exhausted group gets exactly m samples.
        assert len(set(res.samples_per_group.tolist())) == 1

    def test_costs_at_least_ifocus(self, close_engine):
        rr = run_roundrobin(close_engine, delta=0.05, seed=3)
        ifocus = run_ifocus(close_engine, delta=0.05, seed=3)
        # Round-robin keeps sampling resolved groups - it can't beat IFOCUS.
        assert rr.total_samples >= ifocus.total_samples

    def test_resolution_variant_cheaper_on_close_pair(self):
        pop = make_materialized_population([40.0, 40.5, 80.0], sizes=200_000, seed=4)
        engine = InMemoryEngine(pop)
        plain = run_roundrobin(engine, delta=0.05, seed=5)
        relaxed = run_roundrobin(engine, delta=0.05, resolution=4.0, seed=5)
        assert relaxed.total_samples < plain.total_samples
        assert relaxed.algorithm == "roundrobinr"

    def test_single_group_stops_fast(self):
        pop = make_materialized_population([50.0], sizes=500)
        res = run_roundrobin(InMemoryEngine(pop), delta=0.05, seed=6)
        assert res.total_samples <= 3

    def test_batch_size_invariance(self, close_engine):
        a = run_roundrobin(close_engine, delta=0.05, seed=7, initial_batch=1, max_batch=1)
        b = run_roundrobin(close_engine, delta=0.05, seed=7, initial_batch=512, max_batch=2048)
        assert np.allclose(a.estimates, b.estimates)
        assert np.array_equal(a.samples_per_group, b.samples_per_group)
        assert a.rounds == b.rounds

    def test_max_rounds_truncation(self, close_engine):
        res = run_roundrobin(close_engine, delta=0.05, seed=8, max_rounds=5)
        assert res.params["truncated"]
        assert np.all(res.samples_per_group <= 5)

    def test_invalid_delta(self, small_engine):
        with pytest.raises(ValueError):
            run_roundrobin(small_engine, delta=2.0)


class TestExhaustion:
    def test_exhausted_groups_frozen_exact(self):
        # One tiny group with a mean close to a big group's: the tiny one
        # exhausts; the big one must still clear its frozen exact value.
        pop = make_materialized_population(
            [50.0, 50.8, 90.0], sizes=[80, 50_000, 50_000], spread=6.0, seed=9
        )
        engine = InMemoryEngine(pop)
        res = run_roundrobin(engine, delta=0.05, seed=10)
        assert res.groups[0].exhausted
        assert res.groups[0].estimate == pytest.approx(pop.groups[0].true_mean)
        assert check_ordering(res.estimates, pop.true_means())

    def test_all_exhausted_when_identical(self):
        pop = make_materialized_population([50.0, 50.0], sizes=60, spread=5.0, seed=11)
        res = run_roundrobin(InMemoryEngine(pop), delta=0.05, seed=12)
        assert all(g.exhausted for g in res.groups)
        assert np.allclose(res.estimates, pop.true_means())


class TestWithReplacement:
    def test_runs_and_orders(self, small_engine):
        res = run_roundrobin(small_engine, delta=0.05, seed=13, without_replacement=False)
        assert check_ordering(res.estimates, small_engine.population.true_means())

    def test_trace(self, small_engine):
        res = run_roundrobin(small_engine, delta=0.05, seed=14, trace_every=5)
        assert res.trace is not None and len(res.trace) > 0
        # All groups stay live until global termination.
        assert all(len(s.active) == small_engine.k for s in res.trace)
