"""Property-based invariants of the ordering algorithms (hypothesis).

Every algorithm run, regardless of instance, must satisfy structural
invariants: sample counts within bounds, estimates inside the value domain,
finalization bookkeeping consistent, and the guarantee-relevant relation
between half-widths and separation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ifocus import run_ifocus
from repro.core.irefine import run_irefine
from repro.core.roundrobin import run_roundrobin
from repro.engines.memory import InMemoryEngine
from tests.conftest import make_materialized_population


@st.composite
def small_instances(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    means = [draw(st.floats(min_value=5, max_value=95)) for _ in range(k)]
    size = draw(st.integers(min_value=50, max_value=800))
    spread = draw(st.floats(min_value=1.0, max_value=20.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    pop = make_materialized_population(means, sizes=size, spread=spread, seed=seed)
    return pop, seed


def _check_structural(res, pop):
    k = pop.k
    assert res.estimates.shape == (k,)
    assert np.all(res.samples_per_group >= 1)
    assert np.all(res.samples_per_group <= pop.sizes() + 1)
    assert np.all(res.estimates >= 0.0) and np.all(res.estimates <= pop.c)
    assert sorted(res.inactive_order) == list(range(k))
    assert len(res.groups) == k
    for g in res.groups:
        assert g.samples == res.samples_per_group[g.index]
        assert g.estimate == pytest.approx(res.estimates[g.index])
        if g.exhausted:
            assert g.half_width == 0.0
            assert g.estimate == pytest.approx(pop.groups[g.index].true_mean)


class TestIFocusInvariants:
    @given(instance=small_instances())
    @settings(max_examples=25, deadline=None)
    def test_structural(self, instance):
        pop, seed = instance
        res = run_ifocus(InMemoryEngine(pop), delta=0.1, seed=seed)
        _check_structural(res, pop)

    @given(instance=small_instances())
    @settings(max_examples=15, deadline=None)
    def test_resolution_never_increases_samples(self, instance):
        pop, seed = instance
        engine = InMemoryEngine(pop)
        plain = run_ifocus(engine, delta=0.1, seed=seed)
        relaxed = run_ifocus(engine, delta=0.1, resolution=5.0, seed=seed)
        assert relaxed.total_samples <= plain.total_samples

    @given(instance=small_instances())
    @settings(max_examples=15, deadline=None)
    def test_larger_heuristic_factor_fewer_samples(self, instance):
        pop, seed = instance
        engine = InMemoryEngine(pop)
        honest = run_ifocus(engine, delta=0.1, seed=seed)
        aggressive = run_ifocus(engine, delta=0.1, heuristic_factor=4.0, seed=seed)
        assert aggressive.total_samples <= honest.total_samples


class TestRoundRobinInvariants:
    @given(instance=small_instances())
    @settings(max_examples=20, deadline=None)
    def test_structural_and_dominates_ifocus(self, instance):
        pop, seed = instance
        engine = InMemoryEngine(pop)
        rr = run_roundrobin(engine, delta=0.1, seed=seed)
        _check_structural(rr, pop)
        if pop.k > 1:
            # (k=1 is degenerate: RR stops after its first sample, while
            # Algorithm 1's literal loop performs one check round at m=2.)
            ifocus = run_ifocus(engine, delta=0.1, seed=seed)
            assert rr.total_samples >= ifocus.total_samples


class TestIRefineInvariants:
    @given(instance=small_instances())
    @settings(max_examples=15, deadline=None)
    def test_structural(self, instance):
        pop, seed = instance
        res = run_irefine(InMemoryEngine(pop), delta=0.1, seed=seed)
        k = pop.k
        assert res.estimates.shape == (k,)
        assert sorted(res.inactive_order) == list(range(k))
        # IREFINE's counts can exceed group sizes (fresh WR draws per
        # refinement plus a possible final scan), but never by more than
        # earlier refinements + the scan.
        assert np.all(res.samples_per_group >= 1)
