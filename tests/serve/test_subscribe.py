"""HTTP subscription tests: SSE window events, slots, stats, cancel.

Acceptance criteria for the ``/subscribe`` surface:

* a subscription sees monotonically increasing SSE ids over ``window``
  events and ends with ``done``;
* per-tenant ``max_subscriptions`` slots shed excess subscriptions with a
  structured 429 (one-shot execution quotas are untouched);
* ``/stats`` reports subscriptions started, windows emitted, and the live
  open-subscription gauge per tenant;
* ``DELETE /query/{id}`` cancels a live subscription: the stream ends with
  a clean ``done`` (``cancelled: true``) and the slot frees.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro import connect
from repro.catalog import IteratorSource, Schema
from repro.serve import (
    QueryService,
    TenantConfig,
    TenantRegistry,
    serve_in_thread,
)

EVENTS_SQL = "SELECT g, AVG(v) FROM events GROUP BY g"

DEADLINE = 120  # socket timeout: generous, tests finish far faster

SCHEMA = Schema.from_arrays(
    {"g": np.array(["a"]), "v": np.array([1.0]), "ts": np.array([0.0])}
)


def finite_chunks():
    rng = np.random.default_rng(3)
    for base in range(0, 500, 100):
        yield {
            "g": np.tile(np.array(["a", "b"]), 50),
            "v": rng.random(100) * 10.0,
            "ts": np.arange(base, base + 100, dtype=np.float64),
        }


class PacedStream:
    """An endless chunk stream the test can pause and release."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.gate.set()

    def chunks(self):
        rng = np.random.default_rng(5)
        base = 0
        while True:
            yield {
                "g": np.tile(np.array(["a", "b"]), 50),
                "v": rng.random(100) * 10.0,
                "ts": np.arange(base, base + 100, dtype=np.float64),
            }
            base += 100
            if not self.gate.wait(10.0):
                return


PACED = PacedStream()


@pytest.fixture(scope="module")
def server():
    session = connect(delta=0.1, seed=0, engine="memory")
    session.register("events", IteratorSource(finite_chunks, schema=SCHEMA))
    session.register("endless", IteratorSource(PACED.chunks, schema=SCHEMA))
    tenants = TenantRegistry(TenantConfig(max_subscriptions=4))
    tenants.configure(
        "solo", TenantConfig(max_concurrent=4, queue_limit=4, max_subscriptions=1)
    )
    service = QueryService(session, sessions=2, tenants=tenants, default_seed=0)
    handle = serve_in_thread(service)
    yield handle.port, service
    PACED.gate.set()
    handle.stop()


def request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    try:
        conn.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers=headers or {},
        )
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else {}, dict(resp.getheaders())
    finally:
        conn.close()


def subscribe_raw(port, target_or_body, headers=None):
    """GET (string target) or POST (dict body) /subscribe; full SSE text."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    try:
        if isinstance(target_or_body, str):
            conn.request("GET", target_or_body, headers=headers or {})
        else:
            conn.request(
                "POST",
                "/subscribe",
                body=json.dumps(target_or_body),
                headers=headers or {},
            )
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8"), dict(resp.getheaders())
    finally:
        conn.close()


def parse_frames(text):
    """[(id, event, data-dict)] for each SSE frame."""
    frames = []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        fields = dict(
            line.split(": ", 1) for line in block.splitlines() if ": " in line
        )
        frames.append(
            (int(fields["id"]), fields["event"], json.loads(fields["data"]))
        )
    return frames


def tenant_entry(port, tenant):
    _status, stats, _ = request(port, "GET", "/stats")
    return stats["tenants"].get(tenant, {})


def poll(predicate, timeout=60, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestSubscribeStream:
    def test_get_subscribe_monotone_window_ids_then_done(self, server):
        port, _service = server
        status, text, headers = subscribe_raw(
            port,
            "/subscribe?sql=SELECT+g,+AVG(v)+FROM+events+GROUP+BY+g"
            "&window_size=100&window_on=ts&updates=0",
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/event-stream")
        frames = parse_frames(text)
        ids = [fid for fid, _, _ in frames]
        assert ids == list(range(1, len(frames) + 1))
        kinds = [event for _, event, _ in frames]
        assert kinds[:-1] == ["window"] * 5 and kinds[-1] == "done"
        indices = [data["window"]["index"] for _, event, data in frames
                   if event == "window"]
        assert indices == [0, 1, 2, 3, 4]
        done = frames[-1][2]
        assert done["windows"] == 5 and done["cancelled"] is False

    def test_post_subscribe_with_window_body(self, server):
        port, _service = server
        status, text, _ = subscribe_raw(
            port,
            {
                "sql": EVENTS_SQL,
                "window": {"size": 200.0, "on": "ts"},
                "max_windows": 2,
                "emit_updates": False,
                "seed": 7,
            },
        )
        assert status == 200
        frames = parse_frames(text)
        windows = [d for _, event, d in frames if event == "window"]
        assert len(windows) == 2
        assert [w["seed"] for w in windows] == [7, 8]

    def test_updates_interleave_when_enabled(self, server):
        port, _service = server
        _status, text, _ = subscribe_raw(
            port,
            {"sql": EVENTS_SQL, "window": {"size": 250.0, "on": "ts"},
             "max_windows": 1},
        )
        kinds = [event for _, event, _ in parse_frames(text)]
        assert "update" in kinds and "window" in kinds
        assert kinds[-1] == "done"

    def test_subscribe_requires_a_window(self, server):
        port, _service = server
        status, text, _ = subscribe_raw(port, {"sql": EVENTS_SQL})
        assert status == 400
        assert "window" in json.loads(
            text if text.startswith("{") else "{}"
        ).get("error", {}).get("message", text)

    def test_bad_window_param_rejected(self, server):
        port, _service = server
        status, _text, _ = subscribe_raw(
            port, "/subscribe?sql=x&window_size=abc"
        )
        assert status == 400
        status, _text, _ = subscribe_raw(
            port, {"sql": EVENTS_SQL, "window": {"size": 100.0, "stride": 2}}
        )
        assert status == 400

    def test_unknown_get_parameter_rejected(self, server):
        port, _service = server
        status, _text, _ = subscribe_raw(
            port, "/subscribe?sql=x&window_size=100&bogus=1"
        )
        assert status == 400

    def test_method_not_allowed(self, server):
        port, _service = server
        status, _body, _ = request(port, "PUT", "/subscribe")
        assert status == 405


class TestSlotsAndStats:
    def test_stats_counters_after_finite_subscription(self, server):
        port, _service = server
        before = tenant_entry(port, "counting").get("counters", {})
        status, text, _ = subscribe_raw(
            port,
            {"sql": EVENTS_SQL, "window": {"size": 100.0, "on": "ts"},
             "emit_updates": False, "tenant": "counting"},
        )
        assert status == 200
        windows = sum(1 for _, e, _ in parse_frames(text) if e == "window")
        entry = tenant_entry(port, "counting")
        counters = entry["counters"]
        assert counters["subscriptions_started"] == \
            before.get("subscriptions_started", 0) + 1
        assert counters["windows_emitted"] == \
            before.get("windows_emitted", 0) + windows
        assert entry["subscriptions"] == 0  # gauge back down after done
        assert entry["config"]["max_subscriptions"] == 4

    def test_max_subscriptions_sheds_with_429(self, server):
        port, _service = server
        holder = {}

        def hold():
            holder["result"] = subscribe_raw(
                port,
                {"sql": "SELECT g, AVG(v) FROM endless GROUP BY g",
                 "window": {"size": 100.0, "on": "ts"},
                 "emit_updates": False, "tenant": "solo",
                 "query_id": "held-sub"},
            )

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            poll(
                lambda: tenant_entry(port, "solo").get("subscriptions") == 1,
                message="subscription to open",
            )
            status, body, headers = request(
                port,
                "POST",
                "/subscribe",
                {"sql": "SELECT g, AVG(v) FROM endless GROUP BY g",
                 "window": {"size": 100.0, "on": "ts"}, "tenant": "solo"},
            )
            assert status == 429
            assert body["error"]["code"] == "shed"
            assert "Retry-After" in headers
            counters = tenant_entry(port, "solo")["counters"]
            assert counters["shed"] >= 1
            # One-shot queries still run: subscription slots are separate
            # from the execution admission queue.
            q_status, q_body, _ = request(
                port, "POST", "/query",
                {"sql": EVENTS_SQL, "tenant": "solo"},
            )
            assert q_status == 200 and "result" in q_body
        finally:
            request(port, "DELETE", "/query/held-sub")
            thread.join(timeout=DEADLINE)
        status, text, _ = holder["result"]
        assert status == 200
        frames = parse_frames(text)
        assert frames[-1][1] == "done" and frames[-1][2]["cancelled"] is True
        poll(
            lambda: tenant_entry(port, "solo").get("subscriptions") == 0,
            message="slot to free",
        )

    def test_duplicate_query_id_conflicts(self, server):
        port, _service = server
        holder = {}

        def hold():
            holder["result"] = subscribe_raw(
                port,
                {"sql": "SELECT g, AVG(v) FROM endless GROUP BY g",
                 "window": {"size": 100.0, "on": "ts"},
                 "emit_updates": False, "query_id": "dup-sub"},
            )

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            poll(
                lambda: request(port, "GET", "/healthz")[1].get("inflight", 0) >= 1,
                message="subscription ticket",
            )
            status, body, _ = request(
                port,
                "POST",
                "/subscribe",
                {"sql": EVENTS_SQL, "window": {"size": 100.0, "on": "ts"},
                 "query_id": "dup-sub"},
            )
            assert status == 409
            assert body["error"]["code"] == "duplicate_query_id"
        finally:
            request(port, "DELETE", "/query/dup-sub")
            thread.join(timeout=DEADLINE)

    def test_delete_unknown_subscription_404(self, server):
        port, _service = server
        status, _body, _ = request(port, "DELETE", "/query/never-existed")
        assert status == 404
