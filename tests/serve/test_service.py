"""End-to-end tests of the HTTP query service (repro.serve).

The acceptance criteria from the serve subsystem's design:

* two tenants submitting the same query concurrently cost exactly ONE
  execution (counters prove it) and both receive bit-identical JSON;
* an SSE client sees monotonically increasing update ids ending in `done`;
* an over-quota submit is shed with a structured error + retry-after;
* DELETE cancels queued entries (never run) and running queries (prompt);
* a re-registered / invalidated table never serves a stale cached Result;
* server shutdown leaves the shared-memory registry empty.

The "slow" table is the paper's hard Bernoulli family with a tiny gamma:
group means are statistically inseparable at any realistic sample count,
so its queries run until cancelled - a deterministic stand-in for a
long-running query.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import connect
from repro.engines.shm import REGISTRY
from repro.serve import (
    QueryService,
    TenantConfig,
    TenantRegistry,
    serve_in_thread,
)

FLIGHTS_SQL = "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"

#: A spec that samples forever (see module docstring); always cancelled.
SLOW_SPEC = {
    "table": "slow",
    "group_by": ["g"],
    "aggregates": [{"func": "AVG", "column": "value"}],
    "engine": "memory",
}

DEADLINE = 120  # socket timeout: generous, tests finish far faster


def request(port, method, path, body=None, headers=None):
    """One JSON request; returns (status, parsed-body, response-headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    try:
        conn.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers=headers or {},
        )
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else {}, dict(resp.getheaders())
    finally:
        conn.close()


def sse_request(port, body, headers=None):
    """POST /stream; returns (status, decoded event-stream text)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    try:
        conn.request("POST", "/stream", body=json.dumps(body), headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8")
    finally:
        conn.close()


def poll(predicate, timeout=60, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def tenant_counters(port, tenant):
    _status, stats, _ = request(port, "GET", "/stats")
    entry = stats["tenants"].get(tenant)
    return entry["counters"] if entry else {}


@pytest.fixture(scope="module")
def server():
    session = connect(delta=0.1, seed=0)
    session.register_flights("flights", rows=20_000, seed=0)
    session.register_synthetic("slow", "hard", k=4, gamma=0.01, group_size=5_000_000)
    tenants = TenantRegistry(TenantConfig(max_concurrent=4, queue_limit=16))
    tenants.configure("tiny", TenantConfig(max_concurrent=1, queue_limit=0))
    tenants.configure("narrow", TenantConfig(max_concurrent=1, queue_limit=2))
    service = QueryService(session, sessions=2, tenants=tenants, default_seed=0)
    handle = serve_in_thread(service)
    yield handle.port, service
    handle.stop()


class TestOpsSurface:
    def test_healthz(self, server):
        port, _service = server
        status, body, _ = request(port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tables"] == 2
        assert body["sessions"] == 2

    def test_tables(self, server):
        port, _service = server
        status, body, _ = request(port, "GET", "/tables")
        assert status == 200
        by_name = {t["name"]: t for t in body["tables"]}
        assert set(by_name) == {"flights", "slow"}
        assert by_name["flights"]["columns"]["carrier"] == "string"
        assert by_name["flights"]["columns"]["arrival_delay"] == "numeric"
        assert by_name["slow"]["kind"] == "synthetic"

    def test_stats_shape(self, server):
        port, _service = server
        status, body, _ = request(port, "GET", "/stats")
        assert status == 200
        assert set(body) >= {"tenants", "cache", "inflight"}
        assert set(body["cache"]) >= {"hits", "misses", "stored", "entries"}


class TestQueryEndpoint:
    def test_two_tenants_one_execution_bit_identical(self, server):
        port, _service = server
        body = {"sql": FLIGHTS_SQL, "seed": 42}
        barrier = threading.Barrier(2)
        out = {}

        def submit(tenant):
            barrier.wait()
            out[tenant] = request(
                port, "POST", "/query", body, {"X-Repro-Tenant": tenant}
            )

        threads = [
            threading.Thread(target=submit, args=(t,)) for t in ("alpha", "beta")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        (s_a, env_a, _), (s_b, env_b, _) = out["alpha"], out["beta"]
        assert s_a == 200 and s_b == 200
        # bit-identical: the canonical encodings of both results match
        dump = lambda env: json.dumps(env["result"], sort_keys=True)  # noqa: E731
        assert dump(env_a) == dump(env_b)
        assert {env_a["cache"], env_b["cache"]} <= {"miss", "hit", "shared"}

        # counters prove exactly one execution, the other answered for free
        ca = tenant_counters(port, "alpha")
        cb = tenant_counters(port, "beta")
        assert ca["executed"] + cb["executed"] == 1
        assert (
            ca["cache_hits"] + cb["cache_hits"]
            + ca["singleflight_shared"] + cb["singleflight_shared"]
        ) == 1
        assert ca["errors"] == cb["errors"] == 0

    def test_result_carries_guarantees_and_accounting(self, server):
        port, _service = server
        status, env, _ = request(port, "POST", "/query", {"sql": FLIGHTS_SQL, "seed": 7})
        assert status == 200
        result = env["result"]
        assert result["guarantee"]["delta"] == 0.1
        assert result["total_samples"] > 0
        agg = result["aggregates"]["AVG(arrival_delay)"]
        assert set(agg["labels"]) == set(result["labels"])
        assert all(g["samples"] >= 0 for g in agg["groups"])
        assert result["deadline_exceeded"] is False
        # a repeat of the same request is a cache hit with identical bytes
        status2, env2, _ = request(
            port, "POST", "/query", {"sql": FLIGHTS_SQL, "seed": 7}
        )
        assert status2 == 200 and env2["cache"] == "hit"
        assert json.dumps(env2["result"], sort_keys=True) == json.dumps(
            result, sort_keys=True
        )

    def test_spec_and_sql_front_doors_share_the_cache(self, server):
        port, service = server
        status, env_sql, _ = request(
            port, "POST", "/query", {"sql": FLIGHTS_SQL, "seed": 11}
        )
        assert status == 200
        spec_dict = env_sql["result"]["spec"]
        status, env_spec, _ = request(
            port, "POST", "/query", {"spec": spec_dict, "seed": 11}
        )
        assert status == 200
        assert env_spec["cache"] == "hit"  # canonicalization is door-independent

    def test_tenant_defaults_flow_into_the_spec(self, server):
        port, service = server
        service.tenants.configure(
            "deadlined",
            TenantConfig(max_concurrent=2, queue_limit=4, deadline_ms=60_000.0),
        )
        status, env, _ = request(
            port,
            "POST",
            "/query",
            {"sql": FLIGHTS_SQL, "seed": 13},
            {"X-Repro-Tenant": "deadlined"},
        )
        assert status == 200
        assert env["result"]["spec"]["deadline_ms"] == 60_000.0


class TestErrors:
    def test_malformed_json_is_400(self, server):
        port, _service = server
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
        try:
            conn.request("POST", "/query", body="{nope")
            resp = conn.getresponse()
            body = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 400
        assert body["error"]["code"] == "bad_json"

    def test_sql_and_spec_together_is_400(self, server):
        port, _service = server
        status, body, _ = request(
            port, "POST", "/query", {"sql": FLIGHTS_SQL, "spec": SLOW_SPEC}
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_unknown_table_is_404(self, server):
        port, _service = server
        status, body, _ = request(
            port, "POST", "/query", {"sql": "SELECT g, AVG(v) FROM nope GROUP BY g"}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_table"

    def test_unknown_route_and_method(self, server):
        port, _service = server
        assert request(port, "GET", "/nope")[0] == 404
        assert request(port, "GET", "/query")[0] == 405

    def test_bad_spec_is_400(self, server):
        port, _service = server
        status, body, _ = request(
            port, "POST", "/query", {"spec": {"table": "flights"}}
        )
        assert status == 400
        assert body["error"]["code"] == "bad_query"


class TestAdmissionOverHTTP:
    def test_over_quota_is_shed_with_structured_error(self, server):
        port, _service = server
        headers = {"X-Repro-Tenant": "tiny"}  # quota 1, queue 0
        done = {}

        def run_slow():
            done["slow"] = request(
                port,
                "POST",
                "/query",
                {"spec": SLOW_SPEC, "seed": 201, "query_id": "tiny-slow"},
                headers,
            )

        thread = threading.Thread(target=run_slow)
        thread.start()
        poll(
            lambda: tenant_counters(port, "tiny").get("executed", 0) == 1,
            message="slow query to start executing",
        )

        status, body, resp_headers = request(
            port, "POST", "/query", {"spec": SLOW_SPEC, "seed": 202}, headers
        )
        assert status == 429
        assert body["error"]["code"] == "shed"
        assert body["error"]["tenant"] == "tiny"
        assert body["error"]["retry_after_ms"] > 0
        assert int(resp_headers["Retry-After"]) >= 1
        assert tenant_counters(port, "tiny")["shed"] == 1

        status, body, _ = request(port, "DELETE", "/query/tiny-slow")
        assert status == 200 and body["cancelled"] is True
        thread.join(timeout=DEADLINE)
        assert done["slow"][0] == 499
        assert done["slow"][1]["error"]["code"] == "cancelled"
        poll(
            lambda: not tenant_counters(port, "tiny") or
            request(port, "GET", "/stats")[1]["tenants"]["tiny"]["running"] == 0,
            message="slot release",
        )

    def test_cancel_queued_query_never_runs(self, server):
        port, _service = server
        headers = {"X-Repro-Tenant": "narrow"}  # quota 1, queue 2
        outcomes = {}

        def submit(name, seed):
            outcomes[name] = request(
                port,
                "POST",
                "/query",
                {"spec": SLOW_SPEC, "seed": seed, "query_id": name},
                headers,
            )

        runner = threading.Thread(target=submit, args=("n-run", 101))
        runner.start()
        poll(
            lambda: tenant_counters(port, "narrow").get("executed", 0) == 1,
            message="first narrow query to run",
        )
        queued = threading.Thread(target=submit, args=("n-queued", 102))
        queued.start()
        poll(
            lambda: request(port, "GET", "/stats")[1]["tenants"]["narrow"][
                "queued_now"
            ] == 1,
            message="second narrow query to queue",
        )

        status, body, _ = request(port, "DELETE", "/query/n-queued")
        assert status == 200 and body["cancelled"] is True
        queued.join(timeout=DEADLINE)
        assert outcomes["n-queued"][0] == 499
        counters = tenant_counters(port, "narrow")
        assert counters["executed"] == 1  # the queued query never ran
        assert counters["cancelled"] >= 1

        request(port, "DELETE", "/query/n-run")
        runner.join(timeout=DEADLINE)
        assert outcomes["n-run"][0] == 499
        poll(
            lambda: request(port, "GET", "/stats")[1]["tenants"]["narrow"][
                "running"
            ] == 0,
            message="narrow slot release",
        )

    def test_duplicate_query_id_conflicts(self, server):
        port, _service = server
        outcomes = {}

        def submit():
            outcomes["first"] = request(
                port,
                "POST",
                "/query",
                {"spec": SLOW_SPEC, "seed": 301, "query_id": "dup"},
            )

        thread = threading.Thread(target=submit)
        thread.start()
        poll(
            lambda: request(port, "GET", "/stats")[1]["inflight"] >= 1,
            message="first dup query in flight",
        )
        status, body, _ = request(
            port, "POST", "/query", {"spec": SLOW_SPEC, "seed": 302, "query_id": "dup"}
        )
        assert status == 409
        assert body["error"]["code"] == "duplicate_query_id"
        request(port, "DELETE", "/query/dup")
        thread.join(timeout=DEADLINE)
        assert outcomes["first"][0] == 499

    def test_cancel_unknown_query_is_404(self, server):
        port, _service = server
        status, body, _ = request(port, "DELETE", "/query/never-existed")
        assert status == 404
        assert body["error"]["code"] == "unknown_query"


def parse_sse(text):
    """Decode an event-stream body into [(id, event, data-dict)] frames."""
    frames = []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        event_id = event = None
        data_lines = []
        for line in block.splitlines():
            field, _, value = line.partition(":")
            value = value.lstrip()
            if field == "id":
                event_id = int(value)
            elif field == "event":
                event = value
            elif field == "data":
                data_lines.append(value)
        frames.append((event_id, event, json.loads("\n".join(data_lines))))
    return frames


class TestStreaming:
    def test_sse_monotonic_updates_ending_in_done(self, server):
        port, _service = server
        status, text = sse_request(port, {"sql": FLIGHTS_SQL, "seed": 500})
        assert status == 200
        frames = parse_sse(text)
        assert len(frames) >= 2
        *updates, done = frames
        for n, (event_id, event, data) in enumerate(updates, start=1):
            assert event_id == n  # monotonically numbered from 1
            assert event == "update"
            assert data["emitted_so_far"] == n
            assert data["group"]["samples"] > 0
        assert updates[-1][2]["emitted_so_far"] == updates[-1][2]["total_groups"]
        done_id, done_event, done_data = done
        assert done_event == "done"
        assert done_id == len(updates) + 1
        assert done_data["cache"] == "miss"
        assert done_data["result"]["total_samples"] > 0

    def test_sse_replays_from_cache(self, server):
        port, _service = server
        _status, first = sse_request(port, {"sql": FLIGHTS_SQL, "seed": 501})
        status, second = sse_request(port, {"sql": FLIGHTS_SQL, "seed": 501})
        assert status == 200
        first_frames, second_frames = parse_sse(first), parse_sse(second)
        assert second_frames[-1][1] == "done"
        assert second_frames[-1][2]["cache"] == "hit"
        assert len(second_frames) == len(first_frames)
        # replayed updates are marked non-live but carry the same groups
        assert all(f[2]["live"] is False for f in second_frames[:-1])
        assert json.dumps(second_frames[-1][2]["result"], sort_keys=True) == (
            json.dumps(first_frames[-1][2]["result"], sort_keys=True)
        )


class TestCacheCoherence:
    def test_reregistered_csv_never_serves_stale_results(self, tmp_path):
        """The cache-coherence satellite: invalidate + rebind both evict."""
        csv = tmp_path / "metrics.csv"

        def write_rows(value):
            lines = ["g,v"] + [f"{g},{value + i}" for g in ("a", "b") for i in range(50)]
            csv.write_text("\n".join(lines) + "\n")

        write_rows(10.0)
        session = connect(delta=0.1, seed=0)
        session.register_csv("metrics", csv, group_columns=("g",), value_columns=("v",))
        service = QueryService(session, sessions=1, default_seed=0)
        handle = serve_in_thread(service)
        try:
            body = {
                "spec": {
                    "table": "metrics",
                    "group_by": ["g"],
                    "aggregates": [{"func": "AVG", "column": "v"}],
                    "engine": "memory",
                }
            }
            status, env1, _ = request(handle.port, "POST", "/query", body)
            assert status == 200 and env1["cache"] == "miss"
            old = env1["result"]["aggregates"]["AVG(v)"]["groups"][0]["estimate"]
            assert abs(old - (10.0 + 24.5)) < 5.0

            # the file changes on disk; Session.invalidate must evict the
            # server cache, not just the catalog's builds
            write_rows(1000.0)
            session.invalidate("metrics")
            status, env2, _ = request(handle.port, "POST", "/query", body)
            assert status == 200 and env2["cache"] == "miss"
            new = env2["result"]["aggregates"]["AVG(v)"]["groups"][0]["estimate"]
            assert new > 900.0  # fresh data, not the stale cached Result

            # rebinding the name is the other coherence door
            write_rows(5000.0)
            session.register_csv(
                "metrics", csv, group_columns=("g",), value_columns=("v",)
            )
            status, env3, _ = request(handle.port, "POST", "/query", body)
            assert status == 200 and env3["cache"] == "miss"
            rebound = env3["result"]["aggregates"]["AVG(v)"]["groups"][0]["estimate"]
            assert rebound > 4900.0
        finally:
            handle.stop()


class TestShutdown:
    def test_shutdown_leaves_shm_registry_empty(self):
        session = connect(delta=0.1, seed=0)
        session.register_flights("flights", rows=15_000, seed=0)
        service = QueryService(session, sessions=2, default_seed=0)
        handle = serve_in_thread(service)
        try:
            body = {
                "spec": {
                    "table": "flights",
                    "group_by": ["carrier"],
                    "aggregates": [{"func": "AVG", "column": "arrival_delay"}],
                    "engine": "memory",
                    "shards": 2,
                    "executor": "process",
                },
                "seed": 600,
            }
            status, env, _ = request(handle.port, "POST", "/query", body)
            assert status == 200
            assert env["result"]["total_samples"] > 0
        finally:
            handle.stop()
        assert REGISTRY.active_count() == 0
