"""Self-healing service tier: drain, SSE reconnect, durable subscriptions.

Acceptance criteria:

* ``/readyz`` is readiness (503 while draining) distinct from ``/healthz``
  liveness (always 200 while the process serves);
* a draining server sheds new work with 503 + ``Retry-After`` but still
  accepts ``Last-Event-ID`` reconnects;
* a client that drops an SSE connection and reconnects with
  ``Last-Event-ID`` replays the missed frames *byte-identically* from the
  relay buffer and then continues live; reconnecting past the buffer gets
  a structured 409 (``replay_gap``);
* ``durable: true`` subscriptions checkpoint each window into the store;
  re-subscribing with the same ``query_id`` resumes from the cursor with
  the remaining windows bit-identical to an uninterrupted run;
* SIGTERM drains and exits 0 (the E2E smoke also covers this under load).
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import connect
from repro.catalog import IteratorSource, Schema
from repro.query import parse_query
from repro.serve import QueryService, serve_in_thread

EVENTS_SQL = "SELECT g, AVG(v) FROM events GROUP BY g"
DEADLINE = 120

SCHEMA = Schema.from_arrays(
    {"g": np.array(["a"]), "v": np.array([1.0]), "ts": np.array([0.0])}
)


def finite_chunks():
    rng = np.random.default_rng(3)
    for base in range(0, 500, 100):
        yield {
            "g": np.tile(np.array(["a", "b"]), 50),
            "v": rng.random(100) * 10.0,
            "ts": np.arange(base, base + 100, dtype=np.float64),
        }


class PacedStream:
    """An endless chunk stream the test can pause and release."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.gate.set()

    def chunks(self):
        rng = np.random.default_rng(5)
        base = 0
        while True:
            yield {
                "g": np.tile(np.array(["a", "b"]), 50),
                "v": rng.random(100) * 10.0,
                "ts": np.arange(base, base + 100, dtype=np.float64),
            }
            base += 100
            if not self.gate.wait(10.0):
                return


PACED = PacedStream()


@pytest.fixture(scope="module")
def server():
    session = connect(delta=0.1, seed=0, engine="memory")
    session.register("events", IteratorSource(finite_chunks, schema=SCHEMA))
    session.register("endless", IteratorSource(PACED.chunks, schema=SCHEMA))
    service = QueryService(session, sessions=2, default_seed=0)
    handle = serve_in_thread(service)
    yield handle.port, service
    PACED.gate.set()
    handle.stop()


def request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    try:
        conn.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers=headers or {},
        )
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else {}, dict(resp.getheaders())
    finally:
        conn.close()


def sse_request(port, method, path, body, headers=None):
    """Run an SSE request to completion; (status, raw-text, headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    try:
        conn.request(method, path, body=json.dumps(body), headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8"), dict(resp.getheaders())
    finally:
        conn.close()


def open_sse(port, method, path, body, headers=None):
    """Open an SSE request and return (conn, resp) for incremental reads."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=DEADLINE)
    conn.request(method, path, body=json.dumps(body), headers=headers or {})
    return conn, conn.getresponse()


def read_frames(resp, n):
    """Read raw bytes until at least n complete SSE frames have arrived."""
    buf = b""
    deadline = time.monotonic() + DEADLINE
    while buf.count(b"\n\n") < n:
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {n} SSE frames")
        chunk = resp.read1(4096)
        if not chunk:
            break
        buf += chunk
    return buf


def complete_frames(raw: bytes) -> list[bytes]:
    """The fully-received frames of a (possibly truncated) SSE byte stream."""
    parts = raw.split(b"\n\n")
    return [p for p in parts[:-1] if p.strip()]


def parse_frame(frame: bytes):
    fields = dict(
        line.split(": ", 1)
        for line in frame.decode("utf-8").splitlines()
        if ": " in line
    )
    return int(fields["id"]), fields["event"], json.loads(fields["data"])


def parse_frames(text: str):
    return [
        parse_frame(block.encode("utf-8"))
        for block in text.split("\n\n")
        if block.strip()
    ]


class TestReadyzAndDrain:
    """Drain uses its own server: begin_drain is one-way."""

    @pytest.fixture()
    def drain_server(self):
        session = connect(delta=0.1, seed=0, engine="memory")
        session.register("events", IteratorSource(finite_chunks, schema=SCHEMA))
        service = QueryService(session, sessions=1, default_seed=0)
        handle = serve_in_thread(service)
        yield handle.port, service
        handle.stop()

    def test_readyz_flips_503_healthz_stays_200(self, drain_server):
        port, service = drain_server
        status, body, _ = request(port, "GET", "/readyz")
        assert status == 200 and body["ready"] is True

        service.begin_drain()
        status, body, headers = request(port, "GET", "/readyz")
        assert status == 503
        assert body["ready"] is False and body["draining"] is True
        assert "Retry-After" in headers
        # Liveness is not readiness: the process is still healthy.
        status, _body, _ = request(port, "GET", "/healthz")
        assert status == 200

    def test_draining_sheds_new_work_with_retry_after(self, drain_server):
        port, service = drain_server
        service.begin_drain()
        for method, path, body in (
            ("POST", "/query", {"sql": EVENTS_SQL}),
            ("POST", "/stream", {"sql": EVENTS_SQL}),
            ("POST", "/subscribe",
             {"sql": EVENTS_SQL, "window": {"size": 100.0, "on": "ts"}}),
        ):
            status, payload, headers = request(port, method, path, body)
            assert status == 503, f"{path} not shed"
            assert payload["error"]["code"] == "draining"
            assert "Retry-After" in headers
        # Reads keep working so operators can watch the drain.
        assert request(port, "GET", "/tables")[0] == 200
        assert request(port, "GET", "/stats")[0] == 200

    def test_draining_still_accepts_reconnects(self, drain_server):
        port, service = drain_server
        service.begin_drain()
        # The Last-Event-ID exemption: the request is NOT shed with 503 -
        # it reaches resume routing (here: 409, no such stream to resume).
        status, payload, _ = request(
            port, "POST", "/subscribe",
            {"sql": EVENTS_SQL, "query_id": "gone"},
            headers={"Last-Event-ID": "3"},
        )
        assert status == 409
        assert payload["error"]["code"] == "replay_gap"


class TestReconnectResume:
    @pytest.fixture()
    def paced_server(self):
        paced = PacedStream()
        session = connect(delta=0.1, seed=0, engine="memory")
        session.register("paced", IteratorSource(paced.chunks, schema=SCHEMA))
        service = QueryService(session, sessions=1, default_seed=0)
        handle = serve_in_thread(service)
        yield handle.port, paced, service
        paced.gate.set()
        handle.stop()

    def test_subscribe_reconnect_replays_byte_identical(self, paced_server):
        port, paced, service = paced_server
        body = {
            "sql": "SELECT g, AVG(v) FROM paced GROUP BY g",
            "window": {"size": 100.0, "on": "ts"},
            "emit_updates": False,
            "query_id": "rc-sub",
            "seed": 3,
        }
        conn, resp = open_sse(port, "POST", "/subscribe", body)
        raw = read_frames(resp, 2)
        # Drop mid-stream; the endless run stays in flight.  (Close the
        # response too - it keeps the socket fd alive via makefile.)
        resp.close()
        conn.close()
        first = complete_frames(raw)
        assert len(first) >= 2
        last_id, _, _ = parse_frame(first[1])

        # The server only notices the drop when a write fails; windows are
        # still flowing, so wait for the relay to detach, then throttle.
        deadline = time.monotonic() + DEADLINE
        while True:
            ticket = service._tickets.get("rc-sub")
            assert ticket is not None, "subscription retired unexpectedly"
            if not ticket.relay.attached:
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        paced.gate.clear()

        # Reconnect asking for everything after frame 1: frame 2 must come
        # back byte-for-byte from the relay, then the live tail continues.
        conn2, resp2 = open_sse(
            port, "POST", "/subscribe", {"query_id": "rc-sub"},
            headers={"Last-Event-ID": str(last_id - 1)},
        )
        assert resp2.status == 200
        assert resp2.headers["Content-Type"].startswith("text/event-stream")
        buf = read_frames(resp2, 1)
        assert complete_frames(buf)[0] == first[1]  # byte-identical replay
        paced.gate.set()
        buf += read_frames(resp2, 2)  # at least one live frame after it
        request(port, "DELETE", "/query/rc-sub")
        buf += resp2.read()
        conn2.close()
        frames = [parse_frame(f) for f in complete_frames(buf)]
        ids = [fid for fid, _, _ in frames]
        assert ids == list(range(last_id, last_id + len(ids)))  # no gaps
        assert frames[-1][1] == "done" and frames[-1][2]["cancelled"] is True
        # The ticket retired with the done frame: a third reconnect has
        # nothing to attach to.
        status, payload, _ = request(
            port, "POST", "/subscribe", {"query_id": "rc-sub"},
            headers={"Last-Event-ID": str(last_id)},
        )
        assert status == 409 and payload["error"]["code"] == "replay_gap"

    def test_stream_reconnect_replays_and_finishes(self):
        """Driven at the service level, where the disconnect point is
        deterministic: drop the consumer after exactly one frame, then
        re-attach with Last-Event-ID and collect the rest."""
        import asyncio

        session = connect(delta=0.1, seed=0, engine="memory")
        session.register("events", IteratorSource(finite_chunks, schema=SCHEMA))
        service = QueryService(session, sessions=1, default_seed=0)

        async def scenario():
            body = json.dumps({"sql": EVENTS_SQL, "query_id": "rc-stream"})
            resp = await service.handle("POST", "/stream", {}, body.encode())
            assert resp.status == 200
            agen = resp.body
            first = await agen.__anext__()
            await agen.aclose()  # client vanishes before `done`

            resume = await service.handle(
                "POST",
                "/stream",
                {"last-event-id": "0"},
                json.dumps({"query_id": "rc-stream"}).encode(),
            )
            assert resume.status == 200
            frames = [frame async for frame in resume.body]
            return first, frames

        try:
            first, frames = asyncio.run(scenario())
        finally:
            service.close()
        assert frames[0] == first  # resume from 0 replays frame 1 exactly
        parsed = [parse_frame(f.rstrip(b"\n")) for f in frames]
        assert [fid for fid, _, _ in parsed] == list(range(1, len(parsed) + 1))
        assert parsed[-1][1] == "done"
        assert parsed[-1][2]["result"]["aggregates"]

    def test_reconnect_beyond_buffer_is_replay_gap(self, server):
        port, _service = server
        status, payload, _ = request(
            port, "POST", "/subscribe", {"query_id": "never-was"},
            headers={"Last-Event-ID": "1"},
        )
        assert status == 409
        assert payload["error"]["code"] == "replay_gap"
        assert "restart" in payload["error"]["message"]

    def test_reconnect_ahead_of_stream_is_replay_gap(self, server):
        port, _service = server
        holder = {}

        def hold():
            holder["result"] = sse_request(
                port, "POST", "/subscribe",
                {"sql": "SELECT g, AVG(v) FROM endless GROUP BY g",
                 "window": {"size": 100.0, "on": "ts"},
                 "emit_updates": False, "query_id": "ahead-sub"},
            )

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            deadline = time.monotonic() + DEADLINE
            while request(port, "GET", "/healthz")[1].get("inflight", 0) < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            # An id the stream has not reached yet cannot be resumed from.
            status, payload, _ = request(
                port, "POST", "/subscribe", {"query_id": "ahead-sub"},
                headers={"Last-Event-ID": "999999"},
            )
            assert status == 409
            assert payload["error"]["code"] == "replay_gap"
            # While the original consumer is attached, a second consumer
            # at a valid position is refused too (single reader).
            status, payload, _ = request(
                port, "POST", "/subscribe", {"query_id": "ahead-sub"},
                headers={"Last-Event-ID": "0"},
            )
            assert status == 409
            assert payload["error"]["code"] == "already_attached"
        finally:
            request(port, "DELETE", "/query/ahead-sub")
            thread.join(timeout=DEADLINE)

    def test_non_integer_last_event_id_rejected(self, server):
        port, _service = server
        status, payload, _ = request(
            port, "POST", "/subscribe", {"query_id": "x"},
            headers={"Last-Event-ID": "abc"},
        )
        assert status == 400
        assert "Last-Event-ID" in payload["error"]["message"]


def _store_dataset(rows=500):
    rng = np.random.default_rng(11)
    return {
        "g": np.tile(np.array(["a", "b"]), rows // 2),
        "v": rng.random(rows) * 10.0,
        "ts": np.arange(rows, dtype=np.float64),
    }


def _checkpoint_gone(session, checkpoint_id):
    """True once the pump's finally has retired the checkpoint.

    The terminal SSE frame hits the wire *before* the pump joins the
    runner and deletes the cursor, so completion tests poll briefly.
    """
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        if session.catalog.load_checkpoint(checkpoint_id) is None:
            return True
        time.sleep(0.02)
    return False


def _window_payloads(frames):
    """Window frames minus wall-clock noise, for cross-run comparison."""
    out = []
    for _fid, event, data in frames:
        if event != "window":
            continue
        data = dict(data)
        data.pop("elapsed_seconds", None)
        out.append(data)
    return out


class TestDurableSubscriptions:
    @pytest.fixture()
    def durable_server(self, tmp_path):
        session = connect(store=tmp_path / "store", engine="memory", seed=0)
        session.attach("t", _store_dataset())
        service = QueryService(session, sessions=1, default_seed=0)
        handle = serve_in_thread(service)
        yield handle.port, service, session
        handle.stop()

    SQL = "SELECT g, AVG(v) FROM t GROUP BY g"
    SUB = {
        "sql": SQL,
        "window": {"size": 100.0, "on": "ts"},
        "emit_updates": False,
        "seed": 3,
    }

    def test_durable_needs_store_backed_service(self, server):
        port, _service = server
        status, text, _ = sse_request(
            port, "POST", "/subscribe",
            {"sql": EVENTS_SQL, "window": {"size": 100.0, "on": "ts"},
             "durable": True, "query_id": "d1"},
        )
        assert status == 400
        assert "store-backed" in json.loads(text)["error"]["message"]

    def test_durable_needs_explicit_query_id(self, durable_server):
        port, _service, _session = durable_server
        status, text, _ = sse_request(
            port, "POST", "/subscribe", {**self.SUB, "durable": True}
        )
        assert status == 400
        assert "query_id" in json.loads(text)["error"]["message"]

    def test_durable_checkpoint_deleted_on_completion(self, durable_server):
        port, _service, session = durable_server
        status, text, _ = sse_request(
            port, "POST", "/subscribe",
            {**self.SUB, "durable": True, "query_id": "night"},
        )
        assert status == 200
        frames = parse_frames(text)
        assert frames[-1][1] == "done" and frames[-1][2]["windows"] == 5
        # Completed cleanly: the checkpoint has nothing left to resume.
        assert _checkpoint_gone(session, "sub-public-night")

    def test_durable_resume_continues_bit_identical(self, durable_server):
        port, _service, session = durable_server
        # Reference: an uninterrupted non-durable run of the same query.
        status, text, _ = sse_request(port, "POST", "/subscribe", self.SUB)
        assert status == 200
        reference = _window_payloads(parse_frames(text))
        assert len(reference) == 5

        # A previous server life delivered two windows, then died: the
        # store holds its cursor.  (Written through the session API - the
        # same write path the serve tier uses.)
        spec = (
            session.sql(parse_query(self.SQL)).window(100.0, on="ts").spec()
        )
        session.catalog.save_checkpoint(
            "sub-public-night",
            kind="subscription",
            payload={
                "spec": spec.canonical_key(),
                "seed": 3,
                "max_windows": None,
                "emit_updates": False,
            },
            state={"emissions": 2},
        )
        # Re-subscribing durable with the same query_id resumes: only the
        # remaining three windows arrive, bit-identical to the reference.
        status, text, _ = sse_request(
            port, "POST", "/subscribe",
            {**self.SUB, "durable": True, "query_id": "night"},
        )
        assert status == 200
        frames = parse_frames(text)
        assert frames[-1][1] == "done"
        assert _window_payloads(frames) == reference[2:]
        assert _checkpoint_gone(session, "sub-public-night")

    def test_durable_resume_rejects_a_different_query(self, durable_server):
        port, _service, session = durable_server
        session.catalog.save_checkpoint(
            "sub-public-night",
            kind="subscription",
            payload={"spec": "something-else", "seed": 3,
                     "max_windows": None, "emit_updates": False},
            state={"emissions": 2},
        )
        status, text, _ = sse_request(
            port, "POST", "/subscribe",
            {**self.SUB, "durable": True, "query_id": "night"},
        )
        assert status == 409
        assert json.loads(text)["error"]["code"] == "checkpoint_mismatch"

    def test_explicit_cancel_drops_the_checkpoint(self, durable_server):
        port, _service, session = durable_server
        # An endless source: the subscription can only end via DELETE.
        paced = PacedStream()
        session.register(
            "endless2", IteratorSource(paced.chunks, schema=SCHEMA)
        )
        conn, resp = open_sse(
            port, "POST", "/subscribe",
            {"sql": "SELECT g, AVG(v) FROM endless2 GROUP BY g",
             "window": {"size": 100.0, "on": "ts"},
             "emit_updates": False, "seed": 3,
             "durable": True, "query_id": "night2"},
        )
        try:
            assert resp.status == 200
            buf = read_frames(resp, 1)  # at least one window is live
            request(port, "DELETE", "/query/night2")
            buf += resp.read()
        finally:
            paced.gate.clear()
            resp.close()
            conn.close()
        frames = [parse_frame(f) for f in complete_frames(buf)]
        assert frames[-1][1] == "done" and frames[-1][2]["cancelled"] is True
        # Explicit DELETE = the user abandoned it: no dangling checkpoint.
        assert _checkpoint_gone(session, "sub-public-night2")


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self):
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--flights",
             "--rows", "2000", "--port", str(port), "--drain-timeout", "5"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening" in line, line
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, out
        assert "draining" in out and "stopped" in out
