"""Result-cache tests: keying, single-flight, LRU, and invalidation.

The cache-coherence satellite lives here: ``Session.invalidate(name)`` and
re-registering a source under the same name must both evict the server's
cached Results for that table - including the invalidate-during-execution
race, which the generation counter closes.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro import connect
from repro.serve.cache import ResultCache
from repro.serve.wire import canonical_json
from repro.session.result import Result


@pytest.fixture(scope="module")
def completed():
    """One real completed (spec, Result, payload) triple to populate caches."""
    with connect(delta=0.1, seed=0) as session:
        session.register_flights("flights", rows=10_000, seed=0)
        spec = session.sql(
            "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
        ).spec()
        result = session.execute(spec, seed=0)
    return spec, result, canonical_json(result.to_dict())


def key_of(spec, seed=0):
    return (spec.canonical_key(), repr(seed))


class TestStoreAndLookup:
    def test_miss_then_flight_then_hit(self, completed):
        spec, result, payload = completed

        async def main():
            cache = ResultCache()
            key = key_of(spec)
            assert cache.get(key) is None
            flight = cache.begin_flight(key, spec.table)
            assert cache.flight(key) is flight
            assert cache.complete_flight(flight, result, payload) is True
            assert cache.flight(key) is None
            got_result, got_payload = cache.get(key)
            assert got_payload == payload  # bit-identical bytes for every reader
            assert got_result is result
            assert cache.stats.hits == 1 and cache.stats.misses == 1
            assert len(cache) == 1

        asyncio.run(main())

    def test_key_includes_seed(self, completed):
        spec, result, payload = completed

        async def main():
            cache = ResultCache()
            flight = cache.begin_flight(key_of(spec, 0), spec.table)
            cache.complete_flight(flight, result, payload)
            assert cache.get(key_of(spec, 1)) is None

        asyncio.run(main())

    def test_deadline_expired_results_are_never_cached(self, completed):
        spec, result, payload = completed
        # deadline_exceeded is derived from the aggregates' run params;
        # fabricate an expired result by flipping it on the wire form.
        wire = json.loads(payload)
        for agg in wire["aggregates"].values():
            agg["raw"]["params"]["deadline_exceeded"] = True
        expired = Result.from_dict(wire)
        assert expired.deadline_exceeded

        async def main():
            cache = ResultCache()
            key = key_of(spec)
            flight = cache.begin_flight(key, spec.table)
            stored = cache.complete_flight(flight, expired, canonical_json(wire))
            assert stored is False
            assert cache.get(key) is None
            assert cache.stats.uncacheable == 1

        asyncio.run(main())

    def test_lru_eviction_beyond_capacity(self, completed):
        spec, result, payload = completed

        async def main():
            cache = ResultCache(max_entries=2)
            keys = [("k%d" % i, "0") for i in range(3)]
            for key in keys:
                flight = cache.begin_flight(key, spec.table)
                cache.complete_flight(flight, result, payload)
            assert len(cache) == 2
            assert cache.get(keys[0]) is None  # oldest evicted
            assert cache.get(keys[2]) is not None
            assert cache.stats.evicted == 1

        asyncio.run(main())


class TestSingleFlight:
    def test_followers_share_the_leader_outcome(self, completed):
        spec, result, payload = completed

        async def main():
            cache = ResultCache()
            key = key_of(spec)
            flight = cache.begin_flight(key, spec.table)
            followers = [
                asyncio.ensure_future(cache.follow(flight)) for _ in range(3)
            ]
            await asyncio.sleep(0)
            cache.complete_flight(flight, result, payload)
            outcomes = await asyncio.gather(*followers)
            assert all(p == payload for _r, p in outcomes)
            assert flight.followers == 3
            assert cache.stats.shared == 3

        asyncio.run(main())

    def test_followers_share_the_leader_failure(self, completed):
        spec, _result, _payload = completed

        async def main():
            cache = ResultCache()
            key = key_of(spec)
            flight = cache.begin_flight(key, spec.table)
            follower = asyncio.ensure_future(cache.follow(flight))
            await asyncio.sleep(0)
            boom = RuntimeError("leader died")
            cache.fail_flight(flight, boom)
            with pytest.raises(RuntimeError, match="leader died"):
                await follower
            assert cache.flight(key) is None
            assert cache.get(key) is None

        asyncio.run(main())

    def test_double_begin_flight_is_an_error(self, completed):
        spec, _result, _payload = completed

        async def main():
            cache = ResultCache()
            key = key_of(spec)
            cache.begin_flight(key, spec.table)
            with pytest.raises(RuntimeError):
                cache.begin_flight(key, spec.table)

        asyncio.run(main())


class TestInvalidation:
    def test_invalidate_table_drops_only_that_table(self, completed):
        spec, result, payload = completed

        async def main():
            cache = ResultCache()
            for table, key in (("a", ("ka", "0")), ("b", ("kb", "0"))):
                flight = cache.begin_flight(key, table)
                cache.complete_flight(flight, result, payload)
            assert cache.invalidate_table("a") == 1
            assert cache.get(("ka", "0")) is None
            assert cache.get(("kb", "0")) is not None
            assert cache.stats.invalidated == 1

        asyncio.run(main())

    def test_invalidate_during_flight_vetoes_caching(self, completed):
        spec, result, payload = completed

        async def main():
            cache = ResultCache()
            key = key_of(spec)
            flight = cache.begin_flight(key, spec.table)
            # the table changes while the query is still sampling
            cache.invalidate_table(spec.table)
            stored = cache.complete_flight(flight, result, payload)
            assert stored is False  # stale execution never enters the cache
            assert cache.get(key) is None
            # a flight begun after the invalidation caches normally
            flight2 = cache.begin_flight(key, spec.table)
            assert cache.complete_flight(flight2, result, payload) is True

        asyncio.run(main())

    def test_catalog_attach_evicts_on_invalidate_and_rebind(self, completed):
        spec, result, payload = completed

        async def main():
            session = connect(delta=0.1, seed=0)
            rows = {
                "g": np.array(["a", "b"] * 500),
                "v": np.random.default_rng(0).uniform(0, 10, 1000),
            }
            session.register("t", dict(rows))
            cache = ResultCache().attach(session.catalog)
            key = ("kt", "0")
            flight = cache.begin_flight(key, "t")
            cache.complete_flight(flight, result, payload)
            assert cache.get(key) is not None

            session.invalidate("t")
            assert cache.get(key) is None

            flight = cache.begin_flight(key, "t")
            cache.complete_flight(flight, result, payload)
            assert cache.get(key) is not None
            session.register("t", dict(rows))  # rebinding evicts too
            assert cache.get(key) is None
            session.close()

        asyncio.run(main())
