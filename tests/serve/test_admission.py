"""Admission-control policy tests: quotas, queueing, shedding, isolation.

Satellite coverage for the serve subsystem: quota exhaustion and
full-queue shedding must produce structured errors with retry-after, a
tenant at quota must not starve other tenants, and cancelling a queued
request must remove it without it ever running.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import QueryCancelled
from repro.serve.admission import AdmissionController, QueryShed
from repro.serve.tenants import TenantConfig, TenantRegistry


def run(coro):
    return asyncio.run(coro)


def controller(**config) -> AdmissionController:
    return AdmissionController(TenantRegistry(TenantConfig(**config)))


class TestAdmit:
    def test_under_quota_is_granted_immediately(self):
        async def main():
            ctl = controller(max_concurrent=2)
            a = ctl.submit("t")
            b = ctl.submit("t")
            await asyncio.wait_for(a.wait(), 1)
            await asyncio.wait_for(b.wait(), 1)
            state = ctl.tenants.state("t")
            assert state.running == 2
            assert state.counters.admitted == 2
            a.release()
            b.release()
            assert state.running == 0

        run(main())

    def test_release_is_idempotent(self):
        async def main():
            ctl = controller(max_concurrent=1)
            a = ctl.submit("t")
            a.release()
            a.release()
            assert ctl.tenants.state("t").running == 0

        run(main())


class TestQueue:
    def test_at_quota_queues_fifo_and_slot_transfers(self):
        async def main():
            ctl = controller(max_concurrent=1, queue_limit=4)
            state = ctl.tenants.state("t")
            first = ctl.submit("t")
            await first.wait()
            order: list[str] = []

            async def waiter(name):
                adm = ctl.submit("t")
                await adm.wait()
                order.append(name)
                return adm

            t_a = asyncio.ensure_future(waiter("a"))
            await asyncio.sleep(0)  # let a enqueue before b
            t_b = asyncio.ensure_future(waiter("b"))
            await asyncio.sleep(0)
            assert len(state.waiters) == 2
            assert state.counters.queued == 2

            first.release()  # slot hands to a; running never dips
            adm_a = await asyncio.wait_for(t_a, 1)
            assert order == ["a"]
            assert state.running == 1
            adm_a.release()
            adm_b = await asyncio.wait_for(t_b, 1)
            assert order == ["a", "b"]
            adm_b.release()
            assert state.running == 0

        run(main())

    def test_cancel_during_queue_removes_entry_without_running(self):
        async def main():
            ctl = controller(max_concurrent=1, queue_limit=4)
            state = ctl.tenants.state("t")
            first = ctl.submit("t")
            await first.wait()
            queued = ctl.submit("t")
            waiting = asyncio.ensure_future(queued.wait())
            await asyncio.sleep(0)
            assert queued.queued
            assert queued.cancel() is True
            with pytest.raises(QueryCancelled):
                await asyncio.wait_for(waiting, 1)
            assert state.waiters == []
            assert queued.cancel() is False  # second cancel is a no-op
            # the slot was never granted, so releasing the cancelled
            # admission must not touch the running count
            queued.release()
            assert state.running == 1
            first.release()
            assert state.running == 0
            # admitted counts only granted slots
            assert state.counters.admitted == 1

        run(main())


class TestShed:
    def test_full_queue_sheds_with_retry_after(self):
        async def main():
            ctl = controller(max_concurrent=1, queue_limit=1)
            running = ctl.submit("t")
            await running.wait()
            queued = ctl.submit("t")
            with pytest.raises(QueryShed) as err:
                ctl.submit("t")
            assert err.value.tenant == "t"
            assert err.value.retry_after_ms > 0
            state = ctl.tenants.state("t")
            assert state.counters.shed == 1
            # shedding left running/queue state untouched
            assert state.running == 1
            assert len(state.waiters) == 1
            queued.cancel()
            running.release()

        run(main())

    def test_zero_queue_limit_sheds_at_quota(self):
        async def main():
            ctl = controller(max_concurrent=1, queue_limit=0)
            running = ctl.submit("t")
            await running.wait()
            with pytest.raises(QueryShed):
                ctl.submit("t")
            running.release()
            # once the slot frees, submits are admitted again
            again = ctl.submit("t")
            await asyncio.wait_for(again.wait(), 1)
            again.release()

        run(main())

    def test_retry_after_scales_with_load(self):
        async def main():
            ctl = controller(max_concurrent=1, queue_limit=8)
            held = [ctl.submit("t")]
            await held[0].wait()
            light = ctl.retry_after_ms(ctl.tenants.state("t"))
            for _ in range(4):
                held.append(ctl.submit("t"))
            heavy = ctl.retry_after_ms(ctl.tenants.state("t"))
            assert heavy > light
            for adm in held[1:]:
                adm.cancel()
            held[0].release()

        run(main())


class TestIsolation:
    def test_tenant_at_quota_does_not_starve_others(self):
        async def main():
            registry = TenantRegistry(TenantConfig(max_concurrent=1, queue_limit=0))
            ctl = AdmissionController(registry)
            hog = ctl.submit("hog")
            await hog.wait()
            with pytest.raises(QueryShed):
                ctl.submit("hog")
            # a different tenant is admitted instantly despite hog's storm
            other = ctl.submit("other")
            await asyncio.wait_for(other.wait(), 1)
            assert registry.state("other").counters.shed == 0
            other.release()
            hog.release()

        run(main())

    def test_explicitly_provisioned_tenant_gets_own_config(self):
        async def main():
            registry = TenantRegistry(TenantConfig(max_concurrent=1, queue_limit=0))
            registry.configure("big", TenantConfig(max_concurrent=3, queue_limit=0))
            ctl = AdmissionController(registry)
            grants = [ctl.submit("big") for _ in range(3)]
            for g in grants:
                await g.wait()
            with pytest.raises(QueryShed):
                ctl.submit("big")
            for g in grants:
                g.release()

        run(main())
