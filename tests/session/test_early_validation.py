"""Schema-threaded builders: shape errors raise where they are typed.

Before the catalog redesign a typo'd column or a string-typed AVG target
survived all the way into the planner (or the engine build); builders now
carry the table's schema, so the failing *call* raises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.session import avg, connect, total


@pytest.fixture()
def session():
    rng = np.random.default_rng(2)
    n = 500
    return connect().register(
        "t",
        {
            "g": rng.choice(["a", "b"], size=n),
            "y": rng.uniform(0, 100, size=n),
            "note": rng.choice(["x", "y"], size=n),
        },
    )


class TestEarlyErrors:
    def test_group_by_unknown_column(self, session):
        with pytest.raises(KeyError, match="GROUP BY column 'bogus'"):
            session.table("t").group_by("bogus")

    def test_agg_unknown_column(self, session):
        with pytest.raises(KeyError, match="aggregate column 'bogus'"):
            session.table("t").agg(avg("bogus"))

    def test_avg_over_string_column(self, session):
        with pytest.raises(TypeError, match="not numeric"):
            session.table("t").agg(avg("note"))

    def test_sum_over_string_column(self, session):
        with pytest.raises(TypeError, match="not numeric"):
            session.table("t").agg(total("note"))

    def test_count_star_always_fine(self, session):
        session.table("t").group_by("g").agg("COUNT(*)")  # no raise

    def test_where_unknown_column(self, session):
        with pytest.raises(KeyError, match="unknown columns"):
            session.table("t").where("bogus > 3")

    def test_where_type_mismatch(self, session):
        with pytest.raises(TypeError, match="string literal"):
            session.table("t").where("y = 'fast'")

    def test_bool_column_is_numeric_end_to_end(self):
        """Validation and the runtime kernel agree that bool is numeric:
        a query the schema accepts must not crash mid-scan (regression)."""
        rng = np.random.default_rng(4)
        n = 400
        session = connect(engine="memory").register(
            "t",
            {
                "g": rng.choice(["a", "b"], size=n),
                "flag": rng.integers(0, 2, size=n).astype(bool),
                "y": rng.uniform(0, 100, size=n),
            },
        )
        res = (
            session.table("t").where("flag = 1").group_by("g")
            .agg("COUNT(*)").run()
        )
        assert sum(res.estimates().values()) > 0
        with pytest.raises(TypeError, match="string literal"):
            session.table("t").where("flag = 'yes'")

    def test_errors_raise_at_the_call_not_at_run(self, session):
        builder = session.table("t").group_by("g")
        try:
            builder.agg(avg("bogus"))
        except KeyError:
            pass
        # the original builder is untouched (immutability) and still runs
        result = builder.agg(avg("y")).run(seed=1)
        assert result.labels == ["a", "b"]


class TestPlannerStillValidates:
    """Specs that bypass the builder (raw SQL specs, dict catalogs) still
    get the same checks from the planner."""

    def test_sql_on_unknown_table_fails_at_run(self, session):
        builder = session.sql("SELECT g, AVG(y) FROM nope GROUP BY g")
        with pytest.raises(KeyError, match="unknown table"):
            builder.run(seed=1)

    def test_planner_rejects_string_avg(self, session):
        from repro.session import execute_spec
        from repro.session.spec import QuerySpec
        from repro.query.ast import Aggregate

        spec = QuerySpec(
            table="t", group_by=("g",), aggregates=(Aggregate("AVG", "note"),)
        )
        with pytest.raises(TypeError, match="not numeric"):
            execute_spec(spec, session.catalog, seed=0)

    def test_planner_rejects_predicate_type_mismatch(self, session):
        with pytest.raises(TypeError, match="string literal"):
            session.execute("SELECT g, AVG(y) FROM t WHERE y = 'slow' GROUP BY g")

    def test_sql_builder_carries_schema_for_later_chaining(self, session):
        builder = session.sql("SELECT g, AVG(y) FROM t GROUP BY g")
        with pytest.raises(KeyError, match="unknown columns"):
            builder.where("bogus = 1")
