"""JSON round-trip tests for the wire-format serializers (repro.serve).

Every object that crosses the HTTP boundary - QuerySpec, Result,
AggregateResult, GroupEstimate, PartialUpdate - must survive
``from_dict(json.loads(json.dumps(to_dict())))`` losslessly: the server
returns serialized Results, clients may resubmit serialized specs, and the
shared result cache keys on the canonical spec JSON.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import avg, connect
from repro.session.result import (
    AggregateResult,
    GroupEstimate,
    PartialUpdate,
    Result,
)
from repro.session.spec import Aggregate, GuaranteeSpec, HavingSpec, QuerySpec


def roundtrip(obj, cls):
    """to_dict -> JSON text -> from_dict; returns the reconstruction."""
    wire = json.loads(json.dumps(obj.to_dict()))
    return cls.from_dict(wire)


def flights_session(**kwargs):
    session = connect(delta=0.1, seed=0, **kwargs)
    session.register_flights("flights", rows=20_000, seed=0)
    return session


# ---------------------------------------------------------------------------
# QuerySpec
# ---------------------------------------------------------------------------


class TestQuerySpecRoundtrip:
    def test_minimal_spec(self):
        spec = QuerySpec(
            table="t", group_by=("g",), aggregates=(Aggregate("AVG", "v"),)
        )
        assert roundtrip(spec, QuerySpec) == spec

    def test_every_field_set(self):
        session = flights_session()
        spec = (
            session.sql(
                "SELECT carrier, AVG(arrival_delay) FROM flights "
                "WHERE distance > 500 AND NOT "
                "(carrier IN ('WN', 'DL') OR arrival_delay BETWEEN 1 AND 2) "
                "GROUP BY carrier HAVING AVG(arrival_delay) >= 10"
            )
            .bound(100.0)
            .sharded(4, max_workers=2, executor="process")
            .deadline(1500.0)
            .retries(5)
            .spec()
        )
        back = roundtrip(spec, QuerySpec)
        assert back == spec
        assert back.where == spec.where  # structural predicate equality
        assert back.canonical_key() == spec.canonical_key()

    @pytest.mark.parametrize(
        "guarantee",
        [
            GuaranteeSpec(delta=0.01, mode="top", top_t=3, top_largest=False),
            GuaranteeSpec(delta=0.2, mode="trends", neighbors=((0, 1), (1, 2))),
            GuaranteeSpec(mode="values", value_tolerance=2.5),
            GuaranteeSpec(mode="mistakes", min_correct_fraction=0.9),
            GuaranteeSpec(resolution=1.5),
        ],
        ids=["top", "trends", "values", "mistakes", "resolution"],
    )
    def test_guarantee_modes(self, guarantee):
        spec = QuerySpec(
            table="t",
            group_by=("g",),
            aggregates=(Aggregate("AVG", "v"),),
            guarantee=guarantee,
        )
        back = roundtrip(spec, QuerySpec)
        assert back.guarantee == guarantee
        assert back == spec

    def test_having_roundtrip(self):
        having = HavingSpec(agg=Aggregate("SUM", "v"), op=">=", value=12.5)
        assert roundtrip(having, HavingSpec) == having

    def test_from_dict_revalidates(self):
        wire = QuerySpec(
            table="t", group_by=("g",), aggregates=(Aggregate("AVG", "v"),)
        ).to_dict()
        wire["aggregates"] = [{"func": "MEDIAN", "column": "v"}]
        with pytest.raises(ValueError):
            QuerySpec.from_dict(wire)

    def test_canonical_key_is_front_door_independent(self):
        session = flights_session()
        sql_spec = session.sql(
            "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
        ).spec()
        builder_spec = (
            session.table("flights")
            .group_by("carrier")
            .agg(avg("arrival_delay"))
            .spec()
        )
        assert sql_spec.canonical_key() == builder_spec.canonical_key()
        # and the key is deterministic JSON, independent of dict order
        assert json.loads(sql_spec.canonical_key()) == sql_spec.to_dict()

    def test_canonical_key_distinguishes_specs(self):
        base = QuerySpec(
            table="t", group_by=("g",), aggregates=(Aggregate("AVG", "v"),)
        )
        other = QuerySpec(
            table="t",
            group_by=("g",),
            aggregates=(Aggregate("AVG", "v"),),
            guarantee=GuaranteeSpec(delta=0.01),
        )
        assert base.canonical_key() != other.canonical_key()


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def result_of(session, sql, **run_kwargs) -> Result:
    return session.sql(sql).run(seed=0, **run_kwargs)


class TestResultRoundtrip:
    @pytest.fixture(scope="class")
    def session(self):
        with flights_session() as s:
            yield s

    def assert_result_roundtrip(self, result: Result) -> Result:
        back = roundtrip(result, Result)
        assert back.to_dict() == result.to_dict()
        assert back.labels == result.labels
        assert back.caveats == result.caveats
        assert back.dropped_by_having == result.dropped_by_having
        assert back.total_samples == result.total_samples
        assert back.deadline_exceeded == result.deadline_exceeded
        assert back.spec == result.spec
        assert set(back.aggregates) == set(result.aggregates)
        for key, agg in result.aggregates.items():
            got = back.aggregates[key]
            assert got.estimates() == agg.estimates()
            np.testing.assert_allclose(got.raw.estimates, agg.raw.estimates)
            assert list(got.raw.inactive_order) == list(agg.raw.inactive_order)
            assert got.raw.params == agg.raw.params
        # the engine handle deliberately does not cross the wire
        assert back.engine is None
        return back

    def test_plain_avg(self, session):
        result = result_of(
            session,
            "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
        )
        self.assert_result_roundtrip(result)

    def test_multi_aggregate_with_having(self, session):
        result = result_of(
            session,
            "SELECT carrier, AVG(arrival_delay), COUNT(*), SUM(distance) "
            "FROM flights GROUP BY carrier HAVING AVG(arrival_delay) >= 0",
        )
        assert len(result.aggregates) == 3
        assert result.caveats  # HAVING caveat present and serialized
        self.assert_result_roundtrip(result)

    def test_deadline_exceeded_result(self, session):
        spec = session.sql(
            "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
        ).deadline(0.0001).spec()
        result = session.execute(spec, seed=0)
        assert result.deadline_exceeded
        back = self.assert_result_roundtrip(result)
        assert back.deadline_exceeded
        assert any("deadline" in c for c in back.caveats)

    def test_accounting_survives(self, session):
        result = result_of(
            session,
            "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
        )
        back = roundtrip(result, Result)
        assert back.io_seconds == result.io_seconds
        assert back.cpu_seconds == result.cpu_seconds
        assert back.first.total_samples == result.first.total_samples
        stats = back.first.raw.stats
        assert stats is not None
        assert stats.scanned_rows == result.first.raw.stats.scanned_rows

    def test_group_estimate_roundtrip(self, session):
        result = result_of(
            session,
            "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
        )
        for est in result.first.groups:
            back = roundtrip(est, GroupEstimate)
            assert back == est

    def test_aggregate_result_numpy_meta_jsonifies(self, session):
        result = (
            session.table("flights")
            .group_by("carrier")
            .agg(avg("arrival_delay"))
            .top(3)
            .run(seed=0)
        )
        agg = result.first
        wire = agg.to_dict()
        json.dumps(wire)  # numpy scalars/arrays in meta must be coerced
        back = AggregateResult.from_dict(wire)
        assert back.meta == json.loads(json.dumps(wire))["meta"]
        assert back.estimates() == agg.estimates()


class TestPartialUpdateRoundtrip:
    def test_stream_updates_roundtrip(self):
        with flights_session() as session:
            stream = session.sql(
                "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
            ).stream(seed=0)
            updates = list(stream)
        assert updates
        for update in updates:
            back = roundtrip(update, PartialUpdate)
            assert back == update
            assert back.done == update.done
        assert updates[-1].done
