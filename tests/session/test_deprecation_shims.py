"""Every legacy ``run_*`` front door warns and matches the Session API exactly.

The pre-Session entrypoints are thin shims over the same implementations the
Session planner dispatches to, so with the same engine construction and seed
the results must be *bit-identical* - and every call must emit a
DeprecationWarning pointing at the replacement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions import (
    run_count_known,
    run_ifocus_mistakes,
    run_ifocus_multi_avg,
    run_ifocus_partial,
    run_ifocus_sum,
    run_ifocus_topt,
    run_ifocus_trends,
    run_ifocus_values,
    run_multi_groupby,
    run_noindex,
    stream_partial_results,
)
from repro.core.ifocus import run_ifocus
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Table
from repro.query.plan import execute_query
from repro.session import avg, connect, count, total


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(9)
    n = 9_000
    names = rng.choice(["a", "b", "c"], size=n)
    base = {"a": 15.0, "b": 45.0, "c": 80.0}
    y = np.clip(np.array([base[x] for x in names]) + rng.normal(0, 6, n), 0, 100)
    z = np.clip(rng.normal(50, 10, n), 0, 100)
    h = rng.choice(["p", "q"], size=n)
    return Table.from_dict("t", {"g": names, "h": h, "y": y, "z": z})


@pytest.fixture()
def session(table):
    return connect().register("t", table)


@pytest.fixture()
def engine(table) -> NeedletailEngine:
    # Identical to the engine the Session planner builds for AVG(y)/SUM(y).
    return NeedletailEngine(table, "g", "y")


def assert_same_ordering_result(legacy, raw) -> None:
    np.testing.assert_array_equal(legacy.estimates, raw.estimates)
    np.testing.assert_array_equal(legacy.samples_per_group, raw.samples_per_group)
    assert legacy.inactive_order == raw.inactive_order
    assert [g.name for g in legacy.groups] == [g.name for g in raw.groups]


def session_avg(session):
    return session.table("t").group_by("g").agg(avg("y"))


class TestShimsWarnAndMatch:
    def test_run_ifocus(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus"):
            legacy = run_ifocus(engine, delta=0.05, seed=3)
        res = session_avg(session).run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_ifocus_sum(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus_sum"):
            legacy = run_ifocus_sum(engine, delta=0.05, seed=3)
        res = session.table("t").group_by("g").agg(total("y")).run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_count_known(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_count_known"):
            legacy = run_count_known(engine)
        res = session.table("t").group_by("g").agg(count("*")).run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_ifocus_multi_avg(self, table, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus_multi_avg"):
            legacy = run_ifocus_multi_avg(table, "g", "y", "z", delta=0.05, seed=3)
        res = session.table("t").group_by("g").agg(avg("y"), avg("z")).run(seed=3)
        assert_same_ordering_result(legacy.y, res["AVG(y)"].raw)
        assert_same_ordering_result(legacy.z, res["AVG(z)"].raw)

    def test_run_multi_groupby(self, table, session):
        with pytest.warns(DeprecationWarning, match="run_multi_groupby"):
            legacy, _ = run_multi_groupby(table, ["g", "h"], "y", seed=3)
        res = session.table("t").group_by("g", "h").agg(avg("y")).run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_ifocus_topt(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus_topt"):
            legacy = run_ifocus_topt(engine, 2, delta=0.05, seed=3)
        res = session_avg(session).top(2).run(seed=3)
        assert_same_ordering_result(legacy.result, res.first.raw)
        assert legacy.top_names == res.first.meta["top_labels"]

    def test_run_ifocus_trends(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus_trends"):
            legacy = run_ifocus_trends(engine, delta=0.05, seed=3)
        res = session_avg(session).trends().run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_ifocus_values(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus_values"):
            legacy = run_ifocus_values(engine, d=4.0, delta=0.05, seed=3)
        res = session_avg(session).values(within=4.0).run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_ifocus_mistakes(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_ifocus_mistakes"):
            legacy = run_ifocus_mistakes(engine, min_correct_fraction=0.9, delta=0.05, seed=3)
        res = session_avg(session).mistakes(0.9).run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_noindex(self, engine, session):
        with pytest.warns(DeprecationWarning, match="run_noindex"):
            legacy = run_noindex(engine, delta=0.05, seed=3)
        res = session_avg(session).on_engine("noindex").run(seed=3)
        assert_same_ordering_result(legacy, res.first.raw)

    def test_run_ifocus_partial(self, engine, session):
        emitted = []
        with pytest.warns(DeprecationWarning, match="run_ifocus_partial"):
            legacy = run_ifocus_partial(
                engine, lambda o: emitted.append(o), delta=0.05, seed=3
            )
        stream = session_avg(session).stream(seed=3)
        updates = list(stream)
        assert [o.name for o in emitted] == [u.group.label for u in updates]
        assert_same_ordering_result(legacy, stream.result.first.raw)

    def test_stream_partial_results(self, engine, session):
        with pytest.warns(DeprecationWarning, match="stream_partial_results"):
            legacy_updates = list(stream_partial_results(engine, delta=0.05, seed=3))
        session_updates = list(session_avg(session).stream(seed=3))
        assert len(legacy_updates) == len(session_updates)
        for lu, su in zip(legacy_updates, session_updates):
            assert lu.outcome.name == su.group.label
            assert lu.outcome.estimate == su.group.estimate
            assert lu.outcome.samples == su.group.samples
            assert lu.emitted_so_far == su.emitted_so_far

    def test_execute_query_two_avgs_keeps_legacy_behaviour(self, table):
        # Legacy compat: two-AVG queries always populated .engine and
        # silently ignored resolution; the shim must preserve both.
        with pytest.warns(DeprecationWarning, match="execute_query"):
            out = execute_query(
                "SELECT g, AVG(y), AVG(z) FROM t GROUP BY g",
                {"t": table},
                resolution=0.5,
                seed=3,
            )
        assert out.engine is not None
        assert out.engine.population.group_names == out.labels

    def test_execute_query(self, table, session):
        sql = "SELECT g, AVG(y) FROM t GROUP BY g HAVING AVG(y) > 20"
        with pytest.warns(DeprecationWarning, match="execute_query"):
            legacy = execute_query(sql, {"t": table}, delta=0.05, seed=3)
        res = session.sql(sql).run(seed=3)
        assert legacy.labels == res.labels
        assert legacy.dropped_by_having == res.dropped_by_having
        assert legacy.caveats == res.caveats  # caveats surfaced on both types
        for key, raw in legacy.results.items():
            assert_same_ordering_result(raw, res[key].raw)


class TestShimMetadata:
    def test_wrapped_implementation_exposed(self):
        assert run_ifocus.__wrapped__.__name__ == "_run_ifocus"
        assert run_ifocus.__deprecated__

    def test_every_legacy_entrypoint_is_shimmed(self):
        for fn in (
            run_ifocus,
            run_ifocus_sum,
            run_count_known,
            run_ifocus_multi_avg,
            run_multi_groupby,
            run_ifocus_topt,
            run_ifocus_trends,
            run_ifocus_values,
            run_ifocus_mistakes,
            run_noindex,
            run_ifocus_partial,
            stream_partial_results,
            execute_query,
        ):
            assert hasattr(fn, "__deprecated__"), fn
            assert hasattr(fn, "__wrapped__"), fn
