"""Session facade: catalog, CSV loading, engines, guarantee modes, caveats."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.needletail.table import Table
from repro.session import (
    Session,
    avg,
    connect,
    count,
    load_csv_table,
    register_engine,
    total,
)
from repro.session.planner import engine_names
from repro.session.spec import GuaranteeSpec, QuerySpec


@pytest.fixture()
def columns() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(3)
    n = 12_000
    names = rng.choice(["a", "b", "c", "d"], size=n)
    base = {"a": 10.0, "b": 35.0, "c": 60.0, "d": 90.0}
    value = np.clip(np.array([base[x] for x in names]) + rng.normal(0, 6, n), 0, 100)
    return {"g": names, "y": value, "year": rng.integers(2000, 2010, n)}


@pytest.fixture()
def session(columns) -> Session:
    return connect().register("t", columns)


class TestCatalog:
    def test_register_dict_and_table(self, columns):
        sess = connect()
        sess.register("d", columns)
        sess.register("t", Table.from_dict("t", columns))
        assert sess.tables == ["d", "t"]

    def test_unknown_table_raises_early(self, session):
        with pytest.raises(KeyError):
            session.table("nope")

    def test_register_flights(self):
        sess = connect().register_flights("flights", rows=5_000, seed=0)
        res = sess.sql(
            "SELECT carrier, COUNT(*) FROM flights GROUP BY carrier"
        ).run()
        assert sum(res.estimates().values()) == 5_000

    def test_chaining(self, columns):
        sess = connect().register("a", columns).register("b", columns)
        assert sess.tables == ["a", "b"]


class TestCsv:
    def _write(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return path

    def test_auto_typing(self, tmp_path):
        path = self._write(
            tmp_path, "city,delay\nNYC,10.5\nNYC,12.0\nLA,30.0\nLA,28.0\n"
        )
        table = load_csv_table(path)
        assert table.name == "data"
        assert np.issubdtype(table.column("delay").dtype, np.floating)
        assert table.column("city").dtype.kind in ("U", "S")

    def test_numeric_looking_group_column_stays_string(self, tmp_path):
        path = self._write(tmp_path, "zip,delay\n10001,1.0\n10002,2.0\n")
        table = load_csv_table(path, group_columns=["zip"])
        assert table.column("zip").dtype.kind in ("U", "S")

    def test_value_column_must_be_numeric(self, tmp_path):
        path = self._write(tmp_path, "city,delay\nNYC,fast\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_csv_table(path, value_columns=["delay"])

    def test_unknown_column_flag(self, tmp_path):
        path = self._write(tmp_path, "city,delay\nNYC,1.0\n")
        with pytest.raises(KeyError):
            load_csv_table(path, group_columns=["bogus"])

    def test_empty_csv(self, tmp_path):
        path = self._write(tmp_path, "")
        with pytest.raises(ValueError):
            load_csv_table(path)

    def test_query_over_registered_csv(self, tmp_path):
        path = self._write(
            tmp_path,
            "city,delay\nNYC,10\nNYC,12\nLA,30\nLA,28\nSF,55\nSF,54\n",
        )
        sess = connect().register_csv("trips", path, group_columns=["city"])
        res = sess.sql("SELECT city, AVG(delay) FROM trips GROUP BY city").run(seed=1)
        est = res.estimates()
        assert est["NYC"] < est["LA"] < est["SF"]


class TestEngines:
    def test_memory_matches_needletail_labels(self, session):
        ntl = session.table("t").group_by("g").agg(avg("y")).run(seed=2)
        mem = (
            session.table("t").group_by("g").agg(avg("y")).on_engine("memory").run(seed=2)
        )
        assert ntl.labels == mem.labels
        # same data, same ordering conclusion (estimates differ: different draws)
        assert ntl.first.order() == mem.first.order()

    def test_memory_supports_where(self, session, columns):
        res = (
            session.table("t")
            .where("year >= 2005")
            .group_by("g")
            .agg(avg("y"))
            .on_engine("memory")
            .run(seed=2)
        )
        mask = columns["year"] >= 2005
        for label, est in res.estimates().items():
            true = columns["y"][mask & (columns["g"] == label)].mean()
            assert est == pytest.approx(true, abs=4.0)

    def test_noindex_runs_and_caveats(self, session):
        res = (
            session.table("t").group_by("g").agg(avg("y")).on_engine("noindex").run(seed=2)
        )
        assert res.first.algorithm == "noindex"
        assert any("no-index" in c for c in res.caveats)

    def test_noindex_rejects_sum(self, session):
        with pytest.raises(ValueError, match="metadata"):
            session.table("t").group_by("g").agg(total("y")).on_engine("noindex").run()

    def test_unknown_engine(self, session):
        with pytest.raises(KeyError, match="unknown engine"):
            session.table("t").group_by("g").agg(avg("y")).on_engine("duckdb").run()

    def test_register_custom_engine(self, session):
        from repro.session.planner import _memory_factory

        if "memory2" not in engine_names():
            register_engine("memory2", _memory_factory)
        with pytest.raises(ValueError):
            register_engine("memory2", _memory_factory)  # no silent overwrite
        res = (
            session.table("t").group_by("g").agg(avg("y")).on_engine("memory2").run(seed=4)
        )
        ref = (
            session.table("t").group_by("g").agg(avg("y")).on_engine("memory").run(seed=4)
        )
        np.testing.assert_array_equal(res.first.raw.estimates, ref.first.raw.estimates)


class TestGuaranteeModes:
    def test_top(self, session):
        res = session.table("t").group_by("g").agg(avg("y")).top(2).run(seed=5)
        assert res.first.meta["top_labels"] == ["d", "c"]

    def test_values_bound_half_widths(self, session):
        res = session.table("t").group_by("g").agg(avg("y")).values(within=4.0).run(seed=5)
        for g in res.first:
            assert g.exhausted or g.half_width < 2.0  # d/2

    def test_trends_neighbor_graph_validated(self, session):
        with pytest.raises(ValueError, match="symmetric"):
            session.table("t").group_by("g").agg(avg("y")).trends(
                neighbors=[[1], [2], [3], [0]]
            ).run(seed=5)

    def test_mistakes_caveat(self, session):
        res = session.table("t").group_by("g").agg(avg("y")).mistakes(0.9).run(seed=5)
        assert any("mistake" in c for c in res.caveats)

    def test_mode_requires_single_avg(self, session):
        with pytest.raises(ValueError):
            session.table("t").group_by("g").agg(total("y")).top(2).spec()

    def test_invalid_guarantees(self):
        with pytest.raises(ValueError):
            GuaranteeSpec(mode="top")  # missing t
        with pytest.raises(ValueError):
            GuaranteeSpec(mode="values")  # missing tolerance
        with pytest.raises(ValueError):
            GuaranteeSpec(mode="bogus")

    def test_resolution_variant_algorithms(self, session):
        res = (
            session.table("t")
            .group_by("g")
            .agg(avg("y"))
            .using("ifocusr")
            .guarantee(resolution=8.0)
            .run(seed=5)
        )
        assert res.first.algorithm.startswith("ifocusr")
        with pytest.raises(ValueError):
            session.table("t").group_by("g").agg(avg("y")).using("ifocusr").run(seed=5)


class TestResultShape:
    def test_group_estimate_fields(self, session):
        res = session.table("t").group_by("g").agg(avg("y")).run(seed=6)
        g = res.first["a"]
        lo, hi = g.interval
        assert lo <= g.estimate <= hi
        assert g.samples > 0
        assert res.first.order() == ["a", "b", "c", "d"]

    def test_spec_round_trip_on_result(self, session):
        builder = session.table("t").group_by("g").agg(avg("y"))
        res = builder.run(seed=6)
        assert res.spec == builder.spec()
        assert isinstance(res.spec, QuerySpec)

    def test_accounting(self, session):
        res = session.table("t").group_by("g").agg(avg("y")).run(seed=6)
        assert res.total_samples > 0
        assert res.total_seconds == res.io_seconds + res.cpu_seconds
        assert res.io_seconds > 0  # needletail cost model is calibrated, not null

    def test_explain_mentions_dispatch(self, session):
        text = session.table("t").group_by("g").agg(avg("y"), count("*")).explain()
        assert "ifocus" in text and "exact from engine metadata" in text

    def test_session_api_never_warns_deprecation(self, session):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.table("t").group_by("g").agg(avg("y"), total("y")).run(seed=6)
            session.sql("SELECT g, AVG(y) FROM t GROUP BY g").run(seed=6)
            list(session.table("t").group_by("g").agg(avg("y")).stream(seed=6))


class TestStreaming:
    def test_live_stream_modes(self, session):
        for builder in (
            session.table("t").group_by("g").agg(avg("y")),
            session.table("t").group_by("g").agg(avg("y")).top(2),
            session.table("t").group_by("g").agg(avg("y")).values(within=5.0),
            session.table("t").group_by("g").agg(avg("y")).mistakes(0.9),
        ):
            stream = builder.stream(seed=8)
            updates = list(stream)
            assert updates and all(u.live for u in updates)
            assert updates[-1].done
            assert stream.result is not None

    def test_posthoc_stream_for_other_algorithms(self, session):
        stream = (
            session.table("t").group_by("g").agg(avg("y")).using("roundrobin").stream(seed=8)
        )
        updates = list(stream)
        assert len(updates) == 4 and not any(u.live for u in updates)

    def test_count_streams(self, session):
        stream = session.table("t").group_by("g").agg(count("*")).stream()
        updates = list(stream)
        assert len(updates) == 4
        assert all(u.group.exact for u in updates)

    def test_result_available_after_break_at_done(self, session):
        stream = session.table("t").group_by("g").agg(avg("y")).stream(seed=8)
        for update in stream:
            if update.done:
                break
        # live streams: .result drains the worker's final item on access
        assert stream.result.first.algorithm == "ifocus-partial"


class TestPlannerValidation:
    def test_mode_rejects_non_ifocus_algorithm(self, session):
        with pytest.raises(ValueError, match="reference loop"):
            session.table("t").group_by("g").agg(avg("y")).using("roundrobin").top(
                2
            ).run(seed=1)

    def test_multi_avg_rejects_other_engines(self, session, columns):
        sess = session.register("u", columns)
        builder = (
            sess.table("t").group_by("g").agg(avg("y"), avg("year")).on_engine("memory")
        )
        with pytest.raises(ValueError, match="bitmap-index"):
            builder.run(seed=1)

    def test_multi_avg_rejects_resolution(self, session):
        with pytest.raises(ValueError, match="resolution"):
            session.table("t").group_by("g").agg(avg("y"), avg("year")).guarantee(
                resolution=1.0
            ).run(seed=1)

    def test_duplicate_aggregates_rejected(self, session):
        with pytest.raises(ValueError, match="duplicate aggregate"):
            session.table("t").group_by("g").agg(avg("y"), avg("y")).spec()

    def test_multi_aggregate_stream_done_only_at_true_end(self, session):
        stream = session.table("t").group_by("g").agg(avg("y"), total("y")).stream(seed=1)
        updates = list(stream)
        assert len(updates) == 8  # 4 groups x 2 aggregates
        assert [u.done for u in updates] == [False] * 7 + [True]
        # the stop-at-done pattern sees every aggregate's groups
        assert {u.aggregate for u in updates} == {"AVG(y)", "SUM(y)"}

    def test_stream_worker_error_surfaces(self, session):
        stream = session.table("t").group_by("g").agg(avg("y")).stream(
            seed=1, bogus_kwarg=True
        )
        with pytest.raises(TypeError):
            list(stream)
        with pytest.raises(RuntimeError, match="without producing a result"):
            stream.result

    def test_mixed_aggregates_sum_total_samples(self, session):
        res = session.table("t").group_by("g").agg(avg("y"), total("y")).run(seed=1)
        parts = sum(a.total_samples for a in res.aggregates.values())
        assert res.total_samples == parts  # independent runs: costs add up

    def test_multi_avg_counts_shared_run_once(self, session):
        res = session.table("t").group_by("g").agg(avg("y"), avg("year")).run(seed=1)
        # both aggregates ride the same two-phase run; no double counting
        per_agg = [a.total_samples for a in res.aggregates.values()]
        assert res.total_samples == max(per_agg)
        assert res.engine is None  # the schedule drives its own index
