"""SQL-text vs fluent-builder parity.

The acceptance contract of the Session API: the same logical query expressed
through either front door lowers to the *identical* ``QuerySpec`` and - given
the same seed - produces bit-identical results, for every workload shape
(AVG, SUM, COUNT, multi-AVG, WHERE, HAVING, multi-GROUP-BY, top-t, trends,
and partial streaming).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.session import Session, avg, connect, count, total
from repro.session.spec import GuaranteeSpec, QuerySpec


@pytest.fixture()
def session() -> Session:
    rng = np.random.default_rng(1)
    n = 20_000
    names = rng.choice(["AA", "JB", "UA"], size=n, p=[0.5, 0.3, 0.2])
    base = {"AA": 30.0, "JB": 15.0, "UA": 85.0}
    delay = np.clip(np.array([base[x] for x in names]) + rng.normal(0, 8, n), 0, 100)
    dist = rng.uniform(100, 2000, n)
    year = rng.integers(1990, 2000, n)
    return connect().register(
        "flights", {"name": names, "delay": delay, "dist": dist, "year": year}
    )


def assert_bit_identical(r1, r2) -> None:
    """Two unified Results are exactly equal, group by group."""
    assert r1.labels == r2.labels
    assert list(r1.aggregates) == list(r2.aggregates)
    assert r1.dropped_by_having == r2.dropped_by_having
    assert r1.caveats == r2.caveats
    for key in r1.aggregates:
        a, b = r1[key], r2[key]
        assert a.algorithm == b.algorithm
        np.testing.assert_array_equal(a.raw.estimates, b.raw.estimates)
        np.testing.assert_array_equal(
            a.raw.samples_per_group, b.raw.samples_per_group
        )
        assert a.raw.inactive_order == b.raw.inactive_order


class TestSpecEquality:
    def test_simple_avg(self, session):
        sql = session.sql("SELECT name, AVG(delay) FROM flights GROUP BY name")
        built = session.table("flights").group_by("name").agg(avg("delay"))
        assert sql.spec() == built.spec()
        assert isinstance(sql.spec(), QuerySpec)

    def test_where_and_between(self, session):
        sql = session.sql(
            "SELECT name, AVG(delay) FROM flights "
            "WHERE year >= 1995 AND dist BETWEEN 300 AND 1500 GROUP BY name"
        )
        built = (
            session.table("flights")
            .where("year >= 1995")
            .where("dist BETWEEN 300 AND 1500")
            .group_by("name")
            .agg(avg("delay"))
        )
        assert sql.spec() == built.spec()

    def test_where_single_string_matches_two_calls(self, session):
        one = session.table("flights").where("year >= 1995 AND dist > 500")
        two = session.table("flights").where("year >= 1995").where("dist > 500")
        b1 = one.group_by("name").agg(avg("delay"))
        b2 = two.group_by("name").agg(avg("delay"))
        assert b1.spec() == b2.spec()

    def test_having(self, session):
        sql = session.sql(
            "SELECT name, AVG(delay) FROM flights GROUP BY name "
            "HAVING AVG(delay) > 20"
        )
        built = (
            session.table("flights")
            .group_by("name")
            .agg(avg("delay"))
            .having("AVG(delay) > 20")
        )
        assert sql.spec() == built.spec()

    def test_multi_group_by(self, session):
        sql = session.sql(
            "SELECT name, year, AVG(delay) FROM flights "
            "WHERE year IN (1995, 1996) GROUP BY name, year"
        )
        built = (
            session.table("flights")
            .where("year IN (1995, 1996)")
            .group_by("name", "year")
            .agg(avg("delay"))
        )
        assert sql.spec() == built.spec()

    def test_sum_count_dispatch(self, session):
        sql = session.sql(
            "SELECT name, SUM(delay), COUNT(*) FROM flights GROUP BY name"
        )
        built = (
            session.table("flights")
            .group_by("name")
            .agg(total("delay"), count("*"))
        )
        assert sql.spec() == built.spec()

    def test_aggregate_strings_match_constructors(self, session):
        by_str = session.table("flights").group_by("name").agg("AVG(delay)")
        by_ctor = session.table("flights").group_by("name").agg(avg("delay"))
        assert by_str.spec() == by_ctor.spec()

    def test_chained_guarantee_applies_to_both_doors(self, session):
        sql = (
            session.sql("SELECT name, AVG(delay) FROM flights GROUP BY name")
            .top(2)
            .guarantee(delta=0.1)
        )
        built = (
            session.table("flights")
            .group_by("name")
            .agg(avg("delay"))
            .top(2)
            .guarantee(delta=0.1)
        )
        assert sql.spec() == built.spec()
        assert sql.spec().guarantee == GuaranteeSpec(delta=0.1, mode="top", top_t=2)

    def test_builder_is_immutable(self, session):
        base = session.table("flights").group_by("name")
        with_agg = base.agg(avg("delay"))
        with_other = base.agg(total("delay"))
        assert with_agg.spec().aggregates != with_other.spec().aggregates
        with pytest.raises(ValueError):
            base.spec()  # still has no aggregate: base was not mutated


class TestResultParity:
    def _pair(self, session, sql_text, builder):
        r_sql = session.sql(sql_text).run(seed=7)
        r_built = builder.run(seed=7)
        assert_bit_identical(r_sql, r_built)
        return r_sql

    def test_avg(self, session):
        res = self._pair(
            session,
            "SELECT name, AVG(delay) FROM flights GROUP BY name",
            session.table("flights").group_by("name").agg(avg("delay")),
        )
        est = res.estimates()
        assert est["JB"] < est["AA"] < est["UA"]

    def test_avg_with_where(self, session):
        self._pair(
            session,
            "SELECT name, AVG(delay) FROM flights WHERE year >= 1995 GROUP BY name",
            session.table("flights")
            .where("year >= 1995")
            .group_by("name")
            .agg(avg("delay")),
        )

    def test_having_drops_and_caveat(self, session):
        res = self._pair(
            session,
            "SELECT name, AVG(delay) FROM flights GROUP BY name "
            "HAVING AVG(delay) > 20",
            session.table("flights")
            .group_by("name")
            .agg(avg("delay"))
            .having("AVG(delay) > 20"),
        )
        assert "JB" in res.dropped_by_having
        assert any("HAVING" in c for c in res.caveats)
        assert "JB" not in res.kept_labels

    def test_multi_group_by(self, session):
        res = self._pair(
            session,
            "SELECT name, year, AVG(delay) FROM flights "
            "WHERE year IN (1995, 1996) GROUP BY name, year",
            session.table("flights")
            .where("year IN (1995, 1996)")
            .group_by("name", "year")
            .agg(avg("delay")),
        )
        assert len(res.labels) == 6  # 3 carriers x 2 years
        assert all("|" in label for label in res.labels)

    def test_sum_and_count(self, session):
        res = self._pair(
            session,
            "SELECT name, SUM(delay), COUNT(*) FROM flights GROUP BY name",
            session.table("flights").group_by("name").agg(total("delay"), count()),
        )
        assert res["SUM(delay)"].algorithm == "ifocus-sum"
        assert res["COUNT(*)"].algorithm == "count-known"
        assert res["COUNT(*)"].total_samples == 0

    def test_multi_avg(self, session):
        res = self._pair(
            session,
            "SELECT name, AVG(delay), AVG(dist) FROM flights GROUP BY name",
            session.table("flights")
            .group_by("name")
            .agg(avg("delay"), avg("dist")),
        )
        assert set(res.aggregates) == {"AVG(delay)", "AVG(dist)"}

    def test_top_t(self, session):
        # top-t is not SQL-expressible, but it chains onto the SQL door too.
        r_sql = (
            session.sql("SELECT name, AVG(delay) FROM flights GROUP BY name")
            .top(1)
            .run(seed=7)
        )
        r_built = (
            session.table("flights").group_by("name").agg(avg("delay")).top(1).run(seed=7)
        )
        assert_bit_identical(r_sql, r_built)
        assert r_sql.first.meta["top_labels"] == ["UA"]

    def test_trends(self, session):
        r_sql = (
            session.sql("SELECT name, AVG(delay) FROM flights GROUP BY name")
            .trends()
            .run(seed=7)
        )
        r_built = (
            session.table("flights")
            .group_by("name")
            .agg(avg("delay"))
            .trends()
            .run(seed=7)
        )
        assert_bit_identical(r_sql, r_built)
        assert r_sql.first.algorithm == "ifocus-trends"


class TestStreamingParity:
    def test_stream_both_doors_identical(self, session):
        sql_stream = session.sql(
            "SELECT name, AVG(delay) FROM flights GROUP BY name"
        ).stream(seed=11)
        built_stream = (
            session.table("flights").group_by("name").agg(avg("delay")).stream(seed=11)
        )
        sql_updates = list(sql_stream)
        built_updates = list(built_stream)
        assert len(sql_updates) == len(built_updates) == 3
        for a, b in zip(sql_updates, built_updates):
            assert a.group == b.group
            assert a.live and b.live
            assert a.aggregate == b.aggregate == "AVG(delay)"
        assert sql_updates[-1].done
        assert_bit_identical(sql_stream.result, built_stream.result)

    def test_stream_final_result_matches_run(self, session):
        builder = session.table("flights").group_by("name").agg(avg("delay"))
        run_res = builder.run(seed=11)
        stream = builder.stream(seed=11)
        stream_res = stream.drain()
        # run() uses the batched executor, stream() the reference loop; the
        # repo asserts their equivalence, so estimates agree to fp tolerance.
        np.testing.assert_allclose(
            run_res.first.raw.estimates,
            stream_res.first.raw.estimates,
            rtol=1e-12,
            atol=1e-9,
        )
        np.testing.assert_array_equal(
            run_res.first.raw.samples_per_group,
            stream_res.first.raw.samples_per_group,
        )

    def test_sum_streams_posthoc(self, session):
        stream = (
            session.table("flights").group_by("name").agg(total("delay")).stream(seed=5)
        )
        updates = list(stream)
        assert len(updates) == 3
        assert all(not u.live for u in updates)
        # post-hoc replay follows the true finalization order
        assert [u.group.label for u in updates] == stream.result.finalization_order()

    def test_multi_avg_streams_posthoc_per_aggregate(self, session):
        stream = (
            session.table("flights")
            .group_by("name")
            .agg(avg("delay"), avg("dist"))
            .stream(seed=5)
        )
        updates = list(stream)
        assert len(updates) == 6  # 3 groups x 2 aggregates
        assert {u.aggregate for u in updates} == {"AVG(delay)", "AVG(dist)"}
