"""The attach() front door and the five deprecated register_* shims.

Each legacy door must (a) emit a DeprecationWarning naming its attach()
replacement and (b) leave the session in a state identical to the attach()
equivalent - same source kind, same schema, same query results.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.catalog.csv import CSVSource
from repro.catalog.source import TableSource
from repro.catalog.synthetic import SyntheticSource
from repro.catalog import SourceSpec
from repro.session import connect


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "t.csv"
    rng = np.random.default_rng(2)
    with open(path, "w") as fh:
        fh.write("g,v\n")
        for g, loc in (("a", 20.0), ("b", 60.0)):
            for v in rng.normal(loc, 5.0, 300).clip(0, 100):
                fh.write(f"{g},{v}\n")
    return path


def _result_sig(session, table="t", group="g", value="v"):
    result = (
        session.table(table).group_by(group).agg(repro.avg(value)).run(seed=5)
    )
    return (
        result.first.order(),
        result.total_samples,
        sorted((g.label, g.estimate, g.samples) for g in result.first),
    )


def _source(session, name):
    return session.catalog.source(name)


class TestShimsWarnAndMatchAttach:
    def test_register_source(self, csv_path):
        source = CSVSource(csv_path, group_columns=("g",), value_columns=("v",))
        via_attach = connect(seed=1).attach("t", source)
        legacy = connect(seed=1)
        with pytest.warns(DeprecationWarning, match="session.attach"):
            legacy.register_source("t", source)
        assert _source(legacy, "t") is source is _source(via_attach, "t")
        assert _result_sig(legacy) == _result_sig(via_attach)

    def test_register_source_rejects_non_sources(self):
        session = connect()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="needs a DataSource"):
                session.register_source("t", {"g": np.array(["a"])})

    def test_register_csv(self, csv_path):
        via_attach = connect(seed=1).attach(
            "t", csv_path, group_columns=("g",), value_columns=("v",)
        )
        legacy = connect(seed=1)
        with pytest.warns(DeprecationWarning, match="register_csv"):
            legacy.register_csv(
                "t", csv_path, group_columns=("g",), value_columns=("v",)
            )
        for session in (legacy, via_attach):
            assert isinstance(_source(session, "t"), CSVSource)
        assert _result_sig(legacy) == _result_sig(via_attach)

    def test_register_parquet(self, tmp_path):
        pytest.importorskip("pyarrow")
        from repro.catalog.parquet import ParquetSource

        path = tmp_path / "t.parquet"
        legacy = connect()
        with pytest.warns(DeprecationWarning, match="register_parquet"):
            legacy.register_parquet("t", path, batch_rows=64)
        source = _source(legacy, "t")
        assert isinstance(source, ParquetSource)
        assert source._batch_rows == 64

    def test_register_flights(self):
        via_attach = connect(seed=1).attach(
            "flights", SourceSpec("flights", rows=2_000, seed=3)
        )
        legacy = connect(seed=1)
        with pytest.warns(DeprecationWarning, match="register_flights"):
            legacy.register_flights(rows=2_000, seed=3)
        sig = lambda s: _result_sig(
            s, table="flights", group="carrier", value="arrival_delay"
        )
        assert sig(legacy) == sig(via_attach)

    def test_register_synthetic(self):
        spec = dict(family="mixture", k=3, total_size=2_000, seed=4,
                    materialize=True)
        via_attach = connect(seed=1).attach("bench", SourceSpec("synthetic", **spec))
        legacy = connect(seed=1)
        with pytest.warns(DeprecationWarning, match="register_synthetic"):
            legacy.register_synthetic("bench", **spec)
        for session in (legacy, via_attach):
            assert isinstance(_source(session, "bench"), SyntheticSource)
        sig = lambda s: _result_sig(s, table="bench", group="g", value="value")
        assert sig(legacy) == sig(via_attach)

    def test_every_shim_names_its_replacement(self):
        from repro.session.session import Session

        for name in ("register_source", "register_csv", "register_parquet",
                     "register_flights", "register_synthetic"):
            shim = getattr(Session, name)
            assert "attach" in shim.__deprecated__
            assert shim.__name__ == f"Session.{name}"


class TestAttachFrontDoor:
    def test_attach_chains_and_lists(self, csv_path):
        session = connect().attach("t", csv_path).attach(
            "mem", {"g": np.array(["a", "b"]), "v": np.arange(2.0)}
        )
        assert set(session.tables) == {"t", "mem"}
        assert isinstance(_source(session, "mem"), TableSource)

    def test_register_still_takes_tables_not_paths(self, csv_path):
        with pytest.raises(TypeError, match="use attach"):
            connect().register("t", str(csv_path))

    def test_connect_rejects_store_plus_catalog(self, tmp_path):
        from repro.catalog import Catalog

        with pytest.raises(ValueError, match="not both"):
            connect(store=tmp_path / "s", catalog=Catalog())
