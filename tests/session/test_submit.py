"""Concurrent-session and sharded-query tests for the Session API.

``Session.submit()`` must let one session serve many queries at once with
fully isolated run state: every worker plans against a catalog snapshot and
builds its own engine and :class:`EngineRun`, so concurrent results are
bit-identical to serial ones.  ``.sharded(n)`` must thread through the spec,
the planner, and the engine wrap without changing any answer for
materialized tables.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import avg, connect
from repro.engines.shm import REGISTRY
from repro.engines.sharded import ShardedEngine
from repro.session.spec import Aggregate, QuerySpec


def _flights_session(**kwargs):
    session = connect(delta=0.1, seed=0, **kwargs)
    session.register_flights("flights", rows=30_000, seed=0)
    return session


def _result_fingerprint(result):
    agg = result.first
    return (
        tuple(result.labels),
        tuple(float(v) for v in agg.raw.estimates),
        tuple(int(s) for s in agg.raw.samples_per_group),
        result.total_samples,
    )


class TestSubmit:
    def test_submit_returns_future_matching_execute(self):
        with _flights_session(engine="memory") as session:
            builder = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
            future = session.submit(builder, seed=42)
            assert _result_fingerprint(future.result(timeout=60)) == _result_fingerprint(
                builder.run(seed=42)
            )

    def test_eight_concurrent_queries_have_isolated_accounting(self):
        """The ISSUE's thread-stress bar: 8 in-flight queries, one session.

        Accounting isolation means every concurrent result carries exactly
        the samples *its own* run charged - bit-identical to the same query
        run serially - with no cross-talk between the 8 runs' stats.
        """
        with _flights_session(engine="memory", submit_workers=8) as session:
            base = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
            jobs = [(base, seed) for seed in range(4)]
            jobs += [(base.sharded(3), 100), (base.sharded(3, max_workers=2), 100)]
            jobs += [(base.guarantee(delta=0.2), 7), (base.top(3), 7)]
            assert len(jobs) == 8
            futures = [session.submit(b, seed=s) for b, s in jobs]
            concurrent = [f.result(timeout=120) for f in futures]
            serial = [b.run(seed=s) for b, s in jobs]
            for got, want in zip(concurrent, serial):
                assert _result_fingerprint(got) == _result_fingerprint(want)

    def test_eight_concurrent_process_queries_leak_nothing(self):
        """The ISSUE-5 stress bar: 8 in-flight ``executor="process"`` queries
        on one session.

        Every worker builds an isolated process engine (own spawn workers,
        own shared-memory segments, own run state), results are bit-identical
        to the same queries run serially through the *unsharded* engine
        (materialized tables: any shard count and executor matches), and the
        shm registry is empty once the queries and the session are done -
        no segment outlives its query.
        """
        baseline = REGISTRY.active_count()
        with _flights_session(engine="memory", submit_workers=8) as session:
            base = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
            jobs = [(base.sharded(2, executor="process"), seed) for seed in range(4)]
            # All jobs stay on the batched executor: the reference-loop modes
            # (top/trends/...) draw one sample per IPC round trip, which is
            # exactly the pattern the process executor is not built for.
            jobs += [
                (base.sharded(3, executor="process"), 100),
                (base.sharded(2, max_workers=1, executor="process"), 100),
                (base.sharded(2, executor="process").guarantee(delta=0.2), 7),
                (base.sharded(2, executor="process").guarantee(delta=0.15), 9),
            ]
            assert len(jobs) == 8
            futures = [session.submit(b, seed=s) for b, s in jobs]
            concurrent = [f.result(timeout=300) for f in futures]
            serial = [b.sharded(1).run(seed=s) for b, s in jobs]
            for got, want in zip(concurrent, serial):
                assert _result_fingerprint(got) == _result_fingerprint(want)
            for got in concurrent:
                assert isinstance(got.engine, ShardedEngine)
                assert got.engine.executor == "process"
        assert REGISTRY.active_count() == baseline, (
            f"process queries leaked segments: {REGISTRY.active_names()}"
        )

    def test_submit_sql_text(self):
        with _flights_session() as session:
            future = session.submit(
                "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
                seed=3,
            )
            result = future.result(timeout=60)
            assert result.labels  # a real Result came back

    def test_submit_snapshots_catalog(self):
        """register() after submit never affects a query already in flight."""
        session = _flights_session(engine="memory")
        builder = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
        expected = _result_fingerprint(builder.run(seed=1))
        future = session.submit(builder, seed=1)
        session.register_flights("flights", rows=1_000, seed=99)  # rebind the name
        assert _result_fingerprint(future.result(timeout=60)) == expected
        session.close()

    def test_submit_validates_on_calling_thread(self):
        with _flights_session() as session:
            with pytest.raises(KeyError, match="unknown table"):
                session.submit("SELECT x, AVG(y) FROM nope GROUP BY x")

    def test_sequential_shard_fanout_does_not_serialize_submit(self):
        """max_workers=1 tunes the shard fan-out, not submit concurrency."""
        with _flights_session(engine="memory", shards=2, max_workers=1) as session:
            assert session._submit_pool()._max_workers == session.DEFAULT_SUBMIT_WORKERS

    def test_invalid_submit_workers_rejected(self):
        with pytest.raises(ValueError, match="submit_workers"):
            connect(submit_workers=0)

    def test_submit_after_close_raises(self):
        session = _flights_session()
        builder = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(builder)


class TestShardedQueries:
    @pytest.mark.parametrize("engine", ["memory", "needletail"])
    def test_sharded_run_bit_identical_to_unsharded(self, engine):
        """Materialized tables: shards=4 answers are bit-identical."""
        with _flights_session(engine=engine) as session:
            base = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
            plain = base.run(seed=42)
            sharded = base.sharded(4).run(seed=42)
            assert _result_fingerprint(plain) == _result_fingerprint(sharded)
            assert isinstance(sharded.engine, ShardedEngine)
            assert not isinstance(plain.engine, ShardedEngine)

    def test_session_level_shards_default_applies(self):
        with _flights_session(engine="memory", shards=4) as session:
            result = (
                session.table("flights").group_by("carrier").agg(avg("arrival_delay")).run(seed=1)
            )
            assert isinstance(result.engine, ShardedEngine)
            assert result.engine.shards == 4

    def test_sharded_stream_bit_identical_to_unsharded_stream(self):
        with _flights_session(engine="memory") as session:
            builder = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
            sharded = builder.sharded(4).stream(seed=5)
            updates = list(sharded)
            assert updates and updates[-1].done
            plain = builder.stream(seed=5)
            list(plain)
            assert _result_fingerprint(sharded.result) == _result_fingerprint(plain.result)

    def test_explain_mentions_sharding(self):
        with _flights_session() as session:
            text = (
                session.table("flights")
                .group_by("carrier")
                .agg(avg("arrival_delay"))
                .sharded(4, max_workers=2)
                .explain()
            )
            assert "sharded x4" in text and "2 workers" in text

    def test_sharded_queries_release_their_pool_threads(self):
        """Retained Results must not pin idle fan-out threads (leak guard)."""
        import threading

        with _flights_session(engine="memory") as session:
            builder = (
                session.table("flights").group_by("carrier").agg(avg("arrival_delay")).sharded(4)
            )
            before = threading.active_count()
            results = [builder.run(seed=s) for s in range(3)]
            assert len(results) == 3  # Results (and their engines) stay alive
            assert threading.active_count() == before

    def test_multi_avg_rejects_sharding_loudly(self):
        with _flights_session() as session:
            builder = (
                session.table("flights")
                .group_by("carrier")
                .agg(avg("arrival_delay"), avg("departure_delay"))
                .sharded(2)
            )
            with pytest.raises(ValueError, match="do not support sharding"):
                builder.run(seed=0)

    def test_sql_door_carries_session_shards(self):
        with _flights_session(shards=3) as session:
            spec = session.sql(
                "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
            ).spec()
            assert spec.shards == 3

    def test_sql_door_carries_session_executor(self):
        with _flights_session(shards=2, executor="process") as session:
            spec = session.sql(
                "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
            ).spec()
            assert spec.executor == "process"

    @pytest.mark.parametrize("engine", ["memory", "needletail"])
    def test_process_sharded_run_bit_identical_to_unsharded(self, engine):
        """Materialized tables: process shards=2 answers are bit-identical,
        and the query pins no worker processes or segments once done."""
        baseline = REGISTRY.active_count()
        with _flights_session(engine=engine) as session:
            base = session.table("flights").group_by("carrier").agg(avg("arrival_delay"))
            plain = base.run(seed=42)
            proc = base.sharded(2, executor="process").run(seed=42)
            assert _result_fingerprint(plain) == _result_fingerprint(proc)
            assert isinstance(proc.engine, ShardedEngine)
            assert proc.engine.executor == "process"
        assert REGISTRY.active_count() == baseline

    def test_process_falls_back_to_threads_for_rejection_virtual(self):
        """Non-shareable populations downgrade with an explicit caveat."""
        with connect(delta=0.1, seed=0, engine="memory") as session:
            session.register_synthetic(
                "syn", "mixture", k=4, total_size=40_000, seed=1, materialize=False
            )
            result = (
                session.table("syn")
                .group_by("g")
                .agg(avg("value"))
                .sharded(2, executor="process")
                .run(seed=1)
            )
            assert any("fell back to the thread fan-out" in c for c in result.caveats)
            assert isinstance(result.engine, ShardedEngine)
            assert result.engine.executor == "thread"

    def test_explain_mentions_process_executor(self):
        with _flights_session() as session:
            text = (
                session.table("flights")
                .group_by("carrier")
                .agg(avg("arrival_delay"))
                .sharded(4, executor="process")
                .explain()
            )
            assert "process executor" in text
            assert "falls back to the thread fan-out" in text


class TestSpecValidation:
    def _spec(self, **overrides):
        fields = dict(
            table="t",
            group_by=("x",),
            aggregates=(Aggregate("AVG", "y"),),
        )
        fields.update(overrides)
        return QuerySpec(**fields)

    def test_defaults_are_unsharded(self):
        spec = self._spec()
        assert spec.shards == 1 and spec.max_workers is None
        assert spec.executor == "thread"

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            self._spec(executor="fiber")

    def test_builder_executor_reaches_spec(self):
        with _flights_session() as session:
            spec = (
                session.table("flights")
                .group_by("carrier")
                .agg(avg("arrival_delay"))
                .sharded(4, executor="process")
                .spec()
            )
            assert spec.shards == 4 and spec.executor == "process"

    @pytest.mark.parametrize("bad", [0, -2])
    def test_invalid_shards_rejected(self, bad):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            self._spec(shards=bad)

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers must be >= 1"):
            self._spec(max_workers=0)

    def test_with_guarantee_preserves_shards(self):
        spec = dataclasses.replace(self._spec(), shards=4, max_workers=2)
        assert spec.with_guarantee(delta=0.2).shards == 4
