"""Tests for shared utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import (
    as_rng,
    check_nonnegative,
    check_positive,
    check_probability,
    spawn_group_rngs,
)


class TestRngHelpers:
    def test_as_rng_from_int(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_spawn_reproducible(self):
        a = spawn_group_rngs(7, 3)
        b = spawn_group_rngs(7, 3)
        for x, y in zip(a, b):
            assert np.array_equal(x.random(10), y.random(10))

    def test_spawn_streams_independent(self):
        rngs = spawn_group_rngs(7, 2)
        assert not np.array_equal(rngs[0].random(10), rngs[1].random(10))

    def test_spawn_zero_groups(self):
        assert spawn_group_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_group_rngs(0, -1)


class TestValidators:
    def test_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_positive(self):
        assert check_positive(1e-9, "x") == 1e-9
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-1e-9, "x")
