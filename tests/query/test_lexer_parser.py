"""Tests for the SQL-subset lexer and parser."""

from __future__ import annotations

import pytest

from repro.query.ast import Aggregate, And, Between, Comparison, InList, Not, Or
from repro.query.lexer import LexError, Token, tokenize
from repro.query.parser import ParseError, parse_predicate, parse_query


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select AVG from")
        assert [t.kind for t in toks] == ["keyword", "keyword", "keyword", "eof"]
        assert toks[0].value == "SELECT"

    def test_identifiers_keep_case(self):
        toks = tokenize("Delay")
        assert toks[0] == Token("ident", "Delay", 0)

    def test_numbers(self):
        toks = tokenize("1 2.5 .75")
        assert [t.value for t in toks[:-1]] == ["1", "2.5", ".75"]

    def test_strings_with_escapes(self):
        toks = tokenize(r"'it\'s'")
        assert toks[0].kind == "string" and toks[0].value == "it's"

    def test_operators(self):
        toks = tokenize("<= >= != <> = < >")
        assert [t.value for t in toks[:-1]] == ["<=", ">=", "!=", "<>", "=", "<", ">"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestParseQuery:
    def test_canonical_query(self):
        q = parse_query("SELECT name, AVG(delay) FROM flt GROUP BY name")
        assert q.table == "flt"
        assert q.group_by == ("name",)
        assert q.aggregates == (Aggregate("AVG", "delay"),)
        assert q.select_groups == ("name",)
        assert q.where is None

    def test_where_clause(self):
        q = parse_query(
            "SELECT x, AVG(y) FROM t WHERE a > 5 AND b = 'z' GROUP BY x"
        )
        assert isinstance(q.where, And)
        assert q.where.operands[0] == Comparison("a", ">", 5)
        assert q.where.operands[1] == Comparison("b", "=", "z")

    def test_multi_group_by(self):
        q = parse_query("SELECT x, z, AVG(y) FROM t GROUP BY x, z")
        assert q.group_by == ("x", "z")

    def test_count_star(self):
        q = parse_query("SELECT x, COUNT(*) FROM t GROUP BY x")
        assert q.aggregates == (Aggregate("COUNT", "*"),)

    def test_two_aggregates(self):
        q = parse_query("SELECT x, AVG(y), AVG(z) FROM t GROUP BY x")
        assert len(q.aggregates) == 2

    def test_having(self):
        q = parse_query(
            "SELECT x, AVG(y) FROM t GROUP BY x HAVING AVG(y) > 30"
        )
        agg, op, value = q.having
        assert agg == Aggregate("AVG", "y") and op == ">" and value == 30.0

    def test_missing_group_by_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT x, AVG(y) FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT x, AVG(y) FROM t GROUP BY x extra")

    def test_selected_column_must_be_grouped(self):
        with pytest.raises(ValueError):
            parse_query("SELECT w, AVG(y) FROM t GROUP BY x")

    def test_avg_star_rejected(self):
        with pytest.raises(ValueError):
            parse_query("SELECT x, AVG(*) FROM t GROUP BY x")


class TestParsePredicate:
    def test_precedence_and_over_or(self):
        p = parse_predicate("a = 1 OR b = 2 AND c = 3")
        assert isinstance(p, Or)
        assert isinstance(p.operands[1], And)

    def test_parentheses(self):
        p = parse_predicate("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(p, And)
        assert isinstance(p.operands[0], Or)

    def test_not(self):
        p = parse_predicate("NOT a = 1")
        assert isinstance(p, Not)

    def test_between(self):
        p = parse_predicate("x BETWEEN 10 AND 20")
        assert p == Between("x", 10, 20)

    def test_in_list(self):
        p = parse_predicate("x IN (1, 2, 3)")
        assert p == InList("x", (1, 2, 3))

    def test_in_strings(self):
        p = parse_predicate("name IN ('AA', 'DL')")
        assert p == InList("name", ("AA", "DL"))

    def test_bad_comparison(self):
        with pytest.raises(ParseError):
            parse_predicate("x ==")
