"""Tests for predicate evaluation (masks and bitmap form)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.needletail.table import Table
from repro.query.parser import parse_predicate
from repro.query.predicates import (
    predicate_bitvector,
    predicate_columns,
    predicate_mask,
)


@pytest.fixture()
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_dict(
        "t",
        {
            "x": rng.uniform(0, 100, 1000),
            "year": rng.integers(1990, 2000, 1000),
            "name": rng.choice(["AA", "DL", "UA"], 1000),
        },
    )


class TestMask:
    @pytest.mark.parametrize(
        "text,numpy_expr",
        [
            ("x > 50", lambda t: t.column("x") > 50),
            ("x <= 25", lambda t: t.column("x") <= 25),
            ("year = 1995", lambda t: t.column("year") == 1995),
            ("year != 1995", lambda t: t.column("year") != 1995),
            ("name = 'AA'", lambda t: t.column("name") == "AA"),
            ("x BETWEEN 20 AND 40", lambda t: (t.column("x") >= 20) & (t.column("x") <= 40)),
            ("name IN ('AA', 'UA')", lambda t: np.isin(t.column("name"), ["AA", "UA"])),
            ("NOT x > 50", lambda t: ~(t.column("x") > 50)),
            (
                "x > 50 AND year < 1995",
                lambda t: (t.column("x") > 50) & (t.column("year") < 1995),
            ),
            (
                "name = 'AA' OR name = 'DL'",
                lambda t: (t.column("name") == "AA") | (t.column("name") == "DL"),
            ),
        ],
    )
    def test_matches_numpy(self, table, text, numpy_expr):
        mask = predicate_mask(parse_predicate(text), table)
        assert np.array_equal(mask, numpy_expr(table))

    def test_string_vs_numeric_type_error(self, table):
        with pytest.raises(TypeError):
            predicate_mask(parse_predicate("x = 'abc'"), table)

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            predicate_mask(parse_predicate("bogus > 1"), table)


class TestBitvector:
    def test_matches_mask(self, table):
        pred = parse_predicate("x > 30 AND year >= 1995")
        mask = predicate_mask(pred, table)
        bv = predicate_bitvector(pred, table)
        assert np.array_equal(bv.to_bools(), mask)


class TestColumns:
    def test_collects_all(self):
        pred = parse_predicate("x > 1 AND (year = 1995 OR NOT name = 'AA')")
        assert predicate_columns(pred) == {"x", "year", "name"}
