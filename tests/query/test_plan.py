"""Tests for query planning/execution over the NEEDLETAIL engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.needletail.table import Table
from repro.query.plan import execute_query


@pytest.fixture()
def table() -> Table:
    rng = np.random.default_rng(1)
    n = 30_000
    names = rng.choice(["AA", "JB", "UA"], size=n, p=[0.5, 0.3, 0.2])
    base = {"AA": 30.0, "JB": 15.0, "UA": 85.0}
    delay = np.clip(np.array([base[x] for x in names]) + rng.normal(0, 8, n), 0, 100)
    dist = rng.uniform(100, 2000, n)
    year = rng.integers(1990, 2000, n)
    return Table.from_dict(
        "flights", {"name": names, "delay": delay, "dist": dist, "year": year}
    )


@pytest.fixture()
def catalog(table) -> dict[str, Table]:
    return {"flights": table}


class TestAvg:
    def test_basic_query_ordering(self, catalog, table):
        out = execute_query(
            "SELECT name, AVG(delay) FROM flights GROUP BY name",
            catalog,
            delta=0.05,
            seed=1,
        )
        est = out.estimates()
        assert est["JB"] < est["AA"] < est["UA"]
        assert out.total_samples < table.num_rows

    def test_where_changes_population(self, catalog, table):
        out = execute_query(
            "SELECT name, AVG(delay) FROM flights WHERE year >= 1995 GROUP BY name",
            catalog,
            delta=0.05,
            seed=2,
        )
        mask = table.column("year") >= 1995
        for label in out.labels:
            group = mask & (table.column("name") == label)
            true_mean = table.column("delay")[group].mean()
            assert out.estimates()[label] == pytest.approx(true_mean, abs=5.0)

    def test_algorithm_selection(self, catalog):
        out = execute_query(
            "SELECT name, AVG(delay) FROM flights GROUP BY name",
            catalog,
            algorithm="roundrobin",
            seed=3,
        )
        assert out.results["AVG(delay)"].algorithm == "roundrobin"

    def test_two_avgs_problem8(self, catalog):
        out = execute_query(
            "SELECT name, AVG(delay), AVG(dist) FROM flights GROUP BY name",
            catalog,
            seed=4,
        )
        assert set(out.results) == {"AVG(delay)", "AVG(dist)"}

    def test_three_avgs_rejected(self, catalog):
        with pytest.raises(ValueError):
            execute_query(
                "SELECT name, AVG(delay), AVG(dist), AVG(year) FROM flights GROUP BY name",
                catalog,
            )


class TestOtherAggregates:
    def test_sum(self, catalog, table):
        out = execute_query(
            "SELECT name, SUM(delay) FROM flights GROUP BY name", catalog, seed=5
        )
        for label, est in out.estimates().items():
            true_sum = table.column("delay")[table.column("name") == label].sum()
            assert est == pytest.approx(true_sum, rel=0.15)

    def test_count_exact(self, catalog, table):
        out = execute_query(
            "SELECT name, COUNT(*) FROM flights GROUP BY name", catalog
        )
        for label, est in out.estimates().items():
            assert est == int((table.column("name") == label).sum())
        assert out.results["COUNT(*)"].total_samples == 0


class TestHaving:
    def test_having_drops_groups(self, catalog):
        out = execute_query(
            "SELECT name, AVG(delay) FROM flights GROUP BY name "
            "HAVING AVG(delay) > 20",
            catalog,
            seed=6,
        )
        assert "JB" in out.dropped_by_having
        assert "UA" not in out.dropped_by_having

    def test_having_requires_selected_aggregate(self, catalog):
        with pytest.raises(ValueError):
            execute_query(
                "SELECT name, AVG(delay) FROM flights GROUP BY name "
                "HAVING AVG(dist) > 20",
                catalog,
                seed=7,
            )


class TestMultiGroupBy:
    def test_composite_labels(self, catalog):
        out = execute_query(
            "SELECT name, year, AVG(delay) FROM flights "
            "WHERE year IN (1995, 1996) GROUP BY name, year",
            catalog,
            seed=8,
        )
        assert all("|" in label for label in out.labels)
        assert len(out.labels) == 6  # 3 carriers x 2 years


class TestValidation:
    def test_unknown_table(self, catalog):
        with pytest.raises(KeyError):
            execute_query("SELECT name, AVG(delay) FROM other GROUP BY name", catalog)

    def test_unknown_aggregate_column(self, catalog):
        with pytest.raises(KeyError):
            execute_query("SELECT name, AVG(bogus) FROM flights GROUP BY name", catalog)

    def test_unknown_group_column(self, catalog):
        with pytest.raises(KeyError):
            execute_query("SELECT bogus, AVG(delay) FROM flights GROUP BY bogus", catalog)

    def test_unknown_where_column(self, catalog):
        with pytest.raises(KeyError):
            execute_query(
                "SELECT name, AVG(delay) FROM flights WHERE bogus > 1 GROUP BY name",
                catalog,
            )
