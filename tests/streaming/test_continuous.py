"""ContinuousQuery lifecycle: subscribe, cancel, errors, source seams."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from streamutil import DATA, SCHEMA, chunk_factory, make_session
from repro.catalog import IteratorSource
from repro.session import connect
from repro.streaming import ContinuousQuery, WindowResult
from repro.streaming.runner import WindowRunner


class TestSubscribe:
    def test_builder_subscribe_roundtrip(self, stream_session):
        cq = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(200.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        results = list(cq.results())
        assert [r.window.index for r in results] == [0, 1, 2]
        assert cq.done and not cq.cancelled

    def test_session_subscribe_accepts_spec(self, stream_session):
        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(300.0, on="ts").spec()
        )
        cq = stream_session.subscribe(spec, seed=4, emit_updates=False)
        assert len(list(cq.results())) == 2

    def test_subscribe_rejects_windowless_queries(self, stream_session):
        plain = stream_session.table("events").group_by("g").agg("AVG(v)")
        with pytest.raises(ValueError, match="window"):
            stream_session.subscribe(plain)

    def test_subscribe_rejects_unknown_table(self, stream_session):
        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="ts").spec()
        )
        import dataclasses

        bad = dataclasses.replace(spec, table="nope")
        with pytest.raises(KeyError, match="nope"):
            stream_session.subscribe(bad)

    def test_catalog_snapshot_isolates_re_registration(self, stream_session):
        """Re-registering the table mid-subscription never swaps the stream."""
        cq = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(200.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        stream_session.register("events", {k: v[:10] for k, v in DATA.items()})
        results = list(cq.results())
        assert sum(r.rows for r in results) == len(DATA["ts"])

    def test_single_consumer(self, stream_session):
        cq = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(200.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        list(cq.updates())
        with pytest.raises(RuntimeError, match="single-consumer"):
            next(iter(cq.updates()))


class TestCancel:
    def _paced_session(self, gate: threading.Event):
        """An unbounded stream that waits on ``gate`` between chunks."""

        def chunks():
            base = 0
            while True:
                yield {
                    "g": DATA["g"][:100],
                    "v": DATA["v"][:100],
                    "ts": np.arange(base, base + 100, dtype=np.float64),
                }
                base += 100
                gate.wait(5.0)

        session = connect(engine="memory", seed=0, delta=0.1)
        session.register("events", IteratorSource(chunks, schema=SCHEMA))
        return session

    def test_cancel_mid_stream_ends_cleanly(self):
        gate = threading.Event()
        session = self._paced_session(gate)
        cq = (
            session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        events = cq.updates()
        first = next(e for e in events if isinstance(e, WindowResult))
        assert first.window.index == 0
        cq.cancel()
        gate.set()
        remaining = list(events)  # ends without raising
        assert cq.join(timeout=30)
        assert cq.cancelled and cq.done
        assert all(isinstance(e, WindowResult) for e in remaining)
        session.close()

    def test_cancel_is_idempotent(self, stream_session):
        cq = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(200.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        list(cq.updates())
        cq.cancel()
        cq.cancel()
        assert not cq.cancelled  # finished before cancel: a clean run


class TestErrors:
    def test_runner_failure_re_raises_from_updates(self):
        def chunks():
            yield {k: v[:100] for k, v in DATA.items()}
            raise OSError("stream socket dropped")

        session = connect(engine="memory", seed=0, delta=0.1)
        session.register("events", IteratorSource(chunks, schema=SCHEMA))
        cq = (
            session.table("events").group_by("g").agg("AVG(v)")
            .window(50.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        with pytest.raises(OSError, match="socket dropped"):
            list(cq.updates())
        assert cq.done and not cq.cancelled
        session.close()


class TestSingleUseSource:
    """Regression tests for the documented replay/tail seam."""

    def test_single_use_feeds_one_subscription(self):
        source = IteratorSource.single_use(chunk_factory()(), schema=SCHEMA)
        session = connect(engine="memory", seed=0, delta=0.1)
        session.register("events", source)
        cq = (
            session.table("events").group_by("g").agg("AVG(v)")
            .window(200.0, on="ts")
            .subscribe(seed=0, emit_updates=False)
        )
        assert len(list(cq.results())) == 3
        session.close()

    def test_second_scan_raises_loudly(self):
        source = IteratorSource.single_use(chunk_factory()(), schema=SCHEMA)
        list(source.scan())
        with pytest.raises(RuntimeError, match="already\\s+scanned once"):
            list(source.scan())

    def test_schema_is_required(self):
        with pytest.raises(TypeError, match="explicit Schema"):
            IteratorSource.single_use(chunk_factory()(), schema=None)

    def test_factory_reuse_guard_still_pinned(self):
        """The pre-existing same-iterator-twice TypeError is unchanged."""
        gen = chunk_factory()()
        source = IteratorSource(lambda: gen, schema=SCHEMA)
        list(source.scan())
        with pytest.raises(TypeError, match="same iterator twice"):
            list(source.scan())


class TestStartClassmethod:
    def test_start_builds_and_runs_a_runner(self, stream_session):
        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(300.0, on="ts").spec()
        )
        cq = ContinuousQuery.start(
            spec, stream_session.catalog.snapshot(), seed=2, emit_updates=False
        )
        assert len(list(cq.results())) == 2
        stats = cq.stats()
        assert stats["windows_emitted"] == 2

    def test_runner_cancel_interrupts_inflight_window(self):
        """cancel() fires the active window's deadline token: sampling
        already in flight raises QueryCancelled at its next round instead
        of running the window to completion."""
        from repro.errors import QueryCancelled
        from repro.streaming.runner import WindowUpdate

        rng = np.random.default_rng(0)
        # Group "a" separates (and finalizes) almost immediately; "b"/"c"
        # have nearly equal means, so the window keeps sampling long after
        # the first per-group update is emitted.
        data = {
            "g": np.concatenate(
                [np.repeat("a", 2_000), np.tile(np.array(["b", "c"]), 100_000)]
            ),
            "v": np.concatenate(
                [
                    rng.normal(5.0, 1.0, 2_000),
                    rng.normal(25.0, 1.0, 200_000),
                ]
            ).clip(0, 50),
        }
        data["ts"] = np.arange(len(data["g"]), dtype=np.float64)
        session = connect(engine="memory", seed=0, delta=0.01)
        session.register("events", data)
        spec = (
            session.table("events").group_by("g").agg("AVG(v)")
            .window(float(len(data["g"])), on="ts").spec()
        )
        runner = WindowRunner(spec, session.catalog, seed=0, emit_updates=True)
        events = runner.run()
        # The generator suspends at the first per-group update: the window
        # is genuinely mid-evaluation when cancel() fires.
        first = next(e for e in events if isinstance(e, WindowUpdate))
        assert first.update.group.label == "a"
        runner.cancel()
        with pytest.raises(QueryCancelled):
            list(events)
        session.close()
