"""WindowSpec geometry: validation, assignment math, serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.streaming import LATE_POLICIES, WindowSpec


class TestValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError, match="size must be > 0"):
            WindowSpec(size=0)
        with pytest.raises(ValueError, match="size must be > 0"):
            WindowSpec(size=-5)

    def test_size_must_be_a_number(self):
        with pytest.raises(TypeError):
            WindowSpec(size="100")
        with pytest.raises(TypeError):
            WindowSpec(size=True)

    def test_every_bounds(self):
        with pytest.raises(ValueError, match="every must be > 0"):
            WindowSpec(size=10, every=0)
        # every > size would leave gaps between windows - rejected loudly.
        with pytest.raises(ValueError, match="gaps"):
            WindowSpec(size=10, every=11)
        assert WindowSpec(size=10, every=10).stride == 10

    def test_late_policy_names(self):
        assert LATE_POLICIES == ("drop", "recompute", "error")
        with pytest.raises(ValueError, match="late policy"):
            WindowSpec(size=10, on="ts", late="ignore")

    def test_negative_lateness(self):
        with pytest.raises(ValueError, match="allowed_lateness"):
            WindowSpec(size=10, on="ts", allowed_lateness=-1.0)

    def test_row_windows_need_integer_geometry(self):
        with pytest.raises(ValueError, match="integer size"):
            WindowSpec(size=10.5)
        with pytest.raises(ValueError, match="integer every"):
            WindowSpec(size=10, every=2.5)
        # Float-typed but integral is fine (wire formats carry floats).
        assert WindowSpec(size=10.0, every=5.0).stride == 5.0

    def test_row_windows_reject_time_only_knobs(self):
        with pytest.raises(ValueError, match="time windows"):
            WindowSpec(size=10, allowed_lateness=5.0)
        with pytest.raises(ValueError, match="time windows"):
            WindowSpec(size=10, late="recompute")
        with pytest.raises(ValueError, match="origin"):
            WindowSpec(size=10, origin=100.0)


class TestGeometry:
    def test_tumbling_assignment_is_half_open(self):
        w = WindowSpec(size=10.0, on="ts")
        lo, hi = w.assign(np.array([0.0, 9.999, 10.0, 25.0]))
        assert hi.tolist() == [0, 0, 1, 2]
        assert lo.tolist() == hi.tolist()  # tumbling: one window per row

    def test_sliding_assignment_spans_overlapping_windows(self):
        w = WindowSpec(size=10.0, every=5.0, on="ts")
        lo, hi = w.assign(np.array([7.0]))
        # t=7 lands in [0,10) and [5,15): window indices 0 and 1.
        assert (lo[0], hi[0]) == (0, 1)

    def test_lo_clamped_at_zero(self):
        w = WindowSpec(size=10.0, every=5.0, on="ts")
        lo, hi = w.assign(np.array([2.0]))
        assert (lo[0], hi[0]) == (0, 0)

    def test_origin_shifts_the_grid(self):
        w = WindowSpec(size=10.0, on="ts", origin=100.0)
        _, hi = w.assign(np.array([100.0, 109.0, 110.0]))
        assert hi.tolist() == [0, 0, 1]

    def test_values_before_origin_rejected(self):
        w = WindowSpec(size=10.0, on="ts", origin=100.0)
        with pytest.raises(ValueError, match="origin"):
            w.assign(np.array([99.0]))

    def test_bounds(self):
        w = WindowSpec(size=10.0, every=5.0, on="ts")
        assert w.bounds(0) == (0.0, 10.0)
        assert w.bounds(3) == (15.0, 25.0)

    def test_panes_per_window(self):
        assert WindowSpec(size=10.0, on="ts").panes_per_window == 1
        assert WindowSpec(size=10.0, every=5.0, on="ts").panes_per_window == 2
        # Non-integral size/stride ratio: no pane decomposition.
        assert WindowSpec(size=10.0, every=3.0, on="ts").panes_per_window is None

    def test_properties(self):
        w = WindowSpec(size=10.0, every=5.0, on="ts")
        assert w.sliding and w.by_time
        r = WindowSpec(size=10)
        assert not r.sliding and not r.by_time


class TestSerialization:
    def test_roundtrip(self):
        w = WindowSpec(
            size=60.0, every=30.0, on="ts", late="recompute",
            allowed_lateness=5.0, origin=10.0,
        )
        assert WindowSpec.from_dict(w.to_dict()) == w
        json.dumps(w.to_dict())  # wire-safe

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown window keys"):
            WindowSpec.from_dict({"size": 10, "stride": 5})

    def test_from_dict_requires_size(self):
        with pytest.raises(ValueError, match="size"):
            WindowSpec.from_dict({"every": 5})


class TestSpecIntegration:
    def test_canonical_key_includes_window(self, stream_session):
        base = stream_session.table("events").group_by("g").agg("AVG(v)")
        plain = base.spec()
        windowed = base.window(100.0, on="ts").spec()
        assert plain.canonical_key() != windowed.canonical_key()
        assert (
            base.window(100.0, every=50.0, on="ts").spec().canonical_key()
            != windowed.canonical_key()
        )

    def test_spec_dict_roundtrip_carries_window(self, stream_session):
        from repro.session import QuerySpec

        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="ts", late="recompute", allowed_lateness=3.0)
            .spec()
        )
        assert QuerySpec.from_dict(spec.to_dict()) == spec

    def test_one_shot_paths_reject_windowed_specs(self, stream_session):
        windowed = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="ts")
        )
        with pytest.raises(ValueError, match="subscribe"):
            windowed.run()
        with pytest.raises(ValueError, match="subscribe"):
            list(windowed.stream())

    def test_builder_window_checks_on_column(self, stream_session):
        base = stream_session.table("events").group_by("g").agg("AVG(v)")
        with pytest.raises(KeyError):
            base.window(100.0, on="nope")
