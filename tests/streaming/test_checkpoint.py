"""Durable streaming checkpoints: suppress-and-replay resume semantics.

Resume is a deterministic replay of the source with the first N emission
events suppressed (N = the checkpointed ``emissions`` count).  Suppressed
windows keep every piece of bookkeeping - watermarks, late counters,
``max_windows`` math - but skip evaluation and the yield, so the windows
that *do* come out are bit-identical to the tail of an uninterrupted run
(per-window seed stays ``seed + index``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.query import parse_query
from repro.streaming.runner import WindowResult, WindowRunner

SQL = "SELECT g, AVG(v) FROM t GROUP BY g"


def _dataset(rows=500):
    rng = np.random.default_rng(11)
    return {
        "g": np.tile(np.array(["a", "b"]), rows // 2),
        "v": rng.random(rows) * 10.0,
        "ts": np.arange(rows, dtype=np.float64),
    }


def _windowed_spec(session, size=100.0):
    return session.sql(parse_query(SQL)).window(size, on="ts").spec()


def _payload_of(result: WindowResult) -> dict:
    d = result.to_dict()
    d.pop("elapsed_seconds")  # wall clock differs between runs by design
    return d


class TestRunnerResume:
    def _results(self, catalog, spec, **kwargs):
        runner = WindowRunner(spec, catalog, seed=3, emit_updates=False, **kwargs)
        return [e for e in runner.run() if isinstance(e, WindowResult)]

    def test_resumed_tail_is_bit_identical(self, tmp_path):
        session = repro.connect(engine="memory", seed=0)
        session.attach("t", _dataset())
        spec = _windowed_spec(session)
        full = self._results(session.catalog, spec)
        assert len(full) == 5
        for skip in (1, 3, 5):
            tail = self._results(session.catalog, spec, resume_emissions=skip)
            assert [_payload_of(r) for r in tail] == [
                _payload_of(r) for r in full[skip:]
            ]

    def test_suppressed_windows_still_count_toward_max_windows(self, tmp_path):
        session = repro.connect(engine="memory", seed=0)
        session.attach("t", _dataset())
        spec = _windowed_spec(session)
        tail = self._results(
            session.catalog, spec, resume_emissions=2, max_windows=3
        )
        # 2 suppressed + 1 live = max_windows; the live one is window 2.
        assert [r.window.index for r in tail] == [2]

    def test_checkpoint_sink_sees_monotone_emissions(self):
        session = repro.connect(engine="memory", seed=0)
        session.attach("t", _dataset())
        states = []
        runner = WindowRunner(
            _windowed_spec(session),
            session.catalog,
            seed=3,
            emit_updates=False,
            checkpoint=states.append,
        )
        list(runner.run())
        assert [s["emissions"] for s in states] == [1, 2, 3, 4, 5]
        assert states[-1]["windows_emitted"] == 5
        assert states[-1]["rows_seen"] == 500

    def test_failing_sink_never_kills_the_stream(self):
        session = repro.connect(engine="memory", seed=0)
        session.attach("t", _dataset())

        def explode(_state):
            raise OSError("disk full")

        runner = WindowRunner(
            _windowed_spec(session),
            session.catalog,
            seed=3,
            emit_updates=False,
            checkpoint=explode,
        )
        results = [e for e in runner.run() if isinstance(e, WindowResult)]
        assert len(results) == 5

    def test_negative_resume_rejected(self):
        session = repro.connect(engine="memory", seed=0)
        session.attach("t", _dataset())
        with pytest.raises(ValueError, match="resume_emissions"):
            WindowRunner(
                _windowed_spec(session), session.catalog, resume_emissions=-1
            )


class TestSessionCheckpoints:
    def test_checkpoint_needs_a_durable_session(self):
        session = repro.connect(engine="memory", seed=0)
        session.attach("t", _dataset())
        builder = session.sql(parse_query(SQL)).window(100.0, on="ts")
        with pytest.raises(ValueError, match="durable session"):
            builder.subscribe(checkpoint="cp")

    def test_full_run_then_resume_emits_nothing_more(self, tmp_path):
        session = repro.connect(store=tmp_path / "store", engine="memory", seed=0)
        session.attach("t", _dataset())
        builder = session.sql(parse_query(SQL)).window(100.0, on="ts")
        cq = builder.subscribe(seed=3, emit_updates=False, checkpoint="cp")
        first = [e for e in cq.results()]
        assert len(first) == 5
        _payload, state = session.catalog.load_checkpoint("cp")
        assert state["emissions"] == 5

        resumed = builder.subscribe(
            seed=3, emit_updates=False, checkpoint="cp", resume=True
        )
        assert [e for e in resumed.results()] == []
        assert resumed.stats()["windows_emitted"] == 5  # replayed, suppressed
        session.close()

    def test_resume_mid_stream_yields_the_identical_tail(self, tmp_path):
        session = repro.connect(store=tmp_path / "store", engine="memory", seed=0)
        session.attach("t", _dataset())
        builder = session.sql(parse_query(SQL)).window(100.0, on="ts")
        reference = [
            e for e in builder.subscribe(
                seed=3, emit_updates=False, checkpoint="ref"
            ).results()
        ]

        # Simulate a process that died after delivering two windows.
        spec = _windowed_spec(session)
        session.catalog.save_checkpoint(
            "cp",
            kind="subscription",
            payload={
                "spec": spec.canonical_key(),
                "seed": 3,
                "max_windows": None,
                "emit_updates": False,
            },
            state={"emissions": 2},
        )
        resumed = builder.subscribe(
            seed=3, emit_updates=False, checkpoint="cp", resume=True
        )
        tail = [e for e in resumed.results()]
        assert [_payload_of(r) for r in tail] == [
            _payload_of(r) for r in reference[2:]
        ]
        _payload, state = session.catalog.load_checkpoint("cp")
        assert state["emissions"] == 5  # the cursor kept advancing
        session.close()

    def test_resume_rejects_a_mismatched_checkpoint(self, tmp_path):
        session = repro.connect(store=tmp_path / "store", engine="memory", seed=0)
        session.attach("t", _dataset())
        builder = session.sql(parse_query(SQL)).window(100.0, on="ts")
        cq = builder.subscribe(seed=3, emit_updates=False, checkpoint="cp")
        list(cq.results())
        with pytest.raises(ValueError, match="different"):
            builder.subscribe(
                seed=4, emit_updates=False, checkpoint="cp", resume=True
            )
        session.close()

    def test_fresh_run_resets_a_stale_checkpoint(self, tmp_path):
        session = repro.connect(store=tmp_path / "store", engine="memory", seed=0)
        session.attach("t", _dataset())
        builder = session.sql(parse_query(SQL)).window(100.0, on="ts")
        list(builder.subscribe(seed=3, emit_updates=False, checkpoint="cp").results())
        # Starting over (resume=False) rewinds the cursor to zero before
        # the first window closes.
        fresh = builder.subscribe(seed=3, emit_updates=False, checkpoint="cp")
        results = [e for e in fresh.results()]
        assert len(results) == 5
        session.close()
