"""Shared stream helpers: a deterministic event table sliced into chunks."""

from __future__ import annotations

import numpy as np

from repro.catalog import IteratorSource, Schema
from repro.session import connect

#: Total rows of the canonical event stream.
N = 600


def make_data(seed: int = 7, n: int = N) -> dict:
    """The canonical stream: 3 groups, bounded values, ts = row index."""
    rng = np.random.default_rng(seed)
    return {
        "g": rng.choice(np.array(["a", "b", "c"]), n),
        "v": rng.random(n) * 50.0,
        "ts": np.arange(n, dtype=np.float64),
    }


DATA = make_data()

SCHEMA = Schema.from_arrays({k: v[:1] for k, v in DATA.items()})


def chunk_factory(chunk_rows: int = 100, order: np.ndarray | None = None):
    """A replayable factory yielding DATA in ``chunk_rows`` slices.

    ``order`` permutes/filters rows (late-arrival scenarios); default is
    arrival order == ts order.
    """
    idx = np.arange(N) if order is None else np.asarray(order)

    def chunks():
        for start in range(0, len(idx), chunk_rows):
            sel = idx[start:start + chunk_rows]
            yield {k: DATA[k][sel] for k in DATA}

    return chunks


def make_session(
    engine: str = "memory",
    shards: int = 1,
    chunk_rows: int = 100,
    order: np.ndarray | None = None,
    **connect_kwargs,
):
    """A session with the canonical stream registered as ``events``."""
    session = connect(
        engine=engine, shards=shards, seed=0, delta=0.1, **connect_kwargs
    )
    session.register(
        "events",
        IteratorSource(chunk_factory(chunk_rows, order), schema=SCHEMA),
    )
    return session


def oneshot_session(rows: dict, engine: str = "memory", shards: int = 1):
    """A session holding exactly ``rows`` as the ``events`` table."""
    session = connect(engine=engine, shards=shards, seed=0, delta=0.1)
    session.register("events", rows)
    return session


def canon(result) -> dict:
    """Result.to_dict() minus wall-clock fields (io/cpu seconds vary)."""
    d = result.to_dict()
    d.pop("io_seconds")
    d.pop("cpu_seconds")
    return d


def window_rows(start: float, end: float) -> dict:
    """The canonical stream's rows with ``start <= ts < end``."""
    mask = (DATA["ts"] >= start) & (DATA["ts"] < end)
    return {k: v[mask] for k, v in DATA.items()}
