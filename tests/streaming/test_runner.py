"""WindowRunner guarantees: bit-identity, lateness, deadlines, warm start.

The correctness anchor of the streaming subsystem: every tumbling window's
result is BIT-IDENTICAL (canonical dict equality minus wall-clock fields)
to a one-shot Session query over exactly that window's rows with the same
per-window seed - across engines and shard counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from streamutil import (
    DATA,
    N,
    SCHEMA,
    canon,
    make_session,
    oneshot_session,
    window_rows,
)
from repro.catalog import Catalog, IteratorSource
from repro.streaming import WindowSpec
from repro.streaming.runner import (
    LateDataError,
    WindowResult,
    WindowRunner,
    WindowUpdate,
)


def results_of(cq) -> list[WindowResult]:
    return [e for e in cq if isinstance(e, WindowResult)]


def windowed(session, **window_kwargs):
    return (
        session.table("events").group_by("g").agg("AVG(v)")
        .window(**window_kwargs)
    )


class TestTumblingBitIdentity:
    @pytest.mark.parametrize("engine", ["memory", "needletail"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_matches_one_shot_query_per_window(self, engine, shards):
        session = make_session(engine=engine, shards=shards)
        cq = windowed(session, size=200.0, on="ts").subscribe(
            seed=11, emit_updates=False
        )
        results = results_of(cq)
        # ts spans [0, 600): two windows close on watermark, the last at EOS.
        assert [r.window.index for r in results] == [0, 1, 2]
        assert results[-1].closed_by == "end_of_stream"
        for wr in results:
            assert wr.seed == 11 + wr.window.index
            oneshot = oneshot_session(
                window_rows(wr.window.start, wr.window.end),
                engine=engine,
                shards=shards,
            )
            expected = (
                oneshot.table("events").group_by("g").agg("AVG(v)")
                .run(seed=wr.seed)
            )
            assert canon(wr.result) == canon(expected)
            oneshot.close()
        session.close()

    def test_stream_path_matches_session_stream(self):
        """emit_updates=True runs the live-stream code path bit-identically."""
        session = make_session()
        cq = windowed(session, size=300.0, on="ts").subscribe(seed=5)
        events = list(cq)
        updates = [e for e in events if isinstance(e, WindowUpdate)]
        results = [e for e in events if isinstance(e, WindowResult)]
        assert updates, "emit_updates=True must yield per-group updates"
        assert all(u.window.index in (0, 1) for u in updates)
        for wr in results:
            oneshot = oneshot_session(window_rows(wr.window.start, wr.window.end))
            stream = (
                oneshot.table("events").group_by("g").agg("AVG(v)")
                .stream(seed=wr.seed)
            )
            oneshot_updates = list(stream)
            assert canon(wr.result) == canon(stream.result)
            window_updates = [
                u.update.to_dict() for u in updates
                if u.window.index == wr.window.index
            ]
            assert window_updates == [u.to_dict() for u in oneshot_updates]
            oneshot.close()
        session.close()

    def test_row_count_windows(self):
        session = make_session(chunk_rows=100)
        cq = windowed(session, size=150).subscribe(seed=3, emit_updates=False)
        results = results_of(cq)
        assert [r.window.index for r in results] == [0, 1, 2, 3]
        assert all(r.rows == 150 for r in results)
        assert all(r.closed_by == "row_count" for r in results)
        for wr in results:
            sel = slice(int(wr.window.start), int(wr.window.end))
            oneshot = oneshot_session({k: v[sel] for k, v in DATA.items()})
            expected = (
                oneshot.table("events").group_by("g").agg("AVG(v)")
                .run(seed=wr.seed)
            )
            assert canon(wr.result) == canon(expected)
            oneshot.close()
        session.close()

    def test_chunk_exactly_on_boundary(self):
        """Chunks aligned to the window grid: no row straddles, all close."""
        session = make_session(chunk_rows=100)
        cq = windowed(session, size=100.0, on="ts").subscribe(
            seed=0, emit_updates=False
        )
        results = results_of(cq)
        assert [r.window.index for r in results] == list(range(6))
        assert all(r.rows == 100 for r in results)
        # Boundary row ts=100 belongs to window 1 (half-open intervals).
        w1 = window_rows(100.0, 200.0)
        assert w1["ts"].min() == 100.0 and len(w1["ts"]) == 100
        session.close()


class TestEmptyAndBounds:
    def test_interior_empty_windows_emit_empty_results(self):
        gap_order = np.concatenate([np.arange(50), np.arange(300, 350)])
        session = make_session(chunk_rows=50, order=gap_order)
        cq = windowed(session, size=100.0, on="ts").subscribe(
            seed=0, emit_updates=False
        )
        results = results_of(cq)
        assert [r.window.index for r in results] == [0, 1, 2, 3]
        assert not results[0].empty and results[0].rows == 50
        assert results[1].empty and results[1].result is None and results[1].rows == 0
        assert results[2].empty
        assert not results[3].empty and results[3].closed_by == "end_of_stream"
        session.close()

    def test_leading_empty_windows_are_skipped(self):
        """A stream starting at ts=300 does not flood windows 0..2."""
        late_start = np.arange(300, 500)
        session = make_session(chunk_rows=50, order=late_start)
        cq = windowed(session, size=100.0, on="ts").subscribe(
            seed=0, emit_updates=False
        )
        results = results_of(cq)
        assert [r.window.index for r in results] == [3, 4]
        session.close()

    def test_max_windows_stops_the_stream(self):
        session = make_session()
        cq = windowed(session, size=100.0, on="ts").subscribe(
            seed=0, max_windows=2, emit_updates=False
        )
        results = results_of(cq)
        assert [r.window.index for r in results] == [0, 1]
        session.close()


class TestLatePolicies:
    # ts 0..99 arrive, then 200..299 (watermark closes [0,100)), then
    # rows 40..49 arrive again - late for window 0 - then 300..349.
    LATE_ORDER = np.concatenate(
        [np.arange(100), np.arange(200, 300), np.arange(40, 50), np.arange(300, 350)]
    )

    def _run(self, late: str):
        session = make_session(chunk_rows=50, order=self.LATE_ORDER)
        cq = windowed(session, size=100.0, on="ts", late=late).subscribe(
            seed=0, emit_updates=False
        )
        try:
            return session, list(cq.updates()), cq
        finally:
            session.close()

    def test_drop_counts_and_discards(self):
        _session, events, cq = self._run("drop")
        results = [e for e in events if isinstance(e, WindowResult)]
        window0 = [r for r in results if r.window.index == 0]
        assert len(window0) == 1  # never re-emitted
        assert window0[0].rows == 100
        assert cq.stats()["late_dropped"] == 10

    def test_recompute_re_emits_a_revision(self):
        _session, events, cq = self._run("recompute")
        results = [e for e in events if isinstance(e, WindowResult)]
        window0 = [r for r in results if r.window.index == 0]
        assert len(window0) == 2
        first, revised = window0
        assert (first.revision, revised.revision) == (0, 1)
        assert revised.closed_by == "late_recompute"
        assert revised.late_rows == 10
        assert revised.rows == 110
        assert cq.stats()["late_recomputed"] == 10
        # The revision is itself bit-identical to a one-shot over the
        # window's rows in arrival order (original 100, then the late 10).
        sel = np.concatenate([np.arange(100), np.arange(40, 50)])
        oneshot = oneshot_session({k: v[sel] for k, v in DATA.items()})
        expected = (
            oneshot.table("events").group_by("g").agg("AVG(v)")
            .run(seed=revised.seed)
        )
        assert canon(revised.result) == canon(expected)
        oneshot.close()

    def test_error_raises_late_data_error(self):
        session = make_session(chunk_rows=50, order=self.LATE_ORDER)
        cq = windowed(session, size=100.0, on="ts", late="error").subscribe(
            seed=0, emit_updates=False
        )
        with pytest.raises(LateDataError):
            list(cq.updates())
        session.close()

    def test_allowed_lateness_holds_windows_open(self):
        # With 250 units of slack the watermark stays below 100 until end
        # of stream (max ts 349 -> watermark 99), so window 0 is still open
        # when rows 40..49 re-arrive: they are on time, not late.
        session = make_session(chunk_rows=50, order=self.LATE_ORDER)
        cq = windowed(
            session, size=100.0, on="ts", late="drop", allowed_lateness=250.0
        ).subscribe(seed=0, emit_updates=False)
        results = [e for e in cq.updates() if isinstance(e, WindowResult)]
        assert cq.stats()["late_dropped"] == 0
        window0 = [r for r in results if r.window.index == 0]
        assert window0[0].rows == 110
        session.close()


class TestDeadlines:
    def test_deadline_expiry_mid_window_continues_the_stream(self):
        """A per-window deadline finalizes that window early (anytime
        answer, deadline_exceeded caveat) and the next window still runs."""
        rng = np.random.default_rng(0)
        n = 40_000
        data = {
            # Equal means: inseparable at any sample size, so every window
            # runs until its budget (or exhaustion) stops it.
            "g": np.tile(np.array(["x", "y"]), n // 2),
            "v": rng.normal(25.0, 1.0, n).clip(0, 50),
            "ts": np.arange(n, dtype=np.float64),
        }
        from repro.session import connect

        session = connect(engine="memory", seed=0, delta=0.05)
        session.register(
            "events",
            IteratorSource(
                lambda: iter(
                    {k: v[s:s + 10_000] for k, v in data.items()}
                    for s in range(0, n, 10_000)
                ),
                schema=SCHEMA,
            ),
        )
        cq = (
            session.table("events").group_by("g").agg("AVG(v)")
            .deadline(1.0)
            .window(20_000)
            .subscribe(seed=0, emit_updates=False)
        )
        results = results_of(cq)
        assert [r.window.index for r in results] == [0, 1]
        assert all(r.result.deadline_exceeded for r in results)
        session.close()


class TestWarmStart:
    def _results(self, warm: bool):
        session = make_session()
        cq = windowed(session, size=200.0, every=100.0, on="ts").subscribe(
            seed=9, warm_start=warm, emit_updates=False
        )
        results = results_of(cq)
        session.close()
        return results

    def test_sliding_warm_start_is_bit_identical_to_cold(self):
        warm = self._results(True)
        cold = self._results(False)
        assert len(warm) == len(cold) and len(warm) >= 4
        for w, c in zip(warm, cold):
            assert w.window == c.window
            assert canon(w.result) == canon(c.result)
        # Windows past the first actually reused predecessor panes.
        assert any(r.warm_start for r in warm[1:])
        assert not any(r.warm_start for r in cold)

    def test_sliding_matches_one_shot_per_window(self):
        for wr in self._results(True):
            oneshot = oneshot_session(window_rows(wr.window.start, wr.window.end))
            expected = (
                oneshot.table("events").group_by("g").agg("AVG(v)")
                .run(seed=wr.seed)
            )
            assert canon(wr.result) == canon(expected)
            oneshot.close()


class TestRunnerDirect:
    def test_requires_windowed_spec(self, stream_session):
        spec = stream_session.table("events").group_by("g").agg("AVG(v)").spec()
        catalog = Catalog()
        with pytest.raises(ValueError, match="no window"):
            WindowRunner(spec, catalog)

    def test_unknown_table_rejected(self, stream_session):
        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="ts").spec()
        )
        with pytest.raises(KeyError, match="unknown table"):
            WindowRunner(spec, Catalog())

    def test_window_column_must_be_numeric(self, stream_session):
        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="g").spec()
        )
        with pytest.raises(ValueError, match="numeric"):
            WindowRunner(spec, stream_session.catalog)

    def test_stats_shape(self, stream_session):
        spec = (
            stream_session.table("events").group_by("g").agg("AVG(v)")
            .window(100.0, on="ts").spec()
        )
        runner = WindowRunner(spec, stream_session.catalog, seed=0)
        list(runner.run())
        stats = runner.stats()
        assert stats["rows_seen"] == N
        assert stats["windows_emitted"] == 6
        assert stats["late_dropped"] == 0
