"""Fixtures for the streaming test suite (helpers live in streamutil)."""

from __future__ import annotations

import pytest

from streamutil import make_session


@pytest.fixture
def stream_session():
    session = make_session()
    yield session
    session.close()
