"""The on-disk segment format: roundtrip, structure checks, atomicity."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import read_segment, verify_segment, write_segment


def _roundtrip(tmp_path, array, name="a.seg"):
    path = os.path.join(tmp_path, name)
    write_segment(path, array)
    return path, read_segment(path)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "array",
        [
            np.arange(100, dtype=np.uint64),
            np.linspace(-1.0, 1.0, 33),
            np.zeros((4, 7), dtype=np.int32),
            np.array([3], dtype=np.int8),
        ],
        ids=["uint64", "float64", "2d-int32", "single-int8"],
    )
    def test_bytes_survive(self, tmp_path, array):
        _, back = _roundtrip(tmp_path, array)
        assert back.dtype == array.dtype and back.shape == array.shape
        assert np.array_equal(back, array)

    def test_mapped_read_is_read_only(self, tmp_path):
        _, back = _roundtrip(tmp_path, np.arange(8.0))
        assert isinstance(back, np.memmap)
        with pytest.raises(ValueError):
            back[0] = 1.0

    def test_unmapped_read_matches_mapped(self, tmp_path):
        path, mapped = _roundtrip(tmp_path, np.arange(64, dtype=np.uint64))
        loaded = read_segment(path, mmap=False)
        assert np.array_equal(mapped, loaded)
        assert not loaded.flags.writeable

    def test_payload_is_aligned(self, tmp_path):
        path, _ = _roundtrip(tmp_path, np.arange(5.0))
        info = verify_segment(path)
        assert info.data_offset % 64 == 0

    def test_object_dtype_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="object-dtype"):
            write_segment(os.path.join(tmp_path, "o.seg"), np.array([object()]))


class TestStructureChecks:
    def test_corrupt_payload_byte_fails_verify(self, tmp_path):
        path, _ = _roundtrip(tmp_path, np.arange(100, dtype=np.uint64))
        with open(path, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-3, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0xFF]))
        read_segment(path)  # structural checks alone cannot see a bit flip
        with pytest.raises(StorageError, match="checksum mismatch"):
            verify_segment(path)

    def test_truncated_payload_fails_structurally(self, tmp_path):
        path, _ = _roundtrip(tmp_path, np.arange(100, dtype=np.uint64))
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 8)
        with pytest.raises(StorageError, match="truncated segment payload"):
            read_segment(path)

    def test_bad_magic(self, tmp_path):
        path, _ = _roundtrip(tmp_path, np.arange(4.0))
        with open(path, "r+b") as fh:
            fh.write(b"NOPE")
        with pytest.raises(StorageError, match="bad magic"):
            read_segment(path)

    def test_future_version_is_refused(self, tmp_path):
        path, _ = _roundtrip(tmp_path, np.arange(4.0))
        with open(path, "r+b") as fh:
            fh.seek(4)
            fh.write((99).to_bytes(2, "little"))
        with pytest.raises(StorageError, match="version 99"):
            read_segment(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_segment(os.path.join(tmp_path, "absent.seg"))


class TestAtomicity:
    def test_write_leaves_no_temp_on_success(self, tmp_path):
        path, _ = _roundtrip(tmp_path, np.arange(4.0))
        assert not os.path.exists(path + ".tmp")

    def test_rewrite_replaces_atomically(self, tmp_path):
        path = os.path.join(tmp_path, "a.seg")
        write_segment(path, np.arange(10.0))
        write_segment(path, np.arange(20, dtype=np.int64))
        back = read_segment(path)
        assert back.dtype == np.int64 and back.shape == (20,)
