"""Pack/unpack serializers and the FileArrayRef worker transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.population import MaterializedGroup, Population
from repro.engines.shm import (
    FileArrayRef,
    ShmRegistry,
    SharedArrayRef,
    build_shard_payloads,
    file_backed_ref,
)
from repro.needletail.engine import NeedletailEngine, base_bitvector
from repro.needletail.table import Column, Table
from repro.storage import (
    DurableCatalog,
    MappedNeedletailEngine,
    pack_index,
    pack_population,
    pack_table,
    unpack_index,
    unpack_population,
    unpack_table,
)


def _table(rows_per_group=200, groups=4, seed=3):
    rng = np.random.default_rng(seed)
    labels = np.repeat([f"g{i}" for i in range(groups)], rows_per_group)
    values = rng.normal(40, 10, rows_per_group * groups).clip(0, 100)
    return Table("t", [Column("g", labels, 8), Column("v", values, 8)])


class TestPackIndex:
    def test_roundtrip_is_bit_identical(self):
        engine = NeedletailEngine(_table(), "g", "v")
        meta, arrays = pack_index(engine)
        back = unpack_index(meta, arrays, group_by="g", value_column="v")
        assert isinstance(back, MappedNeedletailEngine)
        for a, b in zip(engine.population.groups, back.population.groups):
            assert a.name == b.name
            wa = np.asarray(base_bitvector(a._selector).words)
            wb = np.asarray(base_bitvector(b._selector).words)
            assert np.array_equal(wa, wb)
        assert back.population.c == engine.population.c
        assert back.row_bytes == engine.row_bytes

    def test_selects_identical(self):
        engine = NeedletailEngine(_table(), "g", "v")
        meta, arrays = pack_index(engine)
        back = unpack_index(meta, arrays, group_by="g", value_column="v")
        for a, b in zip(engine.population.groups, back.population.groups):
            ranks = np.arange(0, a.size, 7)
            assert np.array_equal(a.fetch_by_rank(ranks), b.fetch_by_rank(ranks))


class TestPackPopulation:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        pop = Population(
            groups=[MaterializedGroup(f"g{i}", rng.normal(i, 1, 100)) for i in range(3)],
            c=100.0,
            name="p",
        )
        meta, arrays = pack_population(pop)
        back = unpack_population(meta, arrays)
        assert [g.name for g in back.groups] == [g.name for g in pop.groups]
        for a, b in zip(pop.groups, back.groups):
            assert np.array_equal(np.asarray(a.values), np.asarray(b.values))


class TestPackTable:
    def test_roundtrip(self):
        table = _table()
        meta, arrays = pack_table(table)
        back = unpack_table(meta, arrays, "t")
        assert back.column_names == table.column_names
        for name in table.column_names:
            assert np.array_equal(back.column(name), table.column(name))

    def test_object_dtype_stays_memory_only(self):
        table = Table("t", [Column("o", np.array([object()] * 4), 8),
                            Column("v", np.arange(4.0), 8)])
        assert pack_table(table) is None


class TestFileBackedRefs:
    """Mapped (durable-store) buffers ship to workers as file windows."""

    @pytest.fixture
    def mapped_engine(self, tmp_path):
        cat = DurableCatalog(tmp_path / "store")
        cat.attach("t", {"g": np.repeat([f"g{i}" for i in range(4)], 200),
                         "v": np.tile(np.arange(200.0), 4)})
        built = cat.prime("t", "g", "v")
        assert "needletail" in built
        fresh = DurableCatalog(tmp_path / "store")
        engine = fresh.indexed_engine("t", "g", "v", group_spec=["g"],
                                      builder=lambda: None)
        assert isinstance(engine, MappedNeedletailEngine)
        return engine

    def test_ram_arrays_are_not_file_backed(self):
        assert file_backed_ref(np.arange(10.0)) is None

    def test_mapped_window_is_file_backed(self, mapped_engine):
        group = mapped_engine.population.groups[0]
        words = np.asarray(base_bitvector(group._selector).words)
        ref = file_backed_ref(words)
        assert isinstance(ref, FileArrayRef)
        assert np.array_equal(ref.map(), words)

    def test_payloads_ship_file_refs_without_shm(self, mapped_engine):
        registry = ShmRegistry()
        gids = [np.array([0, 1]), np.array([2, 3])]
        payloads, owned = build_shard_payloads(
            mapped_engine.population, gids, registry
        )
        assert owned == [] and registry.active_count() == 0
        for payload in payloads:
            assert isinstance(payload.bitmap_words, FileArrayRef)
            assert isinstance(payload.value_column, FileArrayRef)
            assert payload.segment_refs() == []  # nothing to refcount

    def test_worker_rebuild_from_files_is_bit_identical(self, mapped_engine):
        registry = ShmRegistry()
        gids = [np.arange(4)]
        (payload,), _ = build_shard_payloads(
            mapped_engine.population, gids, registry
        )
        rebuilt = payload.build_population(registry)
        for a, b in zip(mapped_engine.population.groups, rebuilt.groups):
            assert a.name == b.name and a.size == b.size
            ranks = np.arange(a.size)
            assert np.array_equal(a.fetch_by_rank(ranks), b.fetch_by_rank(ranks))

    def test_ram_population_still_uses_shared_memory(self):
        engine = NeedletailEngine(_table(), "g", "v")
        registry = ShmRegistry()
        (payload,), owned = build_shard_payloads(
            engine.population, [np.arange(4)], registry
        )
        try:
            assert isinstance(payload.bitmap_words, SharedArrayRef)
            assert isinstance(payload.value_column, SharedArrayRef)
            assert set(owned) == {r.name for r in payload.segment_refs()}
        finally:
            for name in owned:
                registry.release(name)
        assert registry.active_count() == 0
