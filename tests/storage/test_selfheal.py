"""Self-healing storage: quarantine-and-rebuild, write degradation, repair.

The PR-10 storage acceptance bar:

* a corrupt segment (bit flipped on disk, by hand or by the
  ``flip_segment_bit`` fault site) never fails a query: the build is
  quarantined, rebuilt from source, re-persisted, and the result - bit
  identical to the uncorrupted run - carries a ``resilience:`` caveat;
* after the heal, a fresh open maps the re-persisted build with zero
  rebuilds and zero quarantined segments served;
* an ENOSPC write failure trips the sticky store breaker: the catalog
  degrades to memory-only write-through and queries keep answering;
* ``Store.repair()`` does what the old error message told the human to do:
  quarantine corrupt builds + sweep orphans, in one pass.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.resilience.faults import Fault, FaultPlan, inject
from repro.storage import DurableCatalog, MappedNeedletailEngine, Store


def _dataset(rows_per_group=500, groups=4, seed=0):
    rng = np.random.default_rng(seed)
    means = np.linspace(10, 80, groups)
    return {
        "g": np.repeat([f"g{i}" for i in range(groups)], rows_per_group),
        "v": np.concatenate(
            [rng.normal(m, 6.0, rows_per_group).clip(0, 100) for m in means]
        ),
    }


def _sig(result):
    return (
        result.first.order(),
        result.total_samples,
        tuple(sorted((g.label, g.estimate, g.samples) for g in result.first)),
    )


def _run(session, seed=7):
    return session.table("t").group_by("g").agg(repro.avg("v")).run(seed=seed)


def _build_store(store):
    session = repro.connect(store=store, seed=1)
    session.attach("t", _dataset())
    result = _run(session)
    session.close()
    return result


def _flip_byte_of(store, kind):
    """Flip the last byte of one segment owned by a ``kind`` build."""
    with Store(store) as raw:
        row = raw._db.execute(
            "SELECT s.filename FROM segments s JOIN builds b ON s.build_id = b.id "
            "WHERE b.kind = ? ORDER BY s.id LIMIT 1",
            (kind,),
        ).fetchone()
        victim = os.path.join(raw.segments_dir, row["filename"])
    with open(victim, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_END)
        fh.write(bytes([byte[0] ^ 0x01]))
    return row["filename"]


class TestQuarantineAndRebuild:
    def test_corrupt_index_heals_transparently_with_a_caveat(self, tmp_path):
        store = tmp_path / "store"
        cold = _build_store(store)
        flipped = _flip_byte_of(store, "needletail")

        session = repro.connect(store=store, seed=1)
        healed = _run(session)
        assert _sig(healed) == _sig(cold), "healed result must be bit-identical"
        assert any(
            c.startswith("resilience:") and "quarantined" in c
            for c in healed.caveats
        ), healed.caveats
        # One heal, one caveat: the next result over the same store is clean.
        assert not any(c.startswith("resilience:") for c in _run(session).caveats)
        session.close()

        with Store(store) as raw:
            tombstones = raw.quarantined()
            assert flipped in {t["filename"] for t in tombstones}
            assert os.path.exists(os.path.join(raw.quarantine_dir, flipped))
            raw.verify()  # the re-persisted build is clean on disk

        # A fresh open serves the re-persisted build: mapped, no rebuild.
        reopened = DurableCatalog(store)
        sentinel = lambda: (_ for _ in ()).throw(AssertionError("index rebuilt"))
        engine = reopened.indexed_engine(
            "t", "g", "v", group_spec=["g"], builder=sentinel
        )
        assert isinstance(engine, MappedNeedletailEngine)
        assert reopened.drain_resilience_events() == []
        reopened.close()

    def test_flip_segment_bit_fault_site_drives_the_same_path(self, tmp_path):
        store = tmp_path / "store"
        cold = _build_store(store)
        # Read order on a fresh open: table columns (0, 1), then the first
        # query maps the needletail build (2, 3, 4) - flip its words array.
        plan = FaultPlan([Fault(kind="flip_segment_bit", at=2, times=1)])
        with inject(plan):
            session = repro.connect(store=store, seed=1)
            healed = _run(session)
            session.close()
        assert plan.fired() == [("flip_segment_bit", None, 2)]
        assert _sig(healed) == _sig(cold)
        assert any("quarantined" in c for c in healed.caveats), healed.caveats
        with Store(store) as raw:
            assert raw.quarantined(), "the flipped segment must be tombstoned"
            raw.verify()

    def test_missing_segment_file_heals_too(self, tmp_path):
        store = tmp_path / "store"
        cold = _build_store(store)
        with Store(store) as raw:
            row = raw._db.execute(
                "SELECT s.filename FROM segments s "
                "JOIN builds b ON s.build_id = b.id WHERE b.kind = 'needletail' "
                "ORDER BY s.id LIMIT 1"
            ).fetchone()
            os.unlink(os.path.join(raw.segments_dir, row["filename"]))
        session = repro.connect(store=store, seed=1)
        healed = _run(session)
        assert _sig(healed) == _sig(cold)
        assert any("quarantined" in c for c in healed.caveats)
        session.close()


class TestWriteDegradation:
    def test_enospc_trips_the_breaker_and_queries_continue(self, tmp_path):
        plan = FaultPlan([Fault(kind="enospc_segment_write", at=0, times=1)])
        cat = DurableCatalog(tmp_path / "store")
        with inject(plan):
            cat.attach("t", _dataset())  # first segment write hits ENOSPC
        assert plan.fired() == [("enospc_segment_write", None, 0)]
        assert cat.degraded, "one disk-full failure must open the breaker"

        session = repro.connect(catalog=cat, seed=1)
        result = _run(session)
        assert result.first.order()  # the query still answers
        assert any(
            c.startswith("resilience:") and "write-degraded" in c
            for c in result.caveats
        ), result.caveats
        # Memory-only write-through: nothing new lands on disk.
        assert cat.store.builds("t") == []
        assert cat.save_checkpoint("cp", kind="x", payload={}, state={}) is False
        session.close()

    def test_snapshot_shares_breaker_and_events(self, tmp_path):
        cat = DurableCatalog(tmp_path / "store")
        cat.attach("t", _dataset(rows_per_group=20, groups=2))
        snap = cat.snapshot()
        cat._breaker.trip("test")
        assert snap.degraded
        snap._note("storage: test event")
        assert cat.drain_resilience_events() == ["storage: test event"]
        cat.close()


class TestRepair:
    def test_repair_quarantines_and_sweeps_in_one_pass(self, tmp_path):
        store = tmp_path / "store"
        _build_store(store)
        flipped = _flip_byte_of(store, "needletail")
        with Store(store) as raw:
            with open(os.path.join(raw.segments_dir, "stray.seg.tmp"), "wb") as fh:
                fh.write(b"junk")
            report = raw.repair()
            assert report["quarantined_builds"] == 1
            assert flipped in report["quarantined_files"]
            assert report["removed_orphans"] == ["stray.seg.tmp"]
            raw.verify()  # what remains is clean
            # Idempotent: a second pass finds nothing to do.
            again = raw.repair()
            assert again["quarantined_builds"] == 0
            assert again["removed_orphans"] == []

    def test_repair_on_a_healthy_store_is_a_no_op(self, tmp_path):
        store = tmp_path / "store"
        _build_store(store)
        with Store(store) as raw:
            checked = raw.verify()
            report = raw.repair()
            assert report["checked"] == checked
            assert report["quarantined_builds"] == 0


class TestCheckpoints:
    def test_roundtrip_list_delete(self, tmp_path):
        with Store(tmp_path / "store") as store:
            store.save_checkpoint(
                "sub-1", kind="subscription",
                payload={"sql": "SELECT 1"}, state={"emissions": 0},
            )
            store.save_checkpoint(
                "sub-1", kind="subscription",
                payload={"sql": "SELECT 1"}, state={"emissions": 3},
            )
            payload, state = store.load_checkpoint("sub-1")
            assert payload == {"sql": "SELECT 1"}
            assert state == {"emissions": 3}
            assert [c["id"] for c in store.checkpoints("subscription")] == ["sub-1"]
            assert store.checkpoints("other") == []
            assert store.delete_checkpoint("sub-1") is True
            assert store.delete_checkpoint("sub-1") is False
            assert store.load_checkpoint("sub-1") is None
