"""The Store: bindings, build persistence, fingerprints, maintenance."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.resilience.faults import Fault, FaultPlan, inject
from repro.storage import STORE_FORMAT_VERSION, Store


@pytest.fixture
def store(tmp_path):
    with Store(tmp_path / "store") as s:
        yield s


def _bind(store, name="t", fingerprint="fp1"):
    store.bind_table(
        name,
        kind="memory",
        schema_json='{"columns": [["g", "string"], ["v", "numeric"]]}',
        row_count=10,
        source_json="{}",
        fingerprint=fingerprint,
    )


def _arrays():
    return {
        "words": np.arange(16, dtype=np.uint64),
        "values": np.linspace(0, 1, 10),
    }


class TestBindings:
    def test_bind_and_read_back(self, store):
        _bind(store)
        row = store.binding("t")
        assert row["kind"] == "memory" and row["fingerprint"] == "fp1"
        assert store.binding("absent") is None

    def test_rebind_replaces(self, store):
        _bind(store, fingerprint="fp1")
        _bind(store, fingerprint="fp2")
        assert store.binding("t")["fingerprint"] == "fp2"
        assert len(store.bindings()) == 1

    def test_unbind_drops_builds_and_files(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={"x": 1}, arrays=_arrays())
        assert len(os.listdir(store.segments_dir)) == 2
        store.unbind_table("t")
        assert store.binding("t") is None
        assert store.builds("t") == []
        assert os.listdir(store.segments_dir) == []


class TestBuilds:
    def test_save_load_roundtrip(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={"groups": [["a", 0, 16, 1000]]}, arrays=_arrays())
        meta, arrays = store.load_build("t", "needletail", "k1")
        assert meta["groups"] == [["a", 0, 16, 1000]]
        assert np.array_equal(arrays["words"], np.arange(16, dtype=np.uint64))
        assert isinstance(arrays["words"], np.memmap)

    def test_miss_on_unknown_key(self, store):
        _bind(store)
        assert store.load_build("t", "needletail", "k1") is None

    def test_fingerprint_drift_is_a_miss(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays=_arrays())
        assert store.load_build("t", "needletail", "k1", fingerprint="fp1") is not None
        assert store.load_build("t", "needletail", "k1", fingerprint="fp2") is None

    def test_replace_at_same_key_unlinks_old_files(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays=_arrays())
        old_files = set(os.listdir(store.segments_dir))
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays={"words": np.zeros(4, dtype=np.uint64)})
        now = set(os.listdir(store.segments_dir))
        assert now.isdisjoint(old_files) and len(now) == 1

    def test_drop_builds(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays=_arrays())
        store.save_build("t", "population", "k1", fingerprint="fp1",
                        meta={}, arrays={"values": np.arange(3.0)})
        assert store.drop_builds("t", "population") == 1
        assert [b["kind"] for b in store.builds("t")] == ["needletail"]
        assert store.drop_builds("t") == 1
        assert os.listdir(store.segments_dir) == []

    def test_swapped_segment_file_is_caught_against_catalog(self, store, tmp_path):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays={"words": np.arange(8, dtype=np.uint64)})
        from repro.storage import write_segment

        filename = os.listdir(store.segments_dir)[0]
        write_segment(os.path.join(store.segments_dir, filename), np.arange(3.0))
        with pytest.raises(StorageError, match="disagrees with the catalog"):
            store.load_build("t", "needletail", "k1")

    def test_injected_write_failure_leaves_no_partial_build(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={"old": True}, arrays=_arrays())
        plan = FaultPlan([Fault(kind="fail_segment_write", at=None, times=1)])
        with inject(plan):
            with pytest.raises(Exception):
                store.save_build("t", "needletail", "k2", fingerprint="fp1",
                                meta={"new": True}, arrays=_arrays())
        assert plan.fired()
        # the old build is intact, the interrupted one absent, no stray files
        meta, _ = store.load_build("t", "needletail", "k1")
        assert meta == {"old": True}
        assert store.load_build("t", "needletail", "k2") is None
        assert len(os.listdir(store.segments_dir)) == 2


class TestMaintenance:
    def test_ls_summarizes(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays=_arrays())
        (row,) = store.ls()
        assert row["name"] == "t" and row["builds"] == 1 and row["segments"] == 2
        assert row["bytes"] == 16 * 8 + 10 * 8

    def test_verify_ok_and_corrupt(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays=_arrays())
        assert store.verify() == 2
        victim = os.path.join(store.segments_dir, os.listdir(store.segments_dir)[0])
        with open(victim, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(StorageError, match="verification failed"):
            store.verify()

    def test_gc_sweeps_orphans_only(self, store):
        _bind(store)
        store.save_build("t", "needletail", "k1", fingerprint="fp1",
                        meta={}, arrays=_arrays())
        owned = set(os.listdir(store.segments_dir))
        for orphan in ("stray.seg", "half-written.seg.tmp"):
            with open(os.path.join(store.segments_dir, orphan), "wb") as fh:
                fh.write(b"junk")
        assert sorted(store.gc()) == ["half-written.seg.tmp", "stray.seg"]
        assert set(os.listdir(store.segments_dir)) == owned
        assert store.verify() == 2


class TestFormat:
    def test_reopen_same_version(self, tmp_path):
        with Store(tmp_path / "s") as s:
            _bind(s)
        with Store(tmp_path / "s") as s:
            assert s.binding("t") is not None

    def test_future_format_version_is_refused(self, tmp_path):
        with Store(tmp_path / "s") as s:
            s._db.execute(
                "UPDATE meta SET value = ? WHERE key = 'format_version'",
                (str(STORE_FORMAT_VERSION + 1),),
            )
            s._db.commit()
        with pytest.raises(StorageError, match="format version"):
            Store(tmp_path / "s")
