"""DurableCatalog: warm re-open, bit-identity, staleness, crash safety.

The PR-8 acceptance bar:

* queries over memory-mapped indexes are **bit-identical** to RAM-built
  ones, for every sampler kind, both executors, shards in {1, 4};
* a store built in one process re-opens in a *fresh* process in O(1) - no
  index rebuild (``BUILD_COUNTS`` is the oracle) - serving identical
  results;
* a rewritten source can never serve the old segment (fingerprint miss at
  lookup time AND on-disk deletion at invalidate/rebind time);
* a process killed -9 mid-build leaves the store openable with the partial
  build simply absent.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

import repro
from repro.engines.shm import REGISTRY
from repro.needletail.engine import BUILD_COUNTS
from repro.storage import DurableCatalog, MappedNeedletailEngine, Store


def _dataset(rows_per_group=2000, groups=8, seed=0):
    rng = np.random.default_rng(seed)
    means = np.linspace(10, 80, groups)
    return {
        "g": np.repeat([f"g{i}" for i in range(groups)], rows_per_group),
        "v": np.concatenate(
            [rng.normal(m, 6.0, rows_per_group).clip(0, 100) for m in means]
        ),
    }


def _sig(result):
    """Everything observable about a result, hashable for == comparison."""
    return (
        result.first.order(),
        result.total_samples,
        tuple(
            (key, agg.total_samples,
             tuple(sorted((g.label, g.estimate, g.samples) for g in agg)))
            for key, agg in sorted(result.aggregates.items())
        ),
    )


def _run(session, seed=7):
    return session.table("t").group_by("g").agg(repro.avg("v")).run(seed=seed)


def _subprocess_env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestWarmReopen:
    def test_reopen_is_o1_and_serves_mapped_engine(self, tmp_path):
        data = _dataset()
        store = tmp_path / "store"
        with repro.connect(store=store, seed=1) as _:
            pass  # connect(store=...)/close round trip alone must work
        session = repro.connect(store=store, seed=1)
        session.attach("t", data)
        cold = _run(session)
        session.close()

        counts = dict(BUILD_COUNTS)
        reopened = DurableCatalog(store)
        assert "t" in reopened.names
        sentinel = lambda: (_ for _ in ()).throw(AssertionError("index rebuilt"))
        engine = reopened.indexed_engine("t", "g", "v", group_spec=["g"], builder=sentinel)
        assert isinstance(engine, MappedNeedletailEngine)
        assert BUILD_COUNTS["needletail"] == counts["needletail"]
        assert BUILD_COUNTS["mapped"] == counts["mapped"] + 1

        warm_session = repro.connect(catalog=reopened, seed=1)
        assert _sig(_run(warm_session)) == _sig(cold)
        warm_session.close()

    def test_fresh_process_reopen_is_o1_with_identical_results(self, tmp_path):
        data = _dataset()
        store = tmp_path / "store"
        session = repro.connect(store=store, seed=1)
        session.attach("t", data)
        cold = _run(session)
        session.close()

        script = textwrap.dedent(
            """
            import json, sys
            import repro
            from repro.needletail.engine import BUILD_COUNTS

            session = repro.connect(store=sys.argv[1], seed=1)
            result = session.table("t").group_by("g").agg(repro.avg("v")).run(seed=7)
            print(json.dumps({
                "counts": dict(BUILD_COUNTS),
                "order": result.first.order(),
                "samples": result.total_samples,
                "estimates": sorted(
                    (g.label, g.estimate, g.samples) for g in result.first
                ),
            }))
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(store)],
            capture_output=True, text=True, env=_subprocess_env(), timeout=120,
        )
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout.strip().splitlines()[-1])
        assert report["counts"]["needletail"] == 0, "warm open rebuilt the index"
        assert report["counts"]["mapped"] >= 1
        assert report["order"] == cold.first.order()
        assert report["samples"] == cold.total_samples
        assert report["estimates"] == sorted(
            [g.label, g.estimate, g.samples] for g in cold.first
        )

    def test_memory_table_round_trips_by_content(self, tmp_path):
        data = _dataset(rows_per_group=50, groups=3)
        cat = DurableCatalog(tmp_path / "store")
        cat.attach("t", data)
        cat.close()
        back = DurableCatalog(tmp_path / "store")
        table = back.table("t")
        assert table.num_rows == 150
        assert np.array_equal(np.asarray(table.column("v")), data["v"])


class TestBitIdentityMatrix:
    """Warm (mapped) results == cold (RAM-built) results, across the matrix."""

    @pytest.fixture(scope="class")
    def warm_store(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("durable") / "store"
        session = repro.connect(store=store, seed=1)
        session.attach("t", _dataset())
        _run(session)  # persist the index + population builds
        session.close()
        return store

    @pytest.mark.parametrize("engine", ["needletail", "memory", "noindex"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_thread_executor(self, warm_store, engine, shards):
        self._assert_identical(warm_store, engine, "thread", shards)

    @pytest.mark.parametrize("engine", ["needletail", "memory"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_process_executor(self, warm_store, engine, shards):
        self._assert_identical(warm_store, engine, "process", shards)
        assert REGISTRY.active_count() == 0

    def _assert_identical(self, warm_store, engine, executor, shards):
        kwargs = dict(seed=1, engine=engine, executor=executor, shards=shards)
        cold_session = repro.connect(**kwargs)
        cold_session.attach("t", _dataset())
        cold = _run(cold_session)
        cold_session.close()

        warm_session = repro.connect(store=warm_store, **kwargs)
        warm = _run(warm_session)
        warm_session.close()
        assert _sig(warm) == _sig(cold)


class TestStaleness:
    def _write_csv(self, path, rows):
        with open(path, "w") as fh:
            fh.write("g,v\n")
            for g, v in rows:
                fh.write(f"{g},{v}\n")

    def test_rewritten_csv_never_serves_the_old_segment(self, tmp_path):
        csv = tmp_path / "t.csv"
        self._write_csv(csv, [("a", 1.0), ("a", 2.0), ("b", 8.0), ("b", 9.0)])
        session = repro.connect(store=tmp_path / "store", seed=1)
        session.attach("t", csv)
        first = _run(session)
        assert first.first.order() == ["a", "b"]  # ascending: a is smaller
        session.close()

        # rewrite in place: same path, opposite ordering
        time.sleep(0.01)  # ensure the mtime_ns moves even on coarse clocks
        self._write_csv(csv, [("a", 8.0), ("a", 9.0), ("b", 1.0), ("b", 2.0)])

        session = repro.connect(store=tmp_path / "store", seed=1)
        session.attach("t", csv)
        assert _run(session).first.order() == ["b", "a"]
        session.close()

    def test_rebinding_deletes_on_disk_builds(self, tmp_path):
        cat = DurableCatalog(tmp_path / "store")
        cat.attach("t", _dataset(rows_per_group=100, groups=3))
        cat.prime("t", "g", "v")
        assert len(cat.store.builds("t")) >= 2
        cat.attach("t", _dataset(rows_per_group=100, groups=3, seed=9))
        builds = cat.store.builds("t")
        # only the rebound memory table itself is stored - index builds gone
        assert [b["kind"] for b in builds] == ["table"]
        cat.close()

    def test_invalidate_evicts_disk_and_ram(self, tmp_path):
        cat = DurableCatalog(tmp_path / "store")
        cat.attach("t", _dataset(rows_per_group=100, groups=3))
        cat.prime("t", "g", "v")
        kinds = {b["kind"] for b in cat.store.builds("t")}
        assert {"needletail", "population"} <= kinds
        cat.invalidate("t")
        # the table build is re-persisted (the binding survives); caches gone
        assert {b["kind"] for b in cat.store.builds("t")} == {"table"}
        cat.close()


class TestCrashSafety:
    def test_sigkill_mid_build_leaves_store_openable(self, tmp_path):
        store = tmp_path / "store"
        script = textwrap.dedent(
            """
            import os, sys, time
            import numpy as np
            import repro.storage.segment as segment

            real_fsync = os.fsync
            def hang_fsync(fd):
                real_fsync(fd)
                sys.stdout.write("READY\\n")
                sys.stdout.flush()
                time.sleep(120)
            segment.os.fsync = hang_fsync

            from repro.storage import DurableCatalog
            cat = DurableCatalog(sys.argv[1])
            cat.attach("t", {"g": np.repeat(["a", "b"], 50),
                             "v": np.arange(100.0)})
            """
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_subprocess_env(),
        )
        try:
            line = child.stdout.readline()
            assert line.strip() == "READY", child.stderr.read()
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup on failure
                child.kill()
                child.wait()

        # mid-write kill: a .tmp orphan exists, no committed segment rows
        with Store(store) as raw:
            assert raw.builds("t") == []
            orphans = raw.gc()
            assert any(name.endswith(".tmp") for name in orphans)
            assert raw.verify() == 0

        # and the durable catalog opens; the half-built table is absent
        cat = DurableCatalog(store)
        assert "t" not in cat.names
        cat.close()

    def test_injected_write_fault_during_attach(self, tmp_path):
        from repro.errors import TransientError
        from repro.resilience.faults import Fault, FaultPlan, inject

        cat = DurableCatalog(tmp_path / "store")
        plan = FaultPlan([Fault(kind="fail_segment_write", at=0, times=1)])
        with inject(plan):
            with pytest.raises(TransientError, match="injected fault"):
                cat.attach("t", _dataset(rows_per_group=20, groups=2))
        assert plan.fired() == [("fail_segment_write", None, 0)]
        assert cat.store.builds("t") == []
        cat.close()

        # the store re-opens cleanly and the same attach now succeeds
        cat = DurableCatalog(tmp_path / "store")
        cat.attach("t", _dataset(rows_per_group=20, groups=2))
        assert [b["kind"] for b in cat.store.builds("t")] == ["table"]
        cat.close()
