"""Validity and invariants of the hosted CI workflow.

Acceptance bar for the CI gate: ``.github/workflows/ci.yml`` yaml-parses,
covers the 3.10/3.11/3.12 matrix with pip caching, and every run step
invokes only the repo's own CI scripts (``scripts/ci.sh``, the bench smoke,
the regression guard) plus environment setup - so a green local
``scripts/ci.sh`` run means a green hosted run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml", reason="PyYAML validates the workflow")

WORKFLOW = Path(__file__).resolve().parents[1] / ".github" / "workflows" / "ci.yml"

#: Run-step commands the workflow is allowed to use (prefix match, per line).
ALLOWED_RUN_PREFIXES = (
    "python -m pip install",  # environment setup
    "scripts/ci.sh",  # the local CI gate
    "python scripts/bench_export.py",  # bench smoke
    "python scripts/check_bench.py",  # bench regression guard
    "python scripts/serve_smoke.py",  # query-service boot/stream/cancel smoke
    "python scripts/storage_smoke.py",  # durable-store restart + warm-open gate
    "python scripts/streaming_smoke.py",  # continuous-query SSE + cancel smoke
)


@pytest.fixture(scope="module")
def workflow() -> dict:
    assert WORKFLOW.exists(), f"missing workflow file {WORKFLOW}"
    data = yaml.safe_load(WORKFLOW.read_text())
    assert isinstance(data, dict)
    return data


def _steps(workflow: dict):
    for job_name, job in workflow["jobs"].items():
        for step in job.get("steps", []):
            yield job_name, step


def test_workflow_parses_and_has_jobs(workflow):
    assert workflow.get("name") == "CI"
    assert set(workflow["jobs"]) == {
        "tests",
        "bench-smoke",
        "procpool",
        "chaos",
        "serve-smoke",
        "storage",
        "streaming",
    }
    # "on" parses as the YAML boolean True when unquoted - accept either key.
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers and "pull_request" in triggers


def test_matrix_covers_three_python_versions(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
    versions = matrix["python-version"]
    assert versions == ["3.10", "3.11", "3.12"]
    # Quoting matters: unquoted 3.10 would YAML-parse as the float 3.1.
    assert all(isinstance(v, str) for v in versions)


def test_one_matrix_leg_requires_pyarrow(workflow):
    """Exactly one extra leg installs the arrow extra and demands pyarrow.

    The base matrix must stay pyarrow-free (the Parquet tests skip there);
    the include leg flips REPRO_REQUIRE_PYARROW so tests/catalog/test_parquet.py
    *fails* instead of skipping if the extra did not install.
    """
    job = workflow["jobs"]["tests"]
    matrix = job["strategy"]["matrix"]
    assert matrix["extras"] == ["dev"], "base matrix legs must not pull pyarrow"
    arrow_legs = [
        inc for inc in matrix.get("include", []) if "arrow" in inc.get("extras", "")
    ]
    assert len(arrow_legs) == 1, "want exactly one pyarrow matrix leg"
    # The install step derives from matrix.extras, so the arrow leg installs it.
    install = " ".join(step.get("run", "") for step in job["steps"])
    assert "matrix.extras" in install
    # The flag is wired through the job env from the same matrix variable.
    assert "REPRO_REQUIRE_PYARROW" in job.get("env", {})
    assert "arrow" in str(job["env"]["REPRO_REQUIRE_PYARROW"])


def test_setup_python_steps_cache_pip(workflow):
    setup_steps = [
        step
        for _, step in _steps(workflow)
        if str(step.get("uses", "")).startswith("actions/setup-python")
    ]
    assert setup_steps, "no setup-python steps found"
    for step in setup_steps:
        assert step["with"]["cache"] == "pip"


def test_run_steps_only_invoke_ci_scripts(workflow):
    """Hosted CI must not grow bespoke inline logic local runs would miss."""
    run_steps = [(j, step["run"]) for j, step in _steps(workflow) if "run" in step]
    assert run_steps, "no run steps found"
    for job_name, command in run_steps:
        for line in filter(None, (ln.strip() for ln in command.splitlines())):
            assert line.startswith(ALLOWED_RUN_PREFIXES), (
                f"job {job_name!r} runs {line!r}, which is not one of the "
                f"repo CI scripts {ALLOWED_RUN_PREFIXES}"
            )


def test_matrix_job_runs_the_local_ci_gate(workflow):
    commands = [step["run"] for _, step in _steps(workflow) if "run" in step]
    assert any(c.strip().startswith("scripts/ci.sh") for c in commands)


def test_bench_smoke_job_runs_smoke_and_guard(workflow):
    job = workflow["jobs"]["bench-smoke"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "bench_export.py --smoke" in commands
    assert "check_bench.py" in commands
    # The smoke job runs tier-1 with the heavy benches explicitly off.
    assert job["env"]["REPRO_RUN_BENCH"] == "0"


def test_procpool_job_runs_lifecycle_tests_and_smoke_bench(workflow):
    """The 2-vCPU leg must exercise the process-executor suites (incl. the
    kill-the-worker cleanup test) and the proc-pool smoke bench - still
    through the repo's own CI scripts only."""
    job = workflow["jobs"]["procpool"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "tests/engines/test_procpool.py" in commands
    assert "tests/engines/test_sharded.py" in commands
    assert "bench_export.py --smoke" in commands
    for step in job["steps"]:
        line = step.get("run", "").strip()
        if line and "test_procpool" in line:
            assert line.startswith("scripts/ci.sh")


def test_serve_smoke_job_boots_the_server_through_the_script(workflow):
    """The serving leg runs the serve test suites through the repo CI gate,
    then boots a real server via scripts/serve_smoke.py - canned queries,
    an SSE stream, a cancel, and the shm-leak oracle on shutdown."""
    job = workflow["jobs"]["serve-smoke"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "tests/serve/" in commands
    assert "tests/session/test_wire_roundtrip.py" in commands
    assert "python scripts/serve_smoke.py" in commands
    for step in job["steps"]:
        line = step.get("run", "").strip()
        if line and "tests/serve" in line:
            assert line.startswith("scripts/ci.sh")


def test_storage_job_builds_restarts_and_gates_warm_open(workflow):
    """The durable-storage leg runs the segment/store/catalog suites through
    the repo CI gate, then scripts/storage_smoke.py: build a store, re-open
    it in a fresh process, and gate warm-open >= 10x faster than the cold
    build with zero index rebuilds and identical results."""
    job = workflow["jobs"]["storage"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "tests/storage/" in commands
    assert "python scripts/storage_smoke.py" in commands
    for step in job["steps"]:
        line = step.get("run", "").strip()
        if line and "tests/storage" in line:
            assert line.startswith("scripts/ci.sh")


def test_streaming_job_runs_window_suites_and_sse_smoke(workflow):
    """The streaming leg runs the continuous-query suites (window geometry,
    bit-identity vs one-shot, lateness, the /subscribe surface) through the
    repo CI gate, then scripts/streaming_smoke.py: a live SSE subscription
    with monotone window ids that survives a late chunk, a DELETE-cancel,
    and the shm-leak oracle on shutdown."""
    job = workflow["jobs"]["streaming"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "tests/streaming/" in commands
    assert "tests/serve/test_subscribe.py" in commands
    assert "python scripts/streaming_smoke.py" in commands
    for step in job["steps"]:
        line = step.get("run", "").strip()
        if line and "tests/streaming" in line:
            assert line.startswith("scripts/ci.sh")


def test_chaos_job_covers_the_storage_fault_site(workflow):
    """fail_segment_write (mid-save atomicity) must run under the seeded
    chaos leg, not only in the storage leg's deterministic tests."""
    job = workflow["jobs"]["chaos"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "tests/storage/" in commands


def test_chaos_job_runs_the_resilience_suite_with_a_seed(workflow):
    """The fault-injection leg runs the resilience suite through the repo's
    own CI gate, with REPRO_FAULT_PLAN set to a *bare integer* - the seed
    the chaos tests derive their fault coordinates from, never an active
    JSON plan (which would inject faults into unrelated tests)."""
    job = workflow["jobs"]["chaos"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "tests/resilience/" in commands
    seed = str(job["env"]["REPRO_FAULT_PLAN"])
    assert seed.isdigit(), "REPRO_FAULT_PLAN in CI must be a bare seed integer"
    for step in job["steps"]:
        line = step.get("run", "").strip()
        if line and "tests/resilience" in line:
            assert line.startswith("scripts/ci.sh")
