"""DataSource contract: schemas, scans, pruning, pushdown, laziness."""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro.catalog import (
    IteratorSource,
    Schema,
    SyntheticSource,
    TableSource,
)
from repro.catalog.schema import ColumnSchema
from repro.needletail.table import Table
from repro.query.parser import parse_predicate


@pytest.fixture()
def data() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    n = 1000
    return {
        "g": rng.choice(["a", "b", "c"], size=n),
        "y": rng.uniform(0, 100, size=n),
        "year": rng.integers(2000, 2010, size=n).astype(np.float64),
    }


class TestSchema:
    def test_from_arrays_kinds(self, data):
        schema = Schema.from_arrays(data)
        assert schema.names == ["g", "y", "year"]
        assert not schema.is_numeric("g")
        assert schema.is_numeric("y") and schema.is_numeric("year")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([ColumnSchema("x", "numeric"), ColumnSchema("x", "string")])

    def test_unknown_column(self, data):
        with pytest.raises(KeyError, match="no such column"):
            Schema.from_arrays(data).column("bogus")

    def test_predicate_type_check(self, data):
        schema = Schema.from_arrays(data)
        schema.check_predicate(parse_predicate("year >= 2005"), "t")
        schema.check_predicate(parse_predicate("g = 'a' OR y < 3"), "t")
        with pytest.raises(TypeError, match="string literal"):
            schema.check_predicate(parse_predicate("year >= 'old'"), "t")
        with pytest.raises(TypeError, match="string literal"):
            schema.check_predicate(parse_predicate("y IN ('a', 'b')"), "t")
        with pytest.raises(KeyError, match="unknown"):
            schema.check_predicate(parse_predicate("bogus = 1"), "t")


class TestTableSource:
    def test_scan_whole_table_single_chunk(self, data):
        source = TableSource(data, name="t")
        chunks = list(source.scan())
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0]["y"], data["y"])

    def test_scan_prunes_columns(self, data):
        chunks = list(TableSource(data, name="t").scan(columns=("g",)))
        assert set(chunks[0]) == {"g"}

    def test_scan_unknown_column(self, data):
        with pytest.raises(KeyError):
            list(TableSource(data, name="t").scan(columns=("bogus",)))

    def test_chunked_scan_roundtrips(self, data):
        source = TableSource(data, name="t", chunk_rows=137)
        chunks = list(source.scan(columns=("y",)))
        assert len(chunks) == int(np.ceil(1000 / 137))
        np.testing.assert_array_equal(
            np.concatenate([c["y"] for c in chunks]), data["y"]
        )

    def test_predicate_pushdown_masks_chunks(self, data):
        pred = parse_predicate("year >= 2005")
        source = TableSource(data, name="t", chunk_rows=100)
        got = np.concatenate([c["y"] for c in source.scan(("y",), pred)])
        np.testing.assert_array_equal(got, data["y"][data["year"] >= 2005])

    def test_predicate_column_not_in_projection(self, data):
        # "year" is only in the WHERE clause; it must be read but not returned.
        pred = parse_predicate("year < 2003")
        chunks = list(TableSource(data, name="t").scan(("g", "y"), pred))
        assert set(chunks[0]) == {"g", "y"}

    def test_row_count_hint(self, data):
        assert TableSource(data, name="t").row_count_hint() == 1000

    def test_wrapped_table_is_shared(self, data):
        table = Table.from_dict("t", data)
        assert TableSource(table).table is table
        assert TableSource(table).to_table("t") is table


class _TrackedChunk(dict):
    """Weakref-able chunk dict, so tests can watch chunk lifetimes."""


class TestIteratorSource:
    def _factory(self, refs, stale, chunks=5, rows=50):
        def produce():
            rng = np.random.default_rng(7)
            for i in range(chunks):
                chunk = _TrackedChunk(
                    g=rng.choice(["a", "b"], size=rows),
                    y=rng.uniform(0, 100, size=rows),
                )
                # With the new chunk in hand, every previously produced one
                # must already be dead: consumers may not accumulate chunks.
                alive = sum(1 for r in refs if r() is not None)
                stale[0] = max(stale[0], alive)
                refs.append(weakref.ref(chunk))
                yield chunk

        return produce

    def test_schema_inferred_from_first_chunk(self):
        source = IteratorSource(self._factory([], [0]))
        assert source.schema().names == ["g", "y"]
        assert source.schema().is_numeric("y")

    def test_scan_is_repeatable(self):
        source = IteratorSource(self._factory([], [0]))
        first = np.concatenate([c["y"] for c in source.scan(("y",))])
        second = np.concatenate([c["y"] for c in source.scan(("y",))])
        np.testing.assert_array_equal(first, second)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="factory"):
            IteratorSource([{"g": np.array(["a"])}])

    def test_chunks_coerced_to_schema_kind(self):
        """A string-typed chunk in a numeric column must filter numerically.

        Regression: without per-chunk coercion, WHERE 'v > 5' compared the
        second chunk lexicographically ('10' > '5' is False) and silently
        dropped qualifying rows.
        """
        def factory():
            yield {"g": np.array(["a"] * 3), "v": np.array([1.0, 6.0, 10.0])}
            yield {"g": np.array(["a"] * 3), "v": np.array(["1", "6", "10"])}

        source = IteratorSource(factory)
        got = np.concatenate(
            [c["v"] for c in source.scan(("v",), parse_predicate("v > 5"))]
        )
        np.testing.assert_array_equal(got, [6.0, 10.0, 6.0, 10.0])

    def test_unparseable_numeric_chunk_raises(self):
        def factory():
            yield {"v": np.array([1.0, 2.0])}
            yield {"v": np.array(["oops"])}

        source = IteratorSource(factory)
        with pytest.raises(ValueError, match="unparseable"):
            list(source.scan(("v",)))

    def test_shared_iterator_factory_rejected(self):
        """Regression: `lambda: gen` passes the callable guard but would make
        the second scan silently resume a half-consumed stream - groups in
        already-consumed chunks would vanish from results with no error."""

        def gen():
            yield {"g": np.array(["a"] * 10), "y": np.arange(10.0)}
            yield {"g": np.array(["b"] * 10), "y": np.arange(10.0)}

        shared = gen()
        source = IteratorSource(lambda: shared)
        source.schema()  # consumes chunk 1 of the shared iterator
        with pytest.raises(TypeError, match="same iterator"):
            list(source.scan())

    def test_chunk_missing_column(self):
        # declared schema promises "y", but the stream's chunks lack it
        schema = Schema(
            [ColumnSchema("g", "string"), ColumnSchema("y", "numeric")]
        )
        source = IteratorSource(
            lambda: iter([_TrackedChunk(g=np.array(["a"]))]), schema=schema
        )
        with pytest.raises(KeyError, match="missing columns"):
            list(source.scan(("g", "y")))

    def test_only_one_chunk_alive_during_filtered_scan(self):
        """The laziness contract: scans never accumulate raw chunks.

        The factory records, at each chunk it is asked to produce, how many
        previously produced chunks are still alive (weakrefs).  Consuming a
        filtered scan with the streaming pattern must keep that at one.
        """
        refs: list = []
        stale = [0]
        source = IteratorSource(self._factory(refs, stale, chunks=8))
        pred = parse_predicate("y >= 50")
        total = 0
        it = source.scan(("g", "y"), pred)
        while True:
            try:
                chunk = next(it)
            except StopIteration:
                break
            total += len(chunk["y"])
            del chunk
        assert total > 0
        assert len(refs) > 8  # schema-inference scan + the filtered scan
        assert stale[0] == 0, f"{stale[0]} previous raw chunks still alive"


class TestSyntheticSource:
    def test_virtual_population_flows_through(self):
        source = SyntheticSource("mixture", k=4, total_size=100_000, seed=1)
        pop = source.population("g", "value", None, None)
        assert pop.k == 4 and pop.total_size == 100_000
        assert source.row_count_hint() == 100_000
        assert not source.materialized

    def test_row_count_hint_does_not_build(self):
        """The hint contract: metadata questions never generate the data."""
        calls = [0]

        def factory(total_size=0):
            calls[0] += 1
            from repro.data.synthetic import make_mixture_dataset

            return make_mixture_dataset(k=2, total_size=total_size, seed=0)

        source = SyntheticSource(factory, total_size=5_000)
        assert source.row_count_hint() == 5_000
        assert calls[0] == 0  # describe/tables stay metadata-only
        assert source.build().total_size == 5_000
        assert calls[0] == 1

    def test_population_build_is_cached(self):
        source = SyntheticSource("mixture", k=3, total_size=1000, seed=1)
        assert source.build() is source.build()

    def test_schema_names(self):
        source = SyntheticSource("bernoulli", group_column="grp", value_column="v")
        assert source.schema().names == ["grp", "v"]

    def test_virtual_scan_rejected(self):
        source = SyntheticSource("mixture", k=2, total_size=1000, seed=0)
        with pytest.raises(ValueError, match="virtual"):
            list(source.scan())
        with pytest.raises(ValueError, match="virtual"):
            source.to_table("t")

    def test_virtual_where_rejected(self):
        source = SyntheticSource("mixture", k=2, total_size=1000, seed=0)
        with pytest.raises(ValueError, match="WHERE"):
            source.population("g", "value", parse_predicate("value > 1"), None)

    def test_materialized_scan(self):
        source = SyntheticSource(
            "truncnorm", k=3, total_size=600, seed=2, materialize=True
        )
        assert source.materialized
        chunks = list(source.scan())
        assert sum(len(c["value"]) for c in chunks) == 600
        assert set(np.concatenate([c["g"] for c in chunks])) == {"g0", "g1", "g2"}

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown synthetic family"):
            SyntheticSource("bogus")

    def test_column_mismatch(self):
        source = SyntheticSource("mixture", k=2, total_size=1000, seed=0)
        with pytest.raises(KeyError, match="exposes columns"):
            source.population("other", "value", None, None)

    def test_value_bound_override(self):
        source = SyntheticSource("mixture", k=2, total_size=1000, seed=0)
        pop = source.population("g", "value", None, 250.0)
        assert pop.c == 250.0
