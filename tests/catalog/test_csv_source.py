"""CSV source edge cases: quoting, chunking, encoding, typing, laziness."""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro.catalog import CSVSource
from repro.query.parser import parse_predicate
from repro.session import connect, load_csv_table


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestDuplicateHeader:
    def test_duplicate_header_rejected(self, tmp_path):
        """Regression: the legacy loader silently let the last duplicate win."""
        path = write(tmp_path, "city,delay,city\nNYC,10,NYC2\nLA,30,LA2\n")
        with pytest.raises(ValueError, match="duplicate CSV header column"):
            CSVSource(path).schema()

    def test_duplicate_header_rejected_via_load_csv_table(self, tmp_path):
        path = write(tmp_path, "a,a\n1,2\n")
        with pytest.raises(ValueError, match="duplicate"):
            load_csv_table(path)

    def test_duplicate_header_rejected_via_register_csv(self, tmp_path):
        path = write(tmp_path, "x,y,x\n1,2,3\n")
        with pytest.raises(ValueError, match="duplicate"):
            connect().register_csv("t", path)


class TestQuoting:
    def test_quoted_field_containing_delimiter(self, tmp_path):
        path = write(
            tmp_path,
            'city,delay\n"New York, NY",10\n"New York, NY",12\n"LA",30\n',
        )
        source = CSVSource(path, group_columns=["city"])
        chunks = list(source.scan())
        cities = np.concatenate([c["city"] for c in chunks])
        assert list(cities) == ["New York, NY", "New York, NY", "LA"]
        # and the width check was not confused by the embedded comma
        assert source.row_count_hint() == 3

    def test_quoted_fields_queryable(self, tmp_path):
        path = write(
            tmp_path,
            'city,delay\n"New York, NY",10\n"New York, NY",14\n"LA",30\n"LA",34\n',
        )
        session = connect(engine="memory").register_csv(
            "trips", path, group_columns=["city"]
        )
        res = session.table("trips").group_by("city").agg("AVG(delay)").run(seed=0)
        assert res.estimates()["New York, NY"] == pytest.approx(12.0, abs=3.0)


class TestChunking:
    def test_chunk_boundary_exact_multiple(self, tmp_path):
        rows = "".join(f"g{i % 2},{i}.0\n" for i in range(8))
        path = write(tmp_path, "g,y\n" + rows)
        source = CSVSource(path, chunk_rows=4)  # 8 rows = exactly 2 chunks
        chunks = list(source.scan())
        assert [len(c["y"]) for c in chunks] == [4, 4]
        np.testing.assert_array_equal(
            np.concatenate([c["y"] for c in chunks]), np.arange(8.0)
        )

    def test_empty_chunks_after_pushdown_are_harmless(self, tmp_path):
        # Rows 0-3 fail the predicate, so the whole first chunk filters away.
        rows = "".join(f"g,{i}.0\n" for i in range(8))
        path = write(tmp_path, "g,y\n" + rows)
        source = CSVSource(path, chunk_rows=4)
        chunks = list(source.scan(("y",), parse_predicate("y >= 4")))
        assert [len(c["y"]) for c in chunks] == [0, 4]
        np.testing.assert_array_equal(chunks[0]["y"], np.empty(0))

    def test_chunked_equals_eager_load(self, tmp_path):
        rng = np.random.default_rng(5)
        lines = [f"g{int(rng.integers(3))},{v:.6f}" for v in rng.uniform(0, 99, 500)]
        path = write(tmp_path, "g,y\n" + "\n".join(lines) + "\n")
        eager = load_csv_table(path)
        chunked = CSVSource(path, chunk_rows=7).to_table("data")
        assert chunked.column_names == eager.column_names
        for col in eager.column_names:
            np.testing.assert_array_equal(chunked.column(col), eager.column(col))
            assert chunked.column(col).dtype == eager.column(col).dtype

    def test_one_raw_chunk_alive_at_a_time(self, tmp_path):
        """Laziness: a chunked CSV scan never buffers more than one chunk."""
        rows = "".join(f"g{i % 3},{i}.5\n" for i in range(100))
        path = write(tmp_path, "g,y\n" + rows)

        refs: list = []
        stale = [0]

        class TrackedRows(list):
            """Weakref-able stand-in for one chunk's raw row buffer."""

        class InstrumentedCSV(CSVSource):
            def _raw_chunks(self):
                it = super()._raw_chunks()
                while True:
                    try:
                        header, rows = next(it)
                    except StopIteration:
                        return
                    tracked = TrackedRows(rows)
                    del rows
                    # Every previously handed-out chunk must be dead by the
                    # time the next one exists: consumers may not accumulate.
                    stale[0] = max(
                        stale[0], sum(1 for r in refs if r() is not None)
                    )
                    refs.append(weakref.ref(tracked))
                    yield header, tracked
                    del tracked

        source = InstrumentedCSV(path, chunk_rows=10)
        total = sum(len(c["y"]) for c in source.scan(("y",)))
        assert total == 100
        assert len(refs) >= 10 * 2 - 2  # schema pass + scan pass both chunked
        assert stale[0] == 0, f"{stale[0]} previous raw chunks still alive"


class TestEncodingAndTyping:
    def test_non_utf8_clear_error(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes("city,delay\nM\xfcnchen,10\n".encode("latin-1"))
        with pytest.raises(ValueError, match="not valid UTF-8"):
            CSVSource(path).schema()

    def test_non_utf8_error_names_the_file(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes(b"a,b\n\xff\xfe,1\n")
        with pytest.raises(ValueError, match="latin.csv"):
            list(CSVSource(path).scan())

    def test_type_decided_over_whole_file(self, tmp_path):
        # first chunk parses as numbers; a later chunk proves it's a string
        rows = "".join(f"g,{i}\n" for i in range(20)) + "g,oops\n"
        path = write(tmp_path, "g,v\n" + rows)
        source = CSVSource(path, chunk_rows=4)
        assert not source.schema().is_numeric("v")
        got = np.concatenate([c["v"] for c in source.scan(("v",))])
        assert got.dtype.kind in ("U", "S") and got[-1] == "oops"

    def test_value_column_must_parse_everywhere(self, tmp_path):
        rows = "".join(f"g,{i}\n" for i in range(20)) + "g,oops\n"
        path = write(tmp_path, "g,v\n" + rows)
        with pytest.raises(ValueError, match="non-numeric"):
            CSVSource(path, value_columns=["v"], chunk_rows=4).schema()

    def test_ragged_rows_counted(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3\n4,5,6\n")
        with pytest.raises(ValueError, match=r"2 row\(s\)"):
            CSVSource(path).schema()

    def test_header_only(self, tmp_path):
        path = write(tmp_path, "a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            CSVSource(path).schema()

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        with pytest.raises(ValueError, match="no header"):
            CSVSource(path).schema()

    def test_group_value_overlap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="both group and value"):
            CSVSource("x.csv", group_columns=["a"], value_columns=["a"])

    def test_unknown_pinned_column(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n")
        with pytest.raises(KeyError, match="no such CSV columns"):
            CSVSource(path, group_columns=["zz"]).schema()
