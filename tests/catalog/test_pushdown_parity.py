"""Predicate pushdown parity: scan-level filtering == legacy post-filter.

The acceptance bar for the catalog redesign: for every supported WHERE
operator, a query answered via source-level ``scan(predicate=...)`` (chunked,
filtered before anything is materialized) returns bit-identical ``Result``s -
estimates, ordering, accounting - to the legacy path, which materialized the
full relation and masked it afterwards.  The legacy reference here is
constructed explicitly: pre-filter the full arrays with the same mask
semantics and run the identical query with no WHERE clause.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import CSVSource, IteratorSource, TableSource
from repro.query.predicates import _OP_FUNCS, predicate_mask
from repro.needletail.table import Table
from repro.query.parser import parse_predicate
from repro.session import avg, connect

COMPARISON_OPS = sorted(_OP_FUNCS)  # =, !=, <, <=, <>, >, >=


@pytest.fixture(scope="module")
def data() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(42)
    n = 6000
    g = rng.choice(["a", "b", "c", "d"], size=n)
    base = {"a": 15.0, "b": 40.0, "c": 65.0, "d": 88.0}
    y = np.clip(np.array([base[x] for x in g]) + rng.normal(0, 6, n), 0, 100)
    return {
        "g": g,
        "y": y,
        "year": rng.integers(2000, 2010, n).astype(np.float64),
    }


def run_pushdown(data, source, where: str, **connect_kwargs):
    """The new path: WHERE lowered into the source scan."""
    session = connect(engine="memory", **connect_kwargs).register_source("t", source)
    return (
        session.table("t").where(where).group_by("g").agg(avg("y")).run(seed=9)
    )


def run_legacy_postfilter(data, where: str, **connect_kwargs):
    """The legacy reference: materialize fully, mask, then query unfiltered."""
    table = Table.from_dict("t", dict(data))
    mask = predicate_mask(parse_predicate(where), table)
    filtered = table.filter(mask)
    session = connect(engine="memory", **connect_kwargs).register("t", filtered)
    return session.table("t").group_by("g").agg(avg("y")).run(seed=9)


def assert_bit_identical(new, ref):
    assert new.labels == ref.labels
    a, b = new.first.raw, ref.first.raw
    np.testing.assert_array_equal(a.estimates, b.estimates)
    np.testing.assert_array_equal(a.samples_per_group, b.samples_per_group)
    assert list(a.inactive_order) == list(b.inactive_order)
    assert a.rounds == b.rounds
    for ga, gb in zip(a.groups, b.groups):
        assert ga.name == gb.name
        assert ga.estimate == gb.estimate
        assert ga.half_width == gb.half_width
        assert ga.samples == gb.samples
        assert ga.exhausted == gb.exhausted
    assert new.first.order() == ref.first.order()
    assert new.total_samples == ref.total_samples
    assert new.io_seconds == ref.io_seconds
    assert new.cpu_seconds == ref.cpu_seconds


class TestComparisonOperators:
    @pytest.mark.parametrize("op", COMPARISON_OPS)
    def test_chunked_table_source(self, data, op):
        where = f"year {op} 2004"
        new = run_pushdown(data, TableSource(data, name="t", chunk_rows=577), where)
        ref = run_legacy_postfilter(data, where)
        assert_bit_identical(new, ref)

    @pytest.mark.parametrize("op", ["<", ">=", "="])
    def test_chunked_csv_source(self, data, op, tmp_path):
        lines = [
            f"{g},{float(y)!r},{int(year)}"
            for g, y, year in zip(data["g"], data["y"], data["year"])
        ]
        path = tmp_path / "t.csv"
        path.write_text("g,y,year\n" + "\n".join(lines) + "\n")
        csv_table = CSVSource(path).to_table("t")

        where = f"year {op} 2004"
        new = run_pushdown(
            data, CSVSource(path, chunk_rows=391), where
        )
        # reference filters the *CSV-parsed* arrays (identical float parse)
        ref = run_legacy_postfilter(
            {c: csv_table.column(c) for c in csv_table.column_names}, where
        )
        assert_bit_identical(new, ref)

    @pytest.mark.parametrize("op", ["<=", "!="])
    def test_iterator_source(self, data, op):
        def factory():
            for lo in range(0, 6000, 811):
                yield {k: v[lo : lo + 811] for k, v in data.items()}

        where = f"year {op} 2006"
        new = run_pushdown(data, IteratorSource(factory), where)
        ref = run_legacy_postfilter(data, where)
        assert_bit_identical(new, ref)


class TestCompoundPredicates:
    @pytest.mark.parametrize(
        "where",
        [
            "year BETWEEN 2002 AND 2007",
            "g IN ('a', 'c', 'd')",
            "NOT year < 2004",
            "year >= 2003 AND y <= 95",
            "g = 'a' OR year > 2006",
        ],
    )
    def test_compound(self, data, where):
        new = run_pushdown(data, TableSource(data, name="t", chunk_rows=919), where)
        ref = run_legacy_postfilter(data, where)
        assert_bit_identical(new, ref)


class TestOtherPaths:
    def test_sharded_memory_engine_parity(self, data):
        where = "year >= 2004"
        new = run_pushdown(
            data, TableSource(data, name="t", chunk_rows=501), where, shards=2
        )
        ref = run_legacy_postfilter(data, where, shards=2)
        assert_bit_identical(new, ref)

    def test_needletail_bitmap_pushdown_unchanged(self, data):
        """The bitmap engines keep their §6.3.3 index-predicate semantics."""
        where = "year < 2005"
        session = connect().register("t", dict(data))
        res = session.table("t").where(where).group_by("g").agg(avg("y")).run(seed=9)
        mask = data["year"] < 2005
        for label, est in res.estimates().items():
            true = data["y"][mask & (data["g"] == label)].mean()
            assert est == pytest.approx(true, abs=4.0)

    def test_multi_groupby_with_where_parity(self, data):
        where = "year > 2003"
        session = connect(engine="memory").register(
            "t", TableSource(data, name="t", chunk_rows=700)
        )
        new = (
            session.table("t").where(where).group_by("g", "year")
            .agg(avg("y")).run(seed=9)
        )
        table = Table.from_dict("t", dict(data))
        filtered = table.filter(predicate_mask(parse_predicate(where), table))
        ref_session = connect(engine="memory").register("t", filtered)
        ref = ref_session.table("t").group_by("g", "year").agg(avg("y")).run(seed=9)
        assert_bit_identical(new, ref)
