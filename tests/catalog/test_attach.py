"""``resolve_target`` dispatch: every attachable shape lands on one source."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import Catalog
from repro.catalog.attach import SUFFIX_SOURCES, SourceSpec, resolve_target
from repro.catalog.csv import CSVSource
from repro.catalog.parquet import ParquetSource
from repro.catalog.source import TableSource
from repro.catalog.synthetic import SyntheticSource
from repro.needletail.table import Table


def _csv(tmp_path, name="t.csv", delimiter=","):
    path = tmp_path / name
    path.write_text(
        "g{d}v\na{d}1.0\nb{d}2.0\n".replace("{d}", delimiter)
    )
    return path


class TestDataSourcePassthrough:
    def test_returns_the_source_itself(self, tmp_path):
        source = CSVSource(_csv(tmp_path))
        assert resolve_target("t", source, {}) is source

    def test_opts_on_a_built_source_are_an_error(self, tmp_path):
        source = CSVSource(_csv(tmp_path))
        with pytest.raises(TypeError, match="already-constructed DataSource"):
            resolve_target("t", source, {"delimiter": "|"})


class TestInMemoryTargets:
    def test_table(self):
        table = Table.from_dict("t", {"g": np.array(["a", "b"]), "v": np.arange(2.0)})
        source = resolve_target("t", table, {})
        assert isinstance(source, TableSource) and source.table is table

    def test_mapping(self):
        source = resolve_target(
            "t", {"g": np.array(["a", "b"]), "v": np.arange(2.0)}, {}
        )
        assert isinstance(source, TableSource)
        assert source.table.column_names == ["g", "v"]

    def test_dataframe_like_duck_type(self):
        class Frame:  # pandas/polars shape without either dependency
            columns = ("g", "v")

            def __getitem__(self, name):
                return {"g": ["a", "b", "b"], "v": [1.0, 2.0, 3.0]}[name]

        source = resolve_target("t", Frame(), {})
        assert isinstance(source, TableSource)
        assert source.table.num_rows == 3
        assert np.array_equal(source.table.column("v"), [1.0, 2.0, 3.0])

    def test_unattachable_object(self):
        with pytest.raises(TypeError, match="cannot attach a int"):
            resolve_target("t", 42, {})


class TestPathSuffixes:
    def test_csv_path(self, tmp_path):
        source = resolve_target("t", _csv(tmp_path), {})
        assert isinstance(source, CSVSource)
        assert source.schema().names == ["g", "v"]

    def test_tsv_path_defaults_to_tab_delimiter(self, tmp_path):
        path = _csv(tmp_path, name="t.tsv", delimiter="\t")
        source = resolve_target("t", path, {})
        assert isinstance(source, CSVSource)
        assert source._delimiter == "\t"

    def test_suffix_defaults_yield_to_explicit_opts(self, tmp_path):
        path = _csv(tmp_path, name="t.tsv", delimiter="|")
        source = resolve_target("t", path, {"delimiter": "|"})
        assert source._delimiter == "|"

    def test_parquet_suffixes_map_to_parquet(self):
        assert SUFFIX_SOURCES[".parquet"][0] == "parquet"
        assert SUFFIX_SOURCES[".pq"][0] == "parquet"

    def test_unknown_suffix(self):
        with pytest.raises(ValueError, match="cannot infer a source kind"):
            resolve_target("t", "data.xlsx", {})

    def test_missing_csv_fails_at_attach_time(self, tmp_path):
        with pytest.raises(Exception):
            resolve_target("t", str(tmp_path / "absent.csv"), {})


class TestSourceSpec:
    def test_csv_spec_merges_call_opts_over_spec_opts(self, tmp_path):
        path = _csv(tmp_path, delimiter="|")
        spec = SourceSpec("csv", path=str(path), delimiter=",")
        source = resolve_target("t", spec, {"delimiter": "|"})
        assert isinstance(source, CSVSource) and source._delimiter == "|"

    def test_parquet_spec(self, tmp_path):
        pytest.importorskip("pyarrow")
        spec = SourceSpec("parquet", path=str(tmp_path / "t.parquet"))
        assert isinstance(resolve_target("t", spec, {}), ParquetSource)

    def test_synthetic_spec(self):
        spec = SourceSpec("synthetic", family="mixture", k=3, total_size=1000, seed=0)
        source = resolve_target("bench", spec, {})
        assert isinstance(source, SyntheticSource)
        assert source.describe() == "synthetic 'mixture'"

    def test_flights_spec(self):
        source = resolve_target("f", SourceSpec("flights", rows=500, seed=1), {})
        assert isinstance(source, TableSource)
        assert source.table.num_rows == 500
        assert "carrier" in source.table.column_names

    def test_flights_spec_rejects_unknown_options(self):
        with pytest.raises(TypeError, match="unknown options"):
            resolve_target("f", SourceSpec("flights", num_rows=500), {})

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown SourceSpec kind 'orc'"):
            resolve_target("t", SourceSpec("orc", path="x"), {})


class TestCatalogAttach:
    def test_attach_then_query_shapes(self, tmp_path):
        catalog = Catalog()
        catalog.attach("csv", _csv(tmp_path)).attach(
            "mem", {"g": np.array(["a"]), "v": np.array([1.0])}
        )
        assert set(catalog.names) == {"csv", "mem"}
        assert catalog.table("csv").num_rows == 2

    def test_attach_rebinding_evicts_builds(self, tmp_path):
        catalog = Catalog()
        catalog.attach("t", {"g": np.array(["a", "b"]), "v": np.arange(2.0)})
        first = catalog.table("t")
        catalog.attach("t", {"g": np.array(["c", "d"]), "v": np.arange(2.0) + 9})
        assert catalog.table("t") is not first
        assert list(catalog.table("t").column("g")) == ["c", "d"]
