"""Catalog behaviour: lazy cached builds, invalidation, snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import Catalog, SyntheticSource, TableSource
from repro.needletail.table import Table
from repro.query.parser import parse_predicate
from repro.session import avg, connect


@pytest.fixture()
def data() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(1)
    n = 4000
    g = rng.choice(["a", "b", "c"], size=n)
    base = {"a": 20.0, "b": 50.0, "c": 80.0}
    y = np.clip(np.array([base[x] for x in g]) + rng.normal(0, 5, n), 0, 100)
    return {"g": g, "y": y, "year": rng.integers(2000, 2010, n).astype(float)}


class CountingSource(TableSource):
    """TableSource that counts how many scans actually hit the data."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.scans = 0

    def _chunks(self, columns):
        self.scans += 1
        yield from super()._chunks(columns)


class TestCatalogBasics:
    def test_register_and_names(self, data):
        catalog = Catalog().register("t", data).register("u", Table.from_dict("u", data))
        assert catalog.names == ["t", "u"]
        assert "t" in catalog and "nope" not in catalog

    def test_unknown_table(self):
        with pytest.raises(KeyError, match="unknown table"):
            Catalog().schema("nope")

    def test_from_tables(self, data):
        catalog = Catalog.from_tables({"t": Table.from_dict("t", data)})
        assert catalog.schema("t").names == ["g", "y", "year"]

    def test_subscript_access(self, data):
        """Legacy dict-style access (`session.catalog['t']`) keeps working."""
        catalog = Catalog().register("t", data)
        assert catalog["t"] is catalog.source("t")
        with pytest.raises(KeyError, match="unknown table"):
            catalog["nope"]

    def test_table_materialization_cached(self, data):
        catalog = Catalog().register("t", CountingSource(data, name="t", chunk_rows=512))
        t1 = catalog.table("t")
        t2 = catalog.table("t")
        assert t1 is t2
        assert t1.num_rows == 4000

    def test_describe(self, data):
        catalog = Catalog().register("t", data)
        info = catalog.describe("t")
        assert info.kind == "memory"
        assert info.schema.names == ["g", "y", "year"]
        assert info.row_count_hint == 4000
        assert not info.table_cached and info.cached_populations == ()


class TestPopulationCache:
    def test_population_build_reused(self, data):
        source = CountingSource(data, name="t", chunk_rows=512)
        catalog = Catalog().register("t", source)
        p1 = catalog.population("t", "g", "y")
        p2 = catalog.population("t", "g", "y")
        assert p1 is p2
        assert source.scans == 1

    def test_distinct_keys_build_separately(self, data):
        source = CountingSource(data, name="t", chunk_rows=512)
        catalog = Catalog().register("t", source)
        pred = parse_predicate("year >= 2005")
        catalog.population("t", "g", "y")
        catalog.population("t", "g", "y", predicate=pred)
        catalog.population("t", "g", "y", predicate=pred)  # cached
        catalog.population("t", "g", "year")
        assert source.scans == 3

    def test_reregister_invalidates(self, data):
        source = CountingSource(data, name="t", chunk_rows=512)
        catalog = Catalog().register("t", source)
        catalog.population("t", "g", "y")
        catalog.table("t")
        catalog.register("t", CountingSource(data, name="t"))
        info = catalog.describe("t")
        assert not info.table_cached and info.cached_populations == ()

    def test_population_groups_sorted_and_grouped(self, data):
        catalog = Catalog().register("t", TableSource(data, name="t", chunk_rows=700))
        pop = catalog.population("t", "g", "y")
        assert pop.group_names == ["a", "b", "c"]
        assert pop.total_size == 4000
        for group in pop.groups:
            np.testing.assert_array_equal(
                group.values, data["y"][data["g"] == group.name]
            )

    def test_empty_predicate_result(self, data):
        catalog = Catalog().register("t", data)
        with pytest.raises(ValueError, match="no group matches the predicate"):
            catalog.population("t", "g", "y", predicate=parse_predicate("year > 3000"))

    def test_streaming_source_is_never_frozen(self):
        """A default IteratorSource re-reads its factory per query, so new
        data arriving between queries is visible (not the first snapshot)."""
        from repro.catalog import IteratorSource

        state = {"chunks": 1}

        def factory():
            for i in range(state["chunks"]):
                yield {
                    "g": np.array(["a", "b"] * 5),
                    "y": np.arange(10.0) + 100 * i,
                }

        catalog = Catalog().register("feed", IteratorSource(factory))
        assert catalog.population("feed", "g", "y").total_size == 10
        state["chunks"] = 3  # the stream grew
        assert catalog.population("feed", "g", "y").total_size == 30
        assert catalog.describe("feed").cached_populations == ()

    def test_invalidate_drops_builds(self, data):
        source = CountingSource(data, name="t", chunk_rows=512)
        catalog = Catalog().register("t", source)
        catalog.population("t", "g", "y")
        catalog.table("t")
        catalog.invalidate("t")
        info = catalog.describe("t")
        assert not info.table_cached and info.cached_populations == ()
        catalog.population("t", "g", "y")
        assert source.scans == 2  # rebuilt after invalidation

    def test_invalidate_reinfers_source_metadata(self, tmp_path):
        """A rewritten CSV gets fresh types and row counts, not stale ones."""
        path = tmp_path / "t.csv"
        path.write_text("g,y\na,1.0\nb,2.0\n")
        session = connect(engine="memory").register_csv("t", path)
        assert session.describe_table("t").schema.is_numeric("y")
        assert session.describe_table("t").row_count_hint == 2
        # the file changes shape on disk: y becomes a string column
        path.write_text("g,y,n\na,x1,1\na,x2,2\nb,x3,3\n")
        session.invalidate("t")
        info = session.describe_table("t")
        assert not info.schema.is_numeric("y")
        assert info.schema.names == ["g", "y", "n"]
        assert info.row_count_hint == 3
        res = session.table("t").group_by("g").agg("COUNT(*)").run()
        assert sum(res.estimates().values()) == 3

    def test_population_cache_is_lru_bounded(self, data, monkeypatch):
        monkeypatch.setattr(Catalog, "MAX_CACHED_POPULATIONS", 3)
        source = CountingSource(data, name="t", chunk_rows=512)
        catalog = Catalog().register("t", source)
        preds = [parse_predicate(f"year >= {2000 + i}") for i in range(5)]
        for pred in preds:
            catalog.population("t", "g", "y", predicate=pred)
        assert len(catalog.describe("t").cached_populations) == 3
        assert source.scans == 5
        # most recent keys are hits, the evicted oldest rebuilds
        catalog.population("t", "g", "y", predicate=preds[-1])
        assert source.scans == 5
        catalog.population("t", "g", "y", predicate=preds[0])
        assert source.scans == 6

    def test_synthetic_source_skips_scan(self):
        catalog = Catalog().register(
            "synth", SyntheticSource("mixture", k=3, total_size=30_000, seed=4)
        )
        pop = catalog.population("synth", "g", "value")
        assert pop.k == 3 and pop.total_size == 30_000

    def test_snapshot_isolated(self, data):
        catalog = Catalog().register("t", data)
        snap = catalog.snapshot()
        catalog.register("u", data)
        assert "u" not in snap
        snap.register("v", data)
        assert "v" not in catalog


class TestSessionIntegration:
    def test_repeat_queries_reuse_population(self, data):
        source = CountingSource(data, name="t", chunk_rows=512)
        session = connect(engine="memory").register_source("t", source)
        builder = session.table("t").group_by("g").agg(avg("y"))
        r1 = builder.run(seed=3)
        r2 = builder.run(seed=3)
        assert source.scans == 1  # second query reused the cached build
        np.testing.assert_array_equal(
            r1.first.raw.estimates, r2.first.raw.estimates
        )

    def test_memory_engine_does_not_materialize_table(self, data):
        """Population engines scan only the columns the query touches."""
        source = CountingSource(data, name="t", chunk_rows=512)
        session = connect(engine="memory").register_source("t", source)
        session.table("t").group_by("g").agg(avg("y")).run(seed=3)
        assert not session.catalog.describe("t").table_cached

    def test_needletail_materializes_lazily_and_once(self, data):
        from repro.catalog import IteratorSource

        scans = [0]

        def factory():
            scans[0] += 1
            yield dict(data)

        source = IteratorSource(factory, cache=True)  # replayed fixed data
        session = connect().register_source("t", source)
        session.catalog.schema("t")  # one-time schema inference, cached
        scans[0] = 0
        assert not session.catalog.describe("t").table_cached
        builder = session.table("t").group_by("g").agg(avg("y"))
        builder.run(seed=3)
        assert session.catalog.describe("t").table_cached
        builder.run(seed=4)
        assert scans[0] == 1  # one materializing scan serves both queries

    def test_submit_workloads_share_the_population_cache(self, data):
        """Snapshots share builds: N submits of one query scan the source once."""
        source = CountingSource(data, name="t", chunk_rows=512)
        with connect(engine="memory").register_source("t", source) as session:
            builder = session.table("t").group_by("g").agg(avg("y"))
            first = session.submit(builder, seed=1).result(timeout=60)
            futures = [session.submit(builder, seed=1) for _ in range(3)]
            for f in futures:
                np.testing.assert_array_equal(
                    f.result(timeout=60).first.raw.estimates,
                    first.first.raw.estimates,
                )
        assert source.scans == 1

    def test_reregister_cannot_serve_stale_cached_builds(self, data):
        """Caches are keyed by source: rebinding a name swaps the data."""
        session = connect(engine="memory").register("t", data)
        builder = session.table("t").group_by("g").agg(avg("y"))
        builder.run(seed=2)  # populate the cache for the first source
        swapped = {
            "g": np.array(["z"] * 100),
            "y": np.arange(100.0),
        }
        session.register("t", swapped)
        res = session.table("t").group_by("g").agg(avg("y")).run(seed=2)
        assert res.labels == ["z"]

    def test_submit_snapshot_unaffected_by_reregister(self, data):
        session = connect(engine="memory").register("t", data)
        future = session.submit(
            session.table("t").group_by("g").agg(avg("y")), seed=5
        )
        session.register("t", {"g": np.array(["x"] * 4), "y": np.arange(4.0)})
        result = future.result(timeout=60)
        assert result.labels == ["a", "b", "c"]
        session.close()

    def test_virtual_synthetic_through_session(self):
        session = connect(engine="memory").register_synthetic(
            "bench", "mixture", k=4, total_size=200_000, seed=11
        )
        res = session.table("bench").group_by("g").agg(avg("value")).run(seed=0)
        assert len(res.labels) == 4
        pop = session.catalog.population("bench", "g", "value")
        true = {g.name: g.true_mean for g in pop.groups}
        order = sorted(true, key=true.get)
        assert res.first.order() == order
