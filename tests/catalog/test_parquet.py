"""Parquet source: exercised where pyarrow exists, skipped cleanly elsewhere.

CI contract (tests/test_ci_workflow.py asserts the wiring): exactly one
matrix leg installs the ``arrow`` extra and sets ``REPRO_REQUIRE_PYARROW=1``.
On that leg, a missing pyarrow is a *failure* (the extra silently not
installing must not turn the whole Parquet surface into skips); every other
job skips these tests cleanly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.catalog import HAVE_PYARROW, MissingDependencyError
from repro.session import avg, connect

PYARROW_REQUIRED = os.environ.get("REPRO_REQUIRE_PYARROW") == "1"


def test_required_leg_really_has_pyarrow():
    """Runs everywhere: the arrow CI leg must not silently lose pyarrow."""
    if PYARROW_REQUIRED:
        assert HAVE_PYARROW, (
            "REPRO_REQUIRE_PYARROW=1 but pyarrow is not importable; the "
            "arrow matrix leg did not install its extra"
        )


def test_missing_dependency_degrades_gracefully():
    """Without pyarrow, constructing the source raises a clear install hint."""
    if HAVE_PYARROW:
        pytest.skip("pyarrow installed; the degradation path is not reachable")
    from repro.catalog import ParquetSource

    with pytest.raises(MissingDependencyError, match="arrow"):
        ParquetSource("whatever.parquet")
    with pytest.raises(MissingDependencyError):
        connect().register_parquet("t", "whatever.parquet")


needs_pyarrow = pytest.mark.skipif(
    not HAVE_PYARROW, reason="pyarrow not installed (optional 'arrow' extra)"
)


@pytest.fixture()
def parquet_path(tmp_path):
    import pyarrow as pa
    import pyarrow.parquet as pq

    rng = np.random.default_rng(8)
    n = 2000
    g = rng.choice(["a", "b", "c"], size=n)
    base = {"a": 20.0, "b": 50.0, "c": 80.0}
    y = np.clip(np.array([base[x] for x in g]) + rng.normal(0, 5, n), 0, 100)
    year = rng.integers(2000, 2010, n)
    table = pa.table({"g": g, "y": y, "year": year})
    path = tmp_path / "t.parquet"
    pq.write_table(table, path)
    return path, {"g": g, "y": y, "year": year.astype(np.float64)}


@needs_pyarrow
class TestParquetSource:
    def test_schema_from_metadata(self, parquet_path):
        from repro.catalog import ParquetSource

        path, _ = parquet_path
        source = ParquetSource(path)
        schema = source.schema()
        assert schema.names == ["g", "y", "year"]
        assert not schema.is_numeric("g")
        assert schema.is_numeric("y") and schema.is_numeric("year")
        assert source.row_count_hint() == 2000

    def test_chunked_scan_roundtrips(self, parquet_path):
        from repro.catalog import ParquetSource

        path, data = parquet_path
        source = ParquetSource(path, batch_rows=300)
        chunks = list(source.scan(columns=("y",)))
        assert len(chunks) >= 2
        np.testing.assert_array_equal(
            np.concatenate([c["y"] for c in chunks]), data["y"]
        )

    def test_query_through_session(self, parquet_path):
        path, data = parquet_path
        session = connect(engine="memory").register_parquet("t", path)
        res = session.table("t").group_by("g").agg(avg("y")).run(seed=1)
        for label, est in res.estimates().items():
            assert est == pytest.approx(data["y"][data["g"] == label].mean(), abs=4.0)

    def test_predicate_pushdown_parity(self, parquet_path):
        """Pushdown through Parquet == post-filtering the same arrays."""
        path, data = parquet_path
        session = connect(engine="memory").register_parquet("t", path)
        new = (
            session.table("t").where("year >= 2005").group_by("g")
            .agg(avg("y")).run(seed=2)
        )
        mask = data["year"] >= 2005
        ref_sess = connect(engine="memory").register(
            "t", {k: np.asarray(v)[mask] for k, v in data.items()}
        )
        ref = ref_sess.table("t").group_by("g").agg(avg("y")).run(seed=2)
        np.testing.assert_array_equal(
            new.first.raw.estimates, ref.first.raw.estimates
        )
        assert new.total_samples == ref.total_samples

    def test_cli_describe_parquet(self, parquet_path, capsys):
        from repro.cli import main

        path, _ = parquet_path
        assert main(["describe", "t", "--parquet", f"t={path}"]) == 0
        out = capsys.readouterr().out
        assert "kind: parquet" in out and "2,000" in out
