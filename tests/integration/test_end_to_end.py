"""Cross-module integration tests: SQL -> NEEDLETAIL -> algorithms -> viz."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import algorithm_names, run_algorithm
from repro.data.flights import make_flights_table
from repro.needletail.engine import NeedletailEngine
from repro.query.plan import execute_query
from repro.viz.barchart import render_barchart
from repro.viz.properties import check_ordering


@pytest.mark.integration
class TestFullPipeline:
    def test_sql_to_chart(self):
        table = make_flights_table(num_rows=40_000, seed=1)
        out = execute_query(
            "SELECT carrier, AVG(arrival_delay) FROM flights "
            "WHERE distance > 300 GROUP BY carrier",
            {"flights": table},
            delta=0.05,
            seed=2,
        )
        result = out.results["AVG(arrival_delay)"]
        chart = render_barchart(result)
        for name in out.labels:
            assert name in chart

    def test_all_algorithms_agree_on_order(self):
        table = make_flights_table(num_rows=30_000, seed=3)
        engine = NeedletailEngine(table, "carrier", "elapsed_time")
        true = engine.population.true_means()
        resolution = 0.02 * engine.c
        for name in algorithm_names(include_scan=True):
            res = run_algorithm(
                name, engine, delta=0.05, resolution=resolution, seed=4
            )
            grading = resolution if name.endswith("r") and name != "scan" else 0.0
            assert check_ordering(res.estimates, true, resolution=grading), name

    def test_sampling_beats_scan_in_simulated_time(self):
        # The crossover exists at scale (Fig. 4): on a 1e8-row population the
        # sampling algorithms need a roughly size-independent number of
        # samples while SCAN pays for every row.
        from repro.data.synthetic import make_mixture_dataset
        from repro.engines.memory import InMemoryEngine
        from repro.needletail.cost import NeedletailCostModel

        population = make_mixture_dataset(k=10, total_size=10**8, seed=5)
        engine = InMemoryEngine(population, cost_model=NeedletailCostModel())
        ifocusr = run_algorithm("ifocusr", engine, delta=0.05, resolution=1.0, seed=6)
        scan = run_algorithm("scan", engine)
        assert ifocusr.stats.total_seconds < scan.stats.total_seconds

    def test_guarantee_holds_across_many_seeds(self):
        # 30 independent runs at delta=0.25 over one NEEDLETAIL engine:
        # failures must stay within the budget (binomial slack included).
        table = make_flights_table(num_rows=30_000, seed=7)
        engine = NeedletailEngine(table, "carrier", "elapsed_time")
        true = engine.population.true_means()
        delta = 0.25
        failures = sum(
            not check_ordering(
                run_algorithm("ifocus", engine, delta=delta, seed=100 + t).estimates,
                true,
            )
            for t in range(30)
        )
        assert failures / 30 <= delta

    def test_results_consistent_between_engines(self):
        # The same logical population through InMemoryEngine vs
        # NeedletailEngine gives compatible orderings.
        from repro.data.population import Population, MaterializedGroup
        from repro.engines.memory import InMemoryEngine

        table = make_flights_table(num_rows=30_000, seed=8)
        carriers = table.distinct("carrier")
        groups = [
            MaterializedGroup(
                str(c),
                table.column("elapsed_time")[table.column("carrier") == c],
            )
            for c in carriers
        ]
        population = Population(groups=groups, c=480.0)
        mem = InMemoryEngine(population)
        ndl = NeedletailEngine(table, "carrier", "elapsed_time", c=480.0)
        a = run_algorithm("ifocus", mem, delta=0.05, seed=9)
        b = run_algorithm("ifocus", ndl, delta=0.05, seed=9)
        assert np.array_equal(np.argsort(a.estimates), np.argsort(b.estimates))
