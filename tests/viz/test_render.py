"""Tests for the text renderers (bar chart, trend line)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifocus import run_ifocus
from repro.viz.barchart import BarChart, render_barchart
from repro.viz.trendline import render_trendline, step_directions


class TestBarChart:
    def test_renders_all_labels_and_values(self):
        chart = BarChart(labels=["AA", "JB"], values=np.array([30.0, 15.0]))
        out = chart.render()
        assert "AA" in out and "JB" in out
        assert "30.00" in out and "15.00" in out

    def test_bar_lengths_proportional(self):
        chart = BarChart(labels=["a", "b"], values=np.array([100.0, 50.0]), width=40)
        lines = chart.render().splitlines()
        bars = [line.split("|")[1].count("#") for line in lines]
        assert bars[0] == 40 and bars[1] == 20

    def test_half_widths_shown(self):
        chart = BarChart(
            labels=["a"], values=np.array([10.0]), half_widths=np.array([2.5])
        )
        assert "+/-2.50" in chart.render()

    def test_sorted_render(self):
        chart = BarChart(labels=["low", "high"], values=np.array([1.0, 9.0]))
        lines = chart.render(sort=True).splitlines()
        assert lines[0].strip().startswith("high")

    def test_title(self):
        chart = BarChart(labels=["a"], values=np.array([1.0]), title="T")
        assert chart.render().splitlines()[0] == "T"

    def test_validation(self):
        with pytest.raises(ValueError):
            BarChart(labels=["a"], values=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            BarChart(labels=["a"], values=np.array([1.0]), half_widths=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            BarChart(labels=["a"], values=np.array([1.0]), width=4)

    def test_render_from_result(self, small_engine):
        result = run_ifocus(small_engine, delta=0.05, seed=1)
        out = render_barchart(result)
        for g in result.groups:
            assert g.name in out


class TestTrendline:
    def test_step_directions(self):
        assert step_directions(np.array([1.0, 2.0, 2.0, 1.0])) == ["up", "flat", "down"]

    def test_resolution_flattens_small_steps(self):
        assert step_directions(np.array([1.0, 1.3]), resolution=0.5) == ["flat"]

    def test_render_contains_axis_and_markers(self):
        out = render_trendline(["Jan", "Feb", "Mar"], np.array([10.0, 30.0, 20.0]))
        assert out.count("*") == 3
        assert "legend" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_trendline(["a"], np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            render_trendline(["a", "b"], np.array([1.0, 2.0]), height=1)
