"""Tests for the visual-property checkers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz.properties import (
    check_neighbor_ordering,
    check_ordering,
    check_top_t,
    incorrect_pairs,
    pair_accuracy,
)


class TestCheckOrdering:
    def test_identical_order(self):
        assert check_ordering([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])

    def test_swap_detected(self):
        assert not check_ordering([2.0, 1.0, 3.0], [10.0, 20.0, 30.0])

    def test_resolution_allows_close_swaps(self):
        true = [10.0, 10.5, 30.0]
        est = [2.0, 1.0, 3.0]  # swaps the close pair only
        assert not check_ordering(est, true)
        assert check_ordering(est, true, resolution=1.0)

    def test_estimate_ties_count_as_violation(self):
        assert not check_ordering([1.0, 1.0], [10.0, 20.0])

    def test_true_ties_unconstrained(self):
        assert check_ordering([5.0, 1.0], [10.0, 10.0])

    def test_single_group(self):
        assert check_ordering([1.0], [99.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            check_ordering([1.0], [1.0, 2.0])

    @given(
        perm_seed=st.integers(0, 1000),
        k=st.integers(2, 8),
    )
    @settings(max_examples=50)
    def test_any_monotone_transform_is_correct(self, perm_seed, k):
        rng = np.random.default_rng(perm_seed)
        true = np.sort(rng.uniform(0, 100, k))
        if len(np.unique(true)) < k:
            return
        est = true * 2 + 5  # monotone transform preserves order
        assert check_ordering(est, true)


class TestIncorrectPairs:
    def test_counts_exact(self):
        # est order: c < a < b; true order: a < b < c -> pairs (a,c), (b,c) wrong.
        assert incorrect_pairs([2.0, 3.0, 1.0], [10.0, 20.0, 30.0]) == 2

    def test_zero_when_correct(self):
        assert incorrect_pairs([1.0, 2.0], [5.0, 6.0]) == 0

    def test_reversed_order_counts_all_pairs(self):
        k = 5
        est = list(range(k))[::-1]
        true = list(range(k))
        assert incorrect_pairs(est, true) == k * (k - 1) // 2

    def test_resolution_excludes_close_pairs(self):
        assert incorrect_pairs([2.0, 1.0], [10.0, 10.4], resolution=0.5) == 0


class TestPairAccuracy:
    def test_perfect(self):
        assert pair_accuracy([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_fraction(self):
        assert pair_accuracy([2.0, 3.0, 1.0], [10.0, 20.0, 30.0]) == pytest.approx(1 / 3)

    def test_no_constrained_pairs(self):
        assert pair_accuracy([1.0, 2.0], [5.0, 5.0]) == 1.0


class TestNeighborOrdering:
    def test_only_adjacent_matter(self):
        # Non-adjacent inversion (first vs last) is fine on a trend line.
        true = [10.0, 30.0, 5.0]
        est = [8.0, 20.0, 6.0]  # est[0] > est[2] matches nothing adjacent
        assert check_neighbor_ordering(est, true)

    def test_adjacent_violation(self):
        assert not check_neighbor_ordering([2.0, 1.0], [10.0, 20.0])

    def test_resolution(self):
        assert check_neighbor_ordering([2.0, 1.0], [10.0, 10.4], resolution=0.5)


class TestTopT:
    def test_correct_top(self):
        true = [10.0, 50.0, 30.0, 80.0]
        est = [11.0, 52.0, 29.0, 85.0]
        assert check_top_t(est, true, t=2)

    def test_wrong_member(self):
        true = [10.0, 50.0, 30.0, 80.0]
        est = [11.0, 29.0, 52.0, 85.0]  # group 2 wrongly enters top-2
        assert not check_top_t(est, true, t=2)

    def test_wrong_internal_order(self):
        true = [10.0, 50.0, 30.0, 80.0]
        est = [1.0, 90.0, 2.0, 85.0]  # right members, wrong order
        assert not check_top_t(est, true, t=2)

    def test_resolution_allows_boundary_swap(self):
        true = [10.0, 50.0, 49.8, 80.0]
        est = [1.0, 40.0, 45.0, 85.0]  # group2 displaces group1 at boundary
        assert not check_top_t(est, true, t=2)
        assert check_top_t(est, true, t=2, resolution=0.5)

    def test_smallest_mode(self):
        true = [10.0, 50.0, 30.0, 80.0]
        est = [9.0, 55.0, 31.0, 70.0]
        assert check_top_t(est, true, t=2, largest=False)

    def test_t_validation(self):
        with pytest.raises(ValueError):
            check_top_t([1.0], [1.0], t=2)
