"""Tests for ordering-guaranteed histograms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz.histogram import (
    Histogram,
    approximate_histogram,
    bin_labels,
    exact_histogram,
)
from repro.viz.properties import check_ordering


@pytest.fixture()
def values() -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.concatenate(
        [
            rng.uniform(0, 25, 40_000),
            rng.uniform(25, 50, 10_000),
            rng.uniform(50, 75, 25_000),
            rng.uniform(75, 100, 5_000),
        ]
    )


EDGES = np.array([0.0, 25.0, 50.0, 75.0, 100.0])


class TestBinLabels:
    def test_labels(self):
        labels = bin_labels(np.array([0.0, 1.0, 2.0]))
        assert labels == ["[0, 1)", "[1, 2]"]

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_labels(np.array([1.0]))
        with pytest.raises(ValueError):
            bin_labels(np.array([0.0, 0.0, 1.0]))


class TestExact:
    def test_counts_match_numpy_histogram(self, values):
        hist = exact_histogram(values, EDGES)
        expected, _ = np.histogram(values, bins=EDGES)
        assert np.array_equal(hist.counts, expected)
        assert hist.exact
        assert hist.total == values.shape[0]

    def test_out_of_range_excluded(self):
        hist = exact_histogram(np.array([-5.0, 0.5, 1.5, 99.0]), np.array([0.0, 1.0, 2.0]))
        assert hist.counts.tolist() == [1, 1]

    def test_render(self, values):
        out = exact_histogram(values, EDGES).render()
        assert "[0, 25)" in out and "exact" in out


class TestApproximate:
    def test_bin_order_correct(self, values):
        hist = approximate_histogram(values, EDGES, delta=0.05, seed=1)
        truth = exact_histogram(values, EDGES).counts.astype(float)
        assert check_ordering(hist.counts, truth)
        assert not hist.exact
        assert hist.result is not None
        assert hist.result.total_samples > 0

    def test_counts_near_truth(self, values):
        hist = approximate_histogram(values, EDGES, delta=0.05, seed=2)
        truth = exact_histogram(values, EDGES).counts.astype(float)
        # Magnitudes in the right ballpark (ordering is the guarantee).
        assert np.all(np.abs(hist.counts - truth) < 0.5 * truth.max())

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            approximate_histogram(np.array([200.0]), EDGES)

    def test_histogram_dataclass(self):
        h = Histogram(edges=EDGES, counts=np.array([1, 2, 3, 4]), exact=True)
        assert h.labels[0] == "[0, 25)"
        assert h.total == 10
