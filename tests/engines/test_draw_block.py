"""Tests for the fused block-draw fast path (draw_block / charge_block).

The contract: ``run.draw_block(gids, count)`` is bit-for-bit identical to
stacking sequential per-group ``run.draw(g, count)`` calls, for every sampler
kind - materialized with/without replacement, virtual (fusable and
rejection-based), and NEEDLETAIL indexed groups - and ``charge_block``
accounts exactly like the per-group charge loop it replaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.confidence import EpsilonSchedule
from repro.core.ifocus import run_ifocus
from repro.core.intervals import first_event_row, separated_equal_width_batch
from repro.data.distributions import (
    Mixture,
    PointMass,
    TruncatedNormal,
    TwoPoint,
    UniformValues,
)
from repro.data.population import Population, VirtualGroup
from repro.data.synthetic import make_mixture_dataset
from repro.engines.memory import InMemoryEngine
from repro.needletail.cost import NeedletailCostModel
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Column, Table
from tests.conftest import make_materialized_population


def _sequential(run, k: int, count: int) -> np.ndarray:
    return np.stack([run.draw(g, count) for g in range(k)], axis=1)


@pytest.fixture()
def materialized_engine() -> InMemoryEngine:
    pop = make_materialized_population([15.0, 35.0, 55.0, 75.0], sizes=400, seed=3)
    return InMemoryEngine(pop)


@pytest.fixture()
def virtual_engine_mixed() -> InMemoryEngine:
    """One group per distribution kind, fusable and not, in one population."""
    pop = Population(
        groups=[
            VirtualGroup("uniform", UniformValues(10.0, 90.0), 10**6),
            VirtualGroup("twopoint", TwoPoint(0.4, 0.0, 100.0), 10**6),
            VirtualGroup("point", PointMass(42.0), 10**6),
            VirtualGroup("truncnorm", TruncatedNormal(50.0, 5.0, 0.0, 100.0), 10**6),
            VirtualGroup(
                "mixture",
                Mixture([UniformValues(0.0, 10.0), TwoPoint(0.5, 0.0, 100.0)]),
                10**6,
            ),
        ],
        c=100.0,
    )
    return InMemoryEngine(pop)


@pytest.fixture()
def needletail_engine() -> NeedletailEngine:
    rng = np.random.default_rng(11)
    n = 4000
    table = Table(
        "t",
        [
            Column("grp", rng.integers(0, 5, size=n), 4),
            Column("val", rng.uniform(0.0, 100.0, size=n), 8),
        ],
    )
    return NeedletailEngine(table, group_by="grp", value_column="val", c=100.0)


class TestBitExactEquivalence:
    def test_materialized_without_replacement(self, materialized_engine):
        r_seq = materialized_engine.open_run(seed=7)
        r_blk = materialized_engine.open_run(seed=7)
        assert np.array_equal(
            _sequential(r_seq, 4, 50), r_blk.draw_block(np.arange(4), 50)
        )

    def test_materialized_with_replacement(self, materialized_engine):
        r_seq = materialized_engine.open_run(seed=8, without_replacement=False)
        r_blk = materialized_engine.open_run(seed=8, without_replacement=False)
        assert np.array_equal(
            _sequential(r_seq, 4, 50), r_blk.draw_block(np.arange(4), 50)
        )

    def test_virtual_all_kinds(self, virtual_engine_mixed):
        r_seq = virtual_engine_mixed.open_run(seed=9)
        r_blk = virtual_engine_mixed.open_run(seed=9)
        assert np.array_equal(
            _sequential(r_seq, 5, 64), r_blk.draw_block(np.arange(5), 64)
        )

    def test_needletail_without_replacement(self, needletail_engine):
        k = needletail_engine.k
        r_seq = needletail_engine.open_run(seed=10)
        r_blk = needletail_engine.open_run(seed=10)
        assert np.array_equal(
            _sequential(r_seq, k, 40), r_blk.draw_block(np.arange(k), 40)
        )

    def test_needletail_with_replacement(self, needletail_engine):
        k = needletail_engine.k
        r_seq = needletail_engine.open_run(seed=12, without_replacement=False)
        r_blk = needletail_engine.open_run(seed=12, without_replacement=False)
        assert np.array_equal(
            _sequential(r_seq, k, 40), r_blk.draw_block(np.arange(k), 40)
        )

    def test_interleaved_draw_and_block(self, materialized_engine):
        """Per-group and fused draws advance the same underlying streams."""
        r_seq = materialized_engine.open_run(seed=13)
        r_mix = materialized_engine.open_run(seed=13)
        first_seq = _sequential(r_seq, 4, 10)
        first_blk = r_mix.draw_block(np.arange(4), 10)
        assert np.array_equal(first_seq, first_blk)
        # Continue group 2 alone, then a partial active set.
        assert np.array_equal(r_seq.draw(2, 5), r_mix.draw(2, 5))
        subset = np.array([0, 1, 3])
        cont_seq = np.stack([r_seq.draw(int(g), 8) for g in subset], axis=1)
        assert np.array_equal(cont_seq, r_mix.draw_block(subset, 8))

    def test_bound_matches_standalone_sampler(self, materialized_engine):
        """The columnar store's in-place slice shuffle must equal the
        standalone sampler's ``rng.permutation`` draw for the same stream."""
        from repro._util import spawn_group_rngs

        pop = materialized_engine.population
        run = materialized_engine.open_run(seed=19)
        rngs = spawn_group_rngs(19, pop.k)
        for gid, (group, rng) in enumerate(zip(pop.groups, rngs)):
            standalone = group.sampler(rng, without_replacement=True)
            assert np.array_equal(standalone.draw(group.size), run.draw(gid, group.size))

    def test_subset_of_groups(self, virtual_engine_mixed):
        r_seq = virtual_engine_mixed.open_run(seed=14)
        r_blk = virtual_engine_mixed.open_run(seed=14)
        subset = np.array([1, 3, 4])
        seq = np.stack([r_seq.draw(int(g), 16) for g in subset], axis=1)
        assert np.array_equal(seq, r_blk.draw_block(subset, 16))


class TestDrawBlockContract:
    def test_zero_count_and_empty_gids(self, materialized_engine):
        run = materialized_engine.open_run(seed=1)
        assert run.draw_block(np.arange(4), 0).shape == (0, 4)
        assert run.draw_block(np.array([], dtype=np.int64), 5).shape == (5, 0)

    def test_negative_count_rejected(self, materialized_engine):
        run = materialized_engine.open_run(seed=1)
        with pytest.raises(ValueError):
            run.draw_block(np.arange(4), -1)

    def test_uncharged(self, materialized_engine):
        run = materialized_engine.open_run(seed=2)
        run.draw_block(np.arange(4), 25)
        assert run.stats.total_samples == 0

    def test_exhaustion_raises(self, materialized_engine):
        run = materialized_engine.open_run(seed=3)
        with pytest.raises(ValueError, match="exhausted"):
            run.draw_block(np.arange(4), 401)

    def test_caller_owns_the_block(self, materialized_engine):
        """Mutating the returned matrix must not corrupt later draws."""
        r_a = materialized_engine.open_run(seed=4)
        r_b = materialized_engine.open_run(seed=4)
        block = r_a.draw_block(np.arange(4), 10)
        block[:] = -1.0
        assert np.array_equal(
            r_a.draw_block(np.arange(4), 10), r_b.draw_block(np.arange(4), 20)[10:]
        )


class TestChargeBlock:
    def test_matches_per_group_charges(self, materialized_engine):
        pop = materialized_engine.population
        eng = InMemoryEngine(pop, cost_model=NeedletailCostModel())
        r_loop = eng.open_run(seed=5)
        r_blk = eng.open_run(seed=5)
        for g in range(4):
            r_loop.charge(g, 37)
        r_blk.charge_block(np.arange(4), 37)
        assert np.array_equal(
            r_loop.stats.samples_per_group, r_blk.stats.samples_per_group
        )
        assert r_loop.stats.io_seconds == pytest.approx(r_blk.stats.io_seconds)
        assert r_loop.stats.cpu_seconds == pytest.approx(r_blk.stats.cpu_seconds)

    def test_zero_noop_and_negative(self, materialized_engine):
        run = materialized_engine.open_run(seed=6)
        run.charge_block(np.arange(4), 0)
        assert run.stats.total_samples == 0
        with pytest.raises(ValueError):
            run.charge_block(np.arange(4), -2)


class TestScheduleSegment:
    def test_segment_matches_call(self):
        schedule = EpsilonSchedule(k=12, delta=0.05, c=100.0, heuristic_factor=2.0)
        rounds = np.arange(2.0, 5002.0)
        for n_max in (None, 1e6):
            assert np.array_equal(
                np.asarray(schedule(rounds, n_max)), schedule.segment(rounds, n_max)
            )

    def test_segment_bit_identical_across_parameters(self):
        """The precomputed tail constant must match anytime_epsilon's own
        evaluation order to the last ulp for arbitrary (k, delta) - the
        algebraically equal log(pi^2 k / (3 delta)) form can differ."""
        rng = np.random.default_rng(23)
        rounds = np.arange(2.0, 502.0)
        for _ in range(50):
            k = int(rng.integers(1, 2000))
            delta = float(rng.uniform(1e-4, 0.5))
            schedule = EpsilonSchedule(k=k, delta=delta, c=100.0)
            for n_max in (None, 1e5):
                assert np.array_equal(
                    np.asarray(schedule(rounds, n_max)),
                    schedule.segment(rounds, n_max),
                )


class TestFirstEventRow:
    def _reference(self, est, eps, obstacles, require_all):
        ok = separated_equal_width_batch(est, eps)
        if obstacles is not None and obstacles.size:
            for v in obstacles:
                ok &= np.abs(est - v) > eps[:, None]
        rows = np.flatnonzero(ok.all(axis=1) if require_all else ok.any(axis=1))
        if rows.size:
            return int(rows[0]), ok[int(rows[0])]
        return None, None

    @pytest.mark.parametrize("require_all", [False, True])
    @pytest.mark.parametrize("with_obstacles", [False, True])
    def test_matches_full_scan(self, require_all, with_obstacles):
        rng = np.random.default_rng(17)
        for trial in range(20):
            b, k = int(rng.integers(1, 300)), int(rng.integers(2, 7))
            est = rng.uniform(0, 100, size=(b, k))
            eps = rng.uniform(0.1, 30.0, size=b)
            obstacles = rng.uniform(0, 100, size=2) if with_obstacles else None
            want_row, want_mask = self._reference(est, eps, obstacles, require_all)
            got_row, got_mask = first_event_row(
                est, eps, obstacles=obstacles, require_all=require_all, start_window=7
            )
            assert got_row == want_row
            if want_row is not None:
                assert np.array_equal(got_mask, want_mask)

    def test_empty_batch(self):
        row, mask = first_event_row(np.empty((0, 3)), np.empty(0))
        assert row is None and mask is None


class TestIFocusBatchInvarianceAtScale:
    def test_k500_results_independent_of_batching(self):
        """The fused executor's output must not depend on batch sizing even
        with hundreds of groups finalizing at staggered rounds."""
        pop = make_mixture_dataset(k=500, total_size=100_000, seed=21, materialize=True)
        engine = InMemoryEngine(pop)
        base = run_ifocus(engine, delta=0.1, seed=22)
        assert base.k == 500
        for ib, mb in [(5, 40), (256, 1 << 18)]:
            res = run_ifocus(engine, delta=0.1, seed=22, initial_batch=ib, max_batch=mb)
            assert np.array_equal(base.estimates, res.estimates)
            assert np.array_equal(base.samples_per_group, res.samples_per_group)
            assert base.inactive_order == res.inactive_order
            assert base.rounds == res.rounds
