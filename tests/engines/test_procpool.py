"""Lifecycle, shared-memory hygiene, and crash paths of the process executor.

The contract under test (ISSUE 5 acceptance bar):

* zero shared-memory segments outlive ``close()``/``release_pool()`` - the
  process-wide :data:`repro.engines.shm.REGISTRY` is the leak oracle;
* segments are unlinked exactly once *even when a worker is killed* mid-run
  (the kill-the-worker test);
* a released engine is still usable (workers and segments are rebuilt
  lazily, draws stay bit-identical), while runs opened before the release
  fail loudly instead of hanging;
* populations that cannot cross the process boundary are rejected loudly at
  the engine layer (the planner's thread fallback is tested in the session
  suite).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.data.distributions import TruncatedNormal, TwoPoint, UniformValues
from repro.data.population import Group, Population, VirtualGroup
from repro.engines.memory import InMemoryEngine
from repro.engines.shm import REGISTRY, build_shard_payloads, shareable
from repro.engines.sharded import ShardedEngine
from tests.conftest import make_materialized_population

K = 8


def _engine() -> InMemoryEngine:
    pop = make_materialized_population(
        [10.0 + 8.0 * i for i in range(K)], sizes=400, seed=5
    )
    return InMemoryEngine(pop)


def _process_engine(shards: int = 2, **kwargs) -> ShardedEngine:
    return ShardedEngine(_engine(), shards=shards, executor="process", **kwargs)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave the shm registry exactly as it found it."""
    baseline = REGISTRY.active_count()
    yield
    assert REGISTRY.active_count() == baseline, (
        f"leaked shared-memory segments: {REGISTRY.active_names()}"
    )


class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        engine = _process_engine(shards=2)
        run = engine.open_run(seed=0)
        run.draw_block(np.arange(K), 5)
        assert REGISTRY.active_count() > 0  # payload + output segments live
        engine.close()
        assert REGISTRY.active_count() == 0

    def test_close_is_idempotent(self):
        engine = _process_engine(shards=2)
        engine.open_run(seed=0).draw_block(np.arange(K), 3)
        engine.close()
        engine.close()
        assert REGISTRY.active_count() == 0

    def test_release_pool_frees_workers_and_segments_but_not_the_engine(self):
        engine = _process_engine(shards=2)
        a = engine.open_run(seed=3).draw_block(np.arange(K), 6)
        engine.release_pool()
        assert REGISTRY.active_count() == 0  # nothing pinned between queries
        b = engine.open_run(seed=3).draw_block(np.arange(K), 6)  # fresh workers
        assert np.array_equal(a, b)
        engine.close()

    def test_run_opened_before_release_fails_loudly_after_it(self):
        engine = _process_engine(shards=2)
        run = engine.open_run(seed=1)
        run.draw_block(np.arange(K), 2)
        engine.release_pool()
        with pytest.raises(RuntimeError, match="shut down"):
            run.draw_block(np.arange(K), 2)
        engine.close()

    def test_closed_engine_refuses_new_runs(self):
        engine = _process_engine(shards=2)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.open_run(seed=0)

    def test_output_buffer_grows_for_large_draws(self):
        """A draw bigger than the initial out segment grows it geometrically
        (old segment unlinked, new one registered) and stays bit-exact."""
        pop = make_materialized_population(
            [10.0 + 8.0 * i for i in range(K)], sizes=5000, seed=5
        )
        plain = InMemoryEngine(pop)
        engine = ShardedEngine(InMemoryEngine(pop), shards=2, executor="process")
        r_plain = plain.open_run(seed=9)
        r_proc = engine.open_run(seed=9)
        small = r_proc.draw_block(np.arange(K), 4)
        assert np.array_equal(small, r_plain.draw_block(np.arange(K), 4))
        big = r_proc.draw_block(np.arange(K), 4096)  # > 64 KiB per worker
        assert np.array_equal(big, r_plain.draw_block(np.arange(K), 4096))
        engine.close()

    def test_draw_zero_count_skips_the_pipe(self):
        engine = _process_engine(shards=2)
        run = engine.open_run(seed=0)
        assert run.draw(0, 0).size == 0
        engine.close()

    def test_isolated_runs_on_one_engine(self):
        """Two live runs on one engine own independent worker-side streams."""
        plain = _engine()
        engine = _process_engine(shards=2)
        run_a = engine.open_run(seed=11)
        run_b = engine.open_run(seed=22)
        ref_a = plain.open_run(seed=11)
        ref_b = plain.open_run(seed=22)
        gids = np.arange(K)
        assert np.array_equal(run_a.draw_block(gids, 5), ref_a.draw_block(gids, 5))
        assert np.array_equal(run_b.draw_block(gids, 7), ref_b.draw_block(gids, 7))
        assert np.array_equal(run_a.draw_block(gids, 3), ref_a.draw_block(gids, 3))
        engine.close()


class TestWorkerCrash:
    def test_killed_worker_surfaces_and_segments_are_reclaimed(self):
        """With recovery disabled (max_restarts=0), SIGKILL keeps the
        pre-resilience contract: the next draw raises instead of hanging,
        and close() still unlinks every segment exactly once."""
        engine = _process_engine(shards=2, max_restarts=0)
        run = engine.open_run(seed=0)
        run.draw_block(np.arange(K), 4)
        pool = engine._procpool
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        deadline = time.time() + 10
        with pytest.raises(RuntimeError, match="died"):
            while time.time() < deadline:  # the pipe may drain buffered data
                run.draw_block(np.arange(K), 4)
            raise AssertionError("killed worker never surfaced")
        engine.close()
        assert REGISTRY.active_count() == 0

    def test_killed_worker_recovers_bit_identically(self):
        """Default contract: a SIGKILLed worker is respawned, its command
        log replayed, and the run continues bit-identical to an uninjured
        twin."""
        baseline_engine = _process_engine(shards=2)
        baseline_run = baseline_engine.open_run(seed=0)
        expected = [baseline_run.draw_block(np.arange(K), 4) for _ in range(6)]
        baseline_engine.close()

        engine = _process_engine(shards=2)
        run = engine.open_run(seed=0)
        got = [run.draw_block(np.arange(K), 4) for _ in range(3)]
        pool = engine._procpool
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        pool._workers[0].process.join(timeout=10)
        got.extend(run.draw_block(np.arange(K), 4) for _ in range(3))
        for want, have in zip(expected, got):
            np.testing.assert_array_equal(want, have)
        assert any("respawned" in e for e in engine.resilience_events())
        engine.close()
        assert REGISTRY.active_count() == 0

    def test_surviving_shards_unaffected_until_close(self):
        engine = _process_engine(shards=2, max_restarts=0)
        run = engine.open_run(seed=0)
        pool = engine._procpool
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        pool._workers[0].process.join(timeout=10)
        # Shard 1 owns the upper half of the gids; it still answers.
        upper = engine.shard_gids[1]
        block = run.draw_block(upper, 3)
        assert block.shape == (3, upper.size)
        engine.close()
        assert REGISTRY.active_count() == 0


class TestShareability:
    def test_rejection_sampled_virtual_rejected_loudly(self):
        groups = [VirtualGroup("g0", TruncatedNormal(50.0, 5.0, 0.0, 100.0), 10**6)]
        engine = InMemoryEngine(Population(groups=groups, c=100.0))
        assert "rejection-sampled" in shareable(engine.population)
        with pytest.raises(ValueError, match="rejection-sampled"):
            ShardedEngine(engine, shards=2, executor="process")

    def test_unknown_group_kind_rejected(self):
        class OpaqueGroup(Group):
            name = "opaque"

            @property
            def size(self):
                return 10

            @property
            def true_mean(self):
                return 1.0

        pop = Population(groups=[OpaqueGroup()], c=10.0)
        assert "unknown kind" in shareable(pop)
        with pytest.raises(ValueError, match="not process-shareable"):
            build_shard_payloads(pop, [np.array([0])])

    def test_fusable_virtual_is_shareable(self):
        groups = [
            VirtualGroup("u", UniformValues(0.0, 50.0), 10**6),
            VirtualGroup("t", TwoPoint(0.3, 0.0, 100.0), 10**6),
        ]
        assert shareable(Population(groups=groups, c=100.0)) is None

    def test_materialized_is_shareable(self):
        assert shareable(_engine().population) is None

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedEngine(_engine(), shards=2, executor="fiber")


class TestPayloadCleanupOnError:
    def test_failed_build_releases_partial_segments(self):
        """An error *after* some segments were created must release them."""
        from repro.needletail.bitvector import BitVector
        from repro.needletail.engine import IndexedGroup

        v1 = np.arange(64, dtype=np.float64)
        v2 = v1 + 1.0  # a second, distinct value column in the same shard
        g1 = IndexedGroup("a", BitVector.from_bools(np.ones(64, dtype=bool)), v1)
        g2 = IndexedGroup("b", BitVector.from_bools(np.ones(64, dtype=bool)), v2)
        pop = Population(groups=[g1, g2], c=100.0)
        with pytest.raises(ValueError, match="distinct value columns"):
            build_shard_payloads(pop, [np.array([0, 1])])
        # the autouse fixture asserts the partially-built segments were freed
