"""Shard determinism contract for :mod:`repro.engines.sharded`.

The guarantees under test (see the module docstring and DESIGN_PERF.md):

* ``ShardedEngine(shards=1)`` is bit-identical to the wrapped engine for
  **every** sampler kind - materialized with/without replacement, virtual
  (fusable and rejection-based), and NEEDLETAIL indexed groups - in draws,
  fused draws, accounting, and full algorithm runs.
* For per-group-stream samplers (materialized, indexed, rejection-based
  virtual), **any** shard count is bit-identical to the plain engine, no
  matter how the fan-out is scheduled (pool, sequential, hash partition).
* Fusable virtual groups draw reproducibly at ``shards>1`` (fixed seed ->
  identical values) and produce the same ordering as the plain engine.
* The whole matrix holds for **both executors**: the thread fan-out and the
  process fan-out (``executor="process"``, worker processes over shared
  memory) are interchangeable bit-for-bit wherever the population can cross
  the process boundary.  Rejection-sampled virtual populations cannot (the
  engine refuses them loudly; the planner falls back to threads - see the
  session suite), so their process legs are skipped here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import run_algorithm
from repro.data.distributions import (
    Mixture,
    PointMass,
    TruncatedNormal,
    TwoPoint,
    UniformValues,
)
from repro.data.population import Population, VirtualGroup
from repro.engines.memory import InMemoryEngine
from repro.engines.partition import hash_partition, partition_groups, range_partition
from repro.engines.sharded import ShardedEngine
from repro.needletail.cost import NeedletailCostModel
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Column, Table
from tests.conftest import make_materialized_population

K = 12


def _materialized_engine(cost_model=None) -> InMemoryEngine:
    pop = make_materialized_population(
        [10.0 + 6.0 * i for i in range(K)], sizes=500, seed=3
    )
    return InMemoryEngine(pop, cost_model=cost_model)


def _virtual_engine() -> InMemoryEngine:
    """One group per distribution kind, fusable and not, in one population."""
    groups = [
        VirtualGroup("uniform", UniformValues(10.0, 90.0), 10**6),
        VirtualGroup("twopoint", TwoPoint(0.4, 0.0, 100.0), 10**6),
        VirtualGroup("point", PointMass(42.0), 10**6),
        VirtualGroup("truncnorm", TruncatedNormal(70.0, 5.0, 0.0, 100.0), 10**6),
        VirtualGroup(
            "mixture",
            Mixture([UniformValues(0.0, 10.0), TwoPoint(0.5, 0.0, 100.0)]),
            10**6,
        ),
    ]
    return InMemoryEngine(Population(groups=groups, c=100.0))


def _fusable_virtual_engine() -> InMemoryEngine:
    """Only fusable distributions: the virtual population a process worker
    can rebuild (parameters pickle; no rejection-sampled state)."""
    groups = [
        VirtualGroup("uniform", UniformValues(10.0, 90.0), 10**6),
        VirtualGroup("twopoint", TwoPoint(0.4, 0.0, 100.0), 10**6),
        VirtualGroup("point", PointMass(42.0), 10**6),
        VirtualGroup(
            "mixture",
            Mixture([UniformValues(0.0, 10.0), TwoPoint(0.5, 0.0, 100.0)]),
            10**6,
        ),
    ]
    return InMemoryEngine(Population(groups=groups, c=100.0))


#: Both fan-out executors; the full determinism matrix runs against each.
EXECUTORS = ("thread", "process")


def _sharded(kind: str, shards: int, executor: str, **kwargs) -> ShardedEngine:
    """A sharded engine over a fresh builder engine, skipping impossible legs."""
    if executor == "process" and kind == "virtual":
        pytest.skip(
            "rejection-sampled virtual populations are not process-shareable "
            "(refusal and planner fallback are tested separately)"
        )
    return ShardedEngine(
        ENGINE_BUILDERS[kind](), shards=shards, executor=executor, **kwargs
    )


def _needletail_engine() -> NeedletailEngine:
    rng = np.random.default_rng(11)
    n = 6000
    table = Table(
        "t",
        [
            Column("grp", rng.integers(0, 6, size=n), 4),
            Column("val", rng.uniform(0.0, 100.0, size=n), 8),
        ],
    )
    return NeedletailEngine(table, group_by="grp", value_column="val", c=100.0)


def _drain(run, k: int, seedless_pattern=((3, 7), (0, 2), (1, 1))) -> list[np.ndarray]:
    """A fixed interleaving of sequential and fused draws plus charges."""
    out = []
    gids = np.arange(k)
    out.append(np.array(run.draw_block(gids, 5)))
    run.charge_block(gids, 5)
    for gid, count in seedless_pattern:
        out.append(np.array(run.draw(gid, count)))
        run.charge(gid, count)
    out.append(np.array(run.draw_block(gids[::2], 4)))
    run.charge_block(gids[::2], 4)
    return out


# ---------------------------------------------------------------------------
# Partition utilities
# ---------------------------------------------------------------------------


class TestPartition:
    def test_range_partition_is_contiguous_balanced_and_covering(self):
        parts = range_partition(10, 3)
        assert [p.tolist() for p in parts] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert np.array_equal(np.concatenate(parts), np.arange(10))

    def test_range_partition_more_shards_than_groups(self):
        parts = range_partition(2, 5)
        assert sum(p.size for p in parts) == 2
        assert sum(1 for p in parts if p.size) == 2

    def test_hash_partition_is_stable_and_covering(self):
        names = [f"g{i}" for i in range(20)]
        a = hash_partition(names, 4)
        b = hash_partition(names, 4)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert np.array_equal(np.sort(np.concatenate(a)), np.arange(20))

    def test_partition_groups_rejects_unknown_strategy(self):
        with pytest.raises(KeyError, match="unknown partitioner"):
            partition_groups(["a", "b"], 2, strategy="zigzag")

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_shards_rejected(self, bad):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            range_partition(4, bad)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardedEngine(_materialized_engine(), shards=bad)

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            ShardedEngine(_materialized_engine(), shards=2, max_workers=0)


# ---------------------------------------------------------------------------
# shards=1: bit-identical to the wrapped engine, every sampler kind
# ---------------------------------------------------------------------------


ENGINE_BUILDERS = {
    "materialized": _materialized_engine,
    "virtual": _virtual_engine,
    "fusable_virtual": _fusable_virtual_engine,
    "needletail": _needletail_engine,
}


class TestSingleShardBitIdentical:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("kind", sorted(ENGINE_BUILDERS))
    @pytest.mark.parametrize("without_replacement", [True, False])
    def test_draws_and_accounting_match(self, kind, without_replacement, executor):
        plain = ENGINE_BUILDERS[kind]()
        sharded = _sharded(kind, 1, executor)
        r_plain = plain.open_run(seed=7, without_replacement=without_replacement)
        r_shard = sharded.open_run(seed=7, without_replacement=without_replacement)
        for a, b in zip(_drain(r_plain, plain.k), _drain(r_shard, plain.k)):
            assert np.array_equal(a, b)
        assert np.array_equal(
            r_plain.stats.samples_per_group, r_shard.stats.samples_per_group
        )
        assert r_plain.stats.io_seconds == r_shard.stats.io_seconds
        assert r_plain.stats.cpu_seconds == r_shard.stats.cpu_seconds
        sharded.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("kind", sorted(ENGINE_BUILDERS))
    def test_full_ifocus_run_matches(self, kind, executor):
        plain = ENGINE_BUILDERS[kind]()
        sharded = _sharded(kind, 1, executor)
        a = run_algorithm("ifocus", plain, delta=0.05, seed=13)
        b = run_algorithm("ifocus", sharded, delta=0.05, seed=13)
        assert np.array_equal(a.estimates, b.estimates)
        assert np.array_equal(a.samples_per_group, b.samples_per_group)
        assert a.stats.total_seconds == b.stats.total_seconds
        sharded.close()

    def test_exact_mean_and_sizes_delegate_to_population(self):
        plain = _materialized_engine()
        sharded = ShardedEngine(_materialized_engine(), shards=1)
        run_p = plain.open_run(seed=0)
        run_s = sharded.open_run(seed=0)
        assert np.array_equal(run_p.sizes(), run_s.sizes())
        assert run_p.group_names() == run_s.group_names()
        assert run_p.exact_mean(3) == run_s.exact_mean(3)


# ---------------------------------------------------------------------------
# shards>1: per-group-stream samplers stay bit-identical; merges are stable
# ---------------------------------------------------------------------------


class TestMultiShardDeterminism:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("shards", [2, 3, 4, K])
    @pytest.mark.parametrize("builder", ["materialized", "needletail"])
    def test_per_group_stream_kinds_bit_identical_to_plain(
        self, shards, builder, executor
    ):
        plain = ENGINE_BUILDERS[builder]()
        sharded = _sharded(builder, shards, executor)
        r_plain = plain.open_run(seed=21)
        r_shard = sharded.open_run(seed=21)
        for a, b in zip(_drain(r_plain, plain.k), _drain(r_shard, plain.k)):
            assert np.array_equal(a, b)
        sharded.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("builder", ["materialized", "needletail"])
    def test_full_run_bit_identical_to_plain_at_four_shards(self, builder, executor):
        plain = ENGINE_BUILDERS[builder]()
        with _sharded(builder, 4, executor) as sharded:
            a = run_algorithm("ifocus", plain, delta=0.05, seed=5)
            b = run_algorithm("ifocus", sharded, delta=0.05, seed=5)
        assert np.array_equal(a.estimates, b.estimates)
        assert np.array_equal(a.samples_per_group, b.samples_per_group)
        assert a.stats.total_seconds == b.stats.total_seconds

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_sequential_fanout_equals_pooled(self, executor):
        pooled = _sharded("materialized", 4, executor)
        sequential = _sharded("materialized", 4, executor, max_workers=1)
        a = pooled.open_run(seed=2).draw_block(np.arange(K), 40)
        b = sequential.open_run(seed=2).draw_block(np.arange(K), 40)
        assert np.array_equal(a, b)
        pooled.close()
        sequential.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_hash_partitioner_equals_range_for_per_group_streams(self, executor):
        by_range = _sharded("materialized", 3, executor, partitioner="range")
        by_hash = _sharded("materialized", 3, executor, partitioner="hash")
        gids = np.arange(K)
        a = by_range.open_run(seed=4).draw_block(gids, 25)
        b = by_hash.open_run(seed=4).draw_block(gids, 25)
        assert np.array_equal(a, b)
        by_range.close()
        by_hash.close()

    @pytest.mark.parametrize(
        "executor,kind",
        [("thread", "virtual"), ("process", "fusable_virtual")],
    )
    def test_virtual_groups_reproducible_and_same_ordering(self, executor, kind):
        plain = ENGINE_BUILDERS[kind]()
        sharded = _sharded(kind, 3, executor)
        gids = np.arange(plain.k)
        x = sharded.open_run(seed=11).draw_block(gids, 30)
        y = sharded.open_run(seed=11).draw_block(gids, 30)
        assert np.array_equal(x, y)  # fixed seed -> identical fan-out draws
        a = run_algorithm("ifocus", plain, delta=0.05, seed=6)
        b = run_algorithm("ifocus", sharded, delta=0.05, seed=6)
        assert np.array_equal(np.argsort(a.estimates), np.argsort(b.estimates))
        sharded.close()

    def test_thread_and_process_executors_bit_identical(self):
        """The two fan-outs are interchangeable, not merely each correct."""
        by_thread = _sharded("materialized", 4, "thread")
        by_process = _sharded("materialized", 4, "process")
        gids = np.arange(K)
        a = by_thread.open_run(seed=15).draw_block(gids, 33)
        b = by_process.open_run(seed=15).draw_block(gids, 33)
        assert np.array_equal(a, b)
        by_thread.close()
        by_process.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_partial_blocks_touching_a_shard_subset(self, executor):
        plain = _materialized_engine()
        sharded = _sharded("materialized", 4, executor)
        subset = np.array([1, 5, 9])  # spans three range shards
        a = plain.open_run(seed=8).draw_block(subset, 17)
        b = sharded.open_run(seed=8).draw_block(subset, 17)
        assert np.array_equal(a, b)
        sharded.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_charge_accounting_matches_plain_with_cost_model(self, executor):
        plain = _materialized_engine(cost_model=NeedletailCostModel())
        sharded = ShardedEngine(
            _materialized_engine(cost_model=NeedletailCostModel()),
            shards=4,
            executor=executor,
        )
        r_plain = plain.open_run(seed=1)
        r_shard = sharded.open_run(seed=1)
        for run in (r_plain, r_shard):
            run.draw_block(np.arange(K), 8)
            run.charge_block(np.arange(K), 8)
            run.charge(2, 3)
        assert np.array_equal(
            r_plain.stats.samples_per_group, r_shard.stats.samples_per_group
        )
        assert r_plain.stats.io_seconds == pytest.approx(r_shard.stats.io_seconds)
        assert r_plain.stats.cpu_seconds == pytest.approx(r_shard.stats.cpu_seconds)
        sharded.close()


# ---------------------------------------------------------------------------
# Lifecycle and failure propagation
# ---------------------------------------------------------------------------


class TestLifecycle:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_exhaustion_error_propagates_through_fanout(self, executor):
        pop = make_materialized_population([10.0, 30.0, 50.0, 70.0], sizes=20, seed=0)
        sharded = ShardedEngine(InMemoryEngine(pop), shards=4, executor=executor)
        run = sharded.open_run(seed=0)
        with pytest.raises(ValueError, match="exhausted"):
            run.draw_block(np.arange(4), 21)
        sharded.close()

    def test_close_is_idempotent_and_blocks_new_fanouts(self):
        sharded = ShardedEngine(_materialized_engine(), shards=4)
        run = sharded.open_run(seed=0)
        run.draw_block(np.arange(K), 3)  # spins the pool up
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.open_run(seed=1).draw_block(np.arange(K), 3)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_record_timings_accumulates_per_shard(self, executor):
        sharded = ShardedEngine(
            _materialized_engine(), shards=4, record_timings=True, executor=executor
        )
        run = sharded.open_run(seed=0)
        assert run.shard_seconds.shape == (4,)
        run.draw_block(np.arange(K), 50)
        assert np.all(run.shard_seconds >= 0.0)
        assert run.num_shards == 4
        sharded.close()

    def test_release_pool_is_nonterminal(self):
        sharded = ShardedEngine(_materialized_engine(), shards=4)
        a = sharded.open_run(seed=0).draw_block(np.arange(K), 5)
        sharded.release_pool()
        b = sharded.open_run(seed=0).draw_block(np.arange(K), 5)  # recreates pool
        assert np.array_equal(a, b)
        sharded.close()

    def test_rejects_backend_with_custom_open_run(self):
        class CustomEngine(InMemoryEngine):
            def open_run(self, seed=None, without_replacement=True):
                return super().open_run(seed, without_replacement)

        backend = CustomEngine(make_materialized_population([10.0, 20.0], sizes=50))
        with pytest.raises(TypeError, match="overrides open_run"):
            ShardedEngine(backend, shards=2)

    def test_effective_shards_capped_by_group_count(self):
        sharded = ShardedEngine(_materialized_engine(), shards=K + 10)
        assert sharded.shards == K
        plain = _materialized_engine()
        a = plain.open_run(seed=3).draw_block(np.arange(K), 9)
        b = sharded.open_run(seed=3).draw_block(np.arange(K), 9)
        assert np.array_equal(a, b)
        sharded.close()
