"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_demo_parses(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig3a"])
        assert args.name == "fig3a" and args.scale == "smoke"

    def test_query_options(self):
        args = build_parser().parse_args(
            ["query", "SELECT x, AVG(y) FROM t GROUP BY x", "--rows", "500",
             "--algorithm", "roundrobin", "--delta", "0.1"]
        )
        assert args.rows == 500 and args.algorithm == "roundrobin"

    def test_query_shards_options(self):
        args = build_parser().parse_args(
            ["query", "SELECT x, AVG(y) FROM t GROUP BY x",
             "--shards", "4", "--workers", "2"]
        )
        assert args.shards == 4 and args.workers == 2
        defaults = build_parser().parse_args(["query", "SELECT x, AVG(y) FROM t GROUP BY x"])
        assert defaults.shards == 1 and defaults.workers is None

    def test_query_resilience_options(self):
        args = build_parser().parse_args(
            ["query", "SELECT x, AVG(y) FROM t GROUP BY x",
             "--deadline-ms", "250", "--max-retries", "5"]
        )
        assert args.deadline_ms == 250.0 and args.max_retries == 5
        defaults = build_parser().parse_args(["query", "SELECT x, AVG(y) FROM t GROUP BY x"])
        assert defaults.deadline_ms is None and defaults.max_retries == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3a", "table3", "headline"):
            assert name in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "round" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "sampled" in out and "AA" in out

    def test_query(self, capsys):
        code = main(
            ["query",
             "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
             "--rows", "20000", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AVG(arrival_delay)" in out and "samples=" in out
        assert "guarantee:" in out

    def test_query_sharded_matches_unsharded(self, capsys):
        sql = "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
        base = ["query", sql, "--rows", "20000", "--seed", "3", "--engine", "memory"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--shards", "4", "--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        # Materialized table: the sharded merge is bit-identical, so the
        # printed estimates and sample counts must match exactly.
        assert sharded == plain

    def test_query_csv(self, capsys, tmp_path):
        path = tmp_path / "trips.csv"
        path.write_text(
            "city,delay\nNYC,10\nNYC,12\nLA,30\nLA,28\nSF,55\nSF,54\n"
        )
        code = main(
            ["query", "SELECT city, AVG(delay) FROM trips GROUP BY city",
             "--csv", str(path), "--group-columns", "city",
             "--value-columns", "delay", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AVG(delay)" in out and "NYC" in out and "SF" in out

    def test_query_having_prints_caveat(self, capsys):
        code = main(
            ["query",
             "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier "
             "HAVING AVG(arrival_delay) > 8",
             "--rows", "20000", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "caveat:" in out and "HAVING" in out

    def test_query_deadline_exit_code_3_with_partial_result(self, capsys):
        """An expired deadline is anytime, not an error: the partial result
        still prints (with its caveat), but scripts get exit code 3 to
        distinguish it from a fully-guaranteed answer (0)."""
        code = main(
            ["query",
             "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
             "--rows", "20000", "--seed", "3", "--deadline-ms", "0.001"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "AVG(arrival_delay)" in out  # the partial answer is printed
        assert "deadline_exceeded" in out

    def test_query_stream(self, capsys):
        code = main(
            ["query",
             "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
             "--rows", "20000", "--seed", "3", "--stream"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming partial results" in out and "[1/" in out

    def test_tables_default_flights(self, capsys):
        assert main(["tables", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "flights" in out and "memory" in out
        assert "carrier:str" in out and "arrival_delay:num" in out

    def test_tables_with_csv(self, capsys, tmp_path):
        path = tmp_path / "trips.csv"
        path.write_text("city,delay\nNYC,10\nLA,30\n")
        assert main(["tables", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trips" in out and "csv" in out and "city:str" in out
        # row counts come from the schema pass, not a materialization
        assert "2" in out

    def test_tables_named_registration(self, capsys, tmp_path):
        path = tmp_path / "whatever.csv"
        path.write_text("a,b\nx,1\n")
        assert main(["tables", "--csv", f"mytable={path}"]) == 0
        assert "mytable" in capsys.readouterr().out

    def test_describe_table(self, capsys):
        assert main(["describe", "flights", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "kind: memory" in out
        assert "carrier" in out and "string" in out and "numeric" in out
        assert "cached populations: none" in out

    def test_describe_unknown_table(self, capsys):
        assert main(["describe", "nope", "--rows", "5000"]) == 2
        assert "unknown table" in capsys.readouterr().err

    def test_describe_csv(self, capsys, tmp_path):
        path = tmp_path / "trips.csv"
        path.write_text("city,delay\nNYC,10\nLA,30\n")
        assert main(["describe", "trips", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kind: csv" in out and "delay" in out

    def test_experiments_registry_complete(self):
        # Every figure/table of the paper has a CLI entry.
        for expected in (
            "table1", "fig3a", "fig3b", "fig3c", "fig4", "fig5a", "fig5b",
            "fig5c", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "fig7c",
            "table3", "headline",
        ):
            assert expected in EXPERIMENTS


class TestStoreCLI:
    """`repro store build|ls|verify|gc` and the --store session flags."""

    @staticmethod
    def _write_csv(path):
        lines = ["g,v"]
        for i in range(400):
            lines.append(f"{'ab'[i % 2]},{(i % 2) * 40 + (i % 7)}.0")
        path.write_text("\n".join(lines) + "\n")

    def test_parser_store_subcommands(self):
        args = build_parser().parse_args(
            ["store", "build", "st", "--csv", "t.csv", "--table", "t",
             "--group-by", "g", "--value", "v"]
        )
        assert args.command == "store" and args.store_command == "build"
        assert args.store == "st" and args.table == "t"
        for sub in ("ls", "verify", "gc"):
            args = build_parser().parse_args(["store", sub, "st"])
            assert args.store_command == sub and args.store == "st"

    def test_parser_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_parser_query_store_flag(self):
        args = build_parser().parse_args(
            ["query", "SELECT g, AVG(v) FROM t GROUP BY g", "--store", "st"]
        )
        assert args.store == "st"
        default = build_parser().parse_args(
            ["query", "SELECT g, AVG(v) FROM t GROUP BY g"]
        )
        assert default.store is None

    def test_build_ls_verify_gc_roundtrip(self, capsys, tmp_path):
        csv, store = tmp_path / "t.csv", tmp_path / "store"
        self._write_csv(csv)

        assert main(["store", "build", str(store), "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "t: group by g, value v" in out and "needletail" in out

        assert main(["store", "ls", str(store)]) == 0
        out = capsys.readouterr().out
        assert "t" in out and "csv" in out

        assert main(["store", "verify", str(store)]) == 0
        assert "all checksums match" in capsys.readouterr().out

        (store / "segments" / "stray.seg.tmp").write_bytes(b"junk")
        assert main(["store", "gc", str(store)]) == 0
        out = capsys.readouterr().out
        assert "stray.seg.tmp" in out and "removed 1 orphaned" in out

    def test_verify_reports_corruption(self, capsys, tmp_path):
        import os

        csv, store = tmp_path / "t.csv", tmp_path / "store"
        self._write_csv(csv)
        assert main(["store", "build", str(store), "--csv", str(csv)]) == 0
        capsys.readouterr()

        segments = store / "segments"
        victim = segments / sorted(os.listdir(segments))[0]
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(blob)
        assert main(["store", "verify", str(store)]) == 1
        err = capsys.readouterr().err
        assert "checksum" in err and "--repair" in err

    def test_verify_repair_quarantines_and_store_stays_usable(self, capsys, tmp_path):
        import os

        csv, store = tmp_path / "t.csv", tmp_path / "store"
        self._write_csv(csv)
        assert main(["store", "build", str(store), "--csv", str(csv)]) == 0
        capsys.readouterr()

        segments = store / "segments"
        victim = segments / sorted(os.listdir(segments))[0]
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(blob)
        (segments / "stray.seg.tmp").write_bytes(b"junk")

        assert main(["store", "verify", str(store), "--repair"]) == 0
        out = capsys.readouterr().out
        assert f"quarantined {victim.name}" in out
        assert "removed orphan stray.seg.tmp" in out

        # The repaired store verifies clean and still answers queries
        # (the quarantined build rebuilds from its persisted source).
        assert main(["store", "verify", str(store)]) == 0
        capsys.readouterr()
        code = main(["query", "SELECT g, AVG(v) FROM t GROUP BY g",
                     "--store", str(store), "--seed", "3"])
        assert code == 0
        assert "AVG(v)" in capsys.readouterr().out

    def test_build_unknown_table(self, capsys, tmp_path):
        csv, store = tmp_path / "t.csv", tmp_path / "store"
        self._write_csv(csv)
        code = main(["store", "build", str(store), "--csv", str(csv),
                     "--table", "nope"])
        assert code == 2
        assert "unknown table" in capsys.readouterr().err

    def test_query_store_boots_warm(self, capsys, tmp_path):
        csv, store = tmp_path / "t.csv", tmp_path / "store"
        self._write_csv(csv)
        assert main(["store", "build", str(store), "--csv", str(csv)]) == 0
        capsys.readouterr()

        # no --csv: the table comes back from the store, not the filesystem
        code = main(["query", "SELECT g, AVG(v) FROM t GROUP BY g",
                     "--store", str(store), "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AVG(v)" in out and "guarantee:" in out
