"""Tests for the draw/charge accounting contract of EngineRun."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.base import RunStats
from repro.engines.memory import InMemoryEngine
from repro.needletail.cost import NeedletailCostModel
from tests.conftest import make_materialized_population


@pytest.fixture()
def engine() -> InMemoryEngine:
    pop = make_materialized_population([20.0, 80.0], sizes=5_000)
    return InMemoryEngine(pop, cost_model=NeedletailCostModel())


class TestDrawChargeContract:
    def test_draw_does_not_charge(self, engine):
        run = engine.open_run(seed=1)
        run.draw(0, 100)
        assert run.stats.total_samples == 0
        assert run.stats.io_seconds == 0.0

    def test_charge_without_draw_is_explicit(self, engine):
        # Charging is decoupled; algorithms must match it to consumed draws.
        run = engine.open_run(seed=2)
        run.charge(1, 50)
        assert run.stats.samples_per_group.tolist() == [0, 50]
        assert run.stats.io_seconds == pytest.approx(50 * 1.5e-6)

    def test_charge_zero_noop(self, engine):
        run = engine.open_run(seed=3)
        run.charge(0, 0)
        assert run.stats.total_samples == 0

    def test_negative_rejected(self, engine):
        run = engine.open_run(seed=4)
        with pytest.raises(ValueError):
            run.draw(0, -1)
        with pytest.raises(ValueError):
            run.charge(0, -1)

    def test_empty_draw(self, engine):
        run = engine.open_run(seed=5)
        assert run.draw(0, 0).shape == (0,)

    def test_exact_mean_charges_nothing(self, engine):
        run = engine.open_run(seed=6)
        mean = run.exact_mean(0)
        assert mean == pytest.approx(engine.population.groups[0].true_mean)
        assert run.stats.total_samples == 0

    def test_scan_charge(self, engine):
        run = engine.open_run(seed=7)
        run.charge_scan()
        assert run.stats.scanned_rows == engine.population.total_size
        assert run.stats.cpu_seconds > 0

    def test_metadata_passthrough(self, engine):
        run = engine.open_run(seed=8)
        assert run.k == 2
        assert run.c == 100.0
        assert run.sizes().tolist() == [5_000, 5_000]
        assert run.group_names() == ["g0", "g1"]


class TestRunStats:
    def test_merge(self):
        a = RunStats(np.array([1, 2]), io_seconds=1.0, cpu_seconds=0.5, scanned_rows=10)
        b = RunStats(np.array([3, 4]), io_seconds=0.5, cpu_seconds=0.25, scanned_rows=5)
        merged = a.merge(b)
        assert merged.samples_per_group.tolist() == [4, 6]
        assert merged.io_seconds == 1.5
        assert merged.cpu_seconds == 0.75
        assert merged.scanned_rows == 15
        assert merged.total_seconds == 2.25
        assert merged.total_samples == 10

    def test_independent_runs_have_independent_stats(self):
        pop = make_materialized_population([20.0, 80.0], sizes=1_000)
        engine = InMemoryEngine(pop, cost_model=NeedletailCostModel())
        run1 = engine.open_run(seed=1)
        run2 = engine.open_run(seed=2)
        run1.charge(0, 10)
        assert run2.stats.total_samples == 0
