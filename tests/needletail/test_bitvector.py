"""Tests for the word-packed bitmap with rank/select."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.needletail.bitvector import BitVector


def random_bits(n: int, density: float, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).random(n) < density


class TestConstruction:
    def test_roundtrip_bools(self):
        bits = random_bits(1000, 0.3)
        assert np.array_equal(BitVector.from_bools(bits).to_bools(), bits)

    def test_from_indices(self):
        bv = BitVector.from_indices(np.array([0, 5, 63, 64, 999]), 1000)
        assert bv.count() == 5
        assert bv.get(63) and bv.get(64) and not bv.get(1)

    def test_zeros_ones(self):
        assert BitVector.zeros(130).count() == 0
        assert BitVector.ones(130).count() == 130

    def test_tail_masked(self):
        # Length not a multiple of 64: bits beyond length must not count.
        bv = BitVector.ones(70)
        assert bv.count() == 70

    def test_word_count_validation(self):
        with pytest.raises(ValueError):
            BitVector(np.zeros(3, dtype=np.uint64), 64)

    def test_empty(self):
        bv = BitVector.from_bools(np.zeros(0, dtype=bool))
        assert len(bv) == 0 and bv.count() == 0


class TestMutation:
    def test_set_and_get(self):
        bv = BitVector.zeros(100)
        bv.set(42)
        assert bv.get(42) and bv.count() == 1
        bv.set(42, False)
        assert not bv.get(42) and bv.count() == 0

    def test_bounds_checked(self):
        bv = BitVector.zeros(10)
        with pytest.raises(IndexError):
            bv.get(10)
        with pytest.raises(IndexError):
            bv.set(-1)


class TestRankSelect:
    def test_rank_matches_prefix_sums(self):
        bits = random_bits(500, 0.4, seed=1)
        bv = BitVector.from_bools(bits)
        for i in (0, 1, 63, 64, 65, 250, 499, 500):
            assert bv.rank(i) == int(bits[:i].sum())

    def test_select_inverse_of_positions(self):
        bits = random_bits(2000, 0.2, seed=2)
        bv = BitVector.from_bools(bits)
        positions = np.flatnonzero(bits)
        for r in (0, 1, len(positions) // 2, len(positions) - 1):
            assert bv.select(r) == positions[r]

    def test_select_many_vectorized(self):
        bits = random_bits(5000, 0.5, seed=3)
        bv = BitVector.from_bools(bits)
        positions = np.flatnonzero(bits)
        ranks = np.random.default_rng(4).integers(0, len(positions), 300)
        assert np.array_equal(bv.select_many(ranks), positions[ranks])

    def test_select_out_of_range(self):
        bv = BitVector.from_bools(np.array([True, False, True]))
        with pytest.raises(IndexError):
            bv.select(2)
        with pytest.raises(IndexError):
            bv.select_many(np.array([-1]))

    def test_select_many_byte_lut_density_sweep(self):
        """The byte-level select table must be exact across densities,
        including all-ones words, sparse tails and word boundaries."""
        for density in (0.02, 0.5, 0.98):
            for length in (1, 7, 64, 65, 640, 1031):
                bits = random_bits(length, density, seed=int(density * 100) + length)
                positions = np.flatnonzero(bits)
                if positions.size == 0:
                    continue
                bv = BitVector.from_bools(bits)
                ranks = np.arange(positions.size)
                assert np.array_equal(bv.select_many(ranks), positions)

    def test_select_many_all_ones(self):
        bv = BitVector.ones(200)
        ranks = np.arange(200)
        assert np.array_equal(bv.select_many(ranks), ranks)

    def test_scalar_select_equals_select_many_everywhere(self):
        """The scalar fast path and the vectorized path agree, rank by rank,
        across densities and word-boundary lengths."""
        for density in (0.02, 0.5, 0.98):
            for length in (1, 64, 65, 640, 1031):
                bits = random_bits(length, density, seed=int(density * 100) + length)
                bv = BitVector.from_bools(bits)
                total = bv.count()
                if total == 0:
                    continue
                many = bv.select_many(np.arange(total))
                for r in range(total):
                    assert bv.select(r) == int(many[r])

    def test_scalar_select_avoids_the_array_door(self, monkeypatch):
        """Regression (ISSUE 5 satellite): ``select`` must not allocate a
        throwaway 1-element array by routing through ``select_many``."""
        bits = random_bits(500, 0.3, seed=6)
        bv = BitVector.from_bools(bits)
        positions = np.flatnonzero(bits)

        def boom(self, ranks):
            raise AssertionError("scalar select routed through select_many")

        monkeypatch.setattr(BitVector, "select_many", boom)
        for r in (0, 1, len(positions) // 2, len(positions) - 1):
            assert bv.select(r) == positions[r]

    def test_rank_select_duality(self):
        bits = random_bits(800, 0.3, seed=5)
        bv = BitVector.from_bools(bits)
        for r in range(0, bv.count(), 37):
            pos = bv.select(r)
            assert bv.rank(pos) == r
            assert bv.get(pos)

    @given(
        bits=st.lists(st.booleans(), min_size=1, max_size=300),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60)
    def test_rank_select_property(self, bits, seed):
        arr = np.array(bits, dtype=bool)
        bv = BitVector.from_bools(arr)
        positions = np.flatnonzero(arr)
        assert bv.count() == len(positions)
        if len(positions):
            r = seed % len(positions)
            assert bv.select(r) == positions[r]
        i = seed % (len(bits) + 1)
        assert bv.rank(i) == int(arr[:i].sum())


class TestLogicalOps:
    def test_ops_match_numpy(self):
        a_bits = random_bits(777, 0.5, seed=6)
        b_bits = random_bits(777, 0.5, seed=7)
        a, b = BitVector.from_bools(a_bits), BitVector.from_bools(b_bits)
        assert np.array_equal((a & b).to_bools(), a_bits & b_bits)
        assert np.array_equal((a | b).to_bools(), a_bits | b_bits)
        assert np.array_equal((a ^ b).to_bools(), a_bits ^ b_bits)
        assert np.array_equal((~a).to_bools(), ~a_bits)

    def test_invert_respects_tail(self):
        bv = BitVector.zeros(70)
        assert (~bv).count() == 70

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BitVector.zeros(10) & BitVector.zeros(11)

    def test_equality(self):
        bits = random_bits(100, 0.3, seed=8)
        assert BitVector.from_bools(bits) == BitVector.from_bools(bits)
        assert BitVector.from_bools(bits) != BitVector.zeros(100)


class TestSetPositions:
    def test_matches_flatnonzero(self):
        bits = random_bits(600, 0.25, seed=9)
        bv = BitVector.from_bools(bits)
        assert np.array_equal(bv.set_positions(), np.flatnonzero(bits))
