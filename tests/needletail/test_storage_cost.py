"""Tests for the simulated disk and the calibrated cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.needletail.cost import BlockCacheCostModel, NeedletailCostModel
from repro.needletail.storage import DiskParams, PageAccessModel, SimulatedDisk


class TestDiskParams:
    def test_defaults_match_paper(self):
        p = DiskParams()
        assert p.sequential_bandwidth == pytest.approx(800e6)
        assert p.block_bytes == 1 << 20

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskParams(sequential_bandwidth=0)
        with pytest.raises(ValueError):
            DiskParams(page_bytes=0)
        with pytest.raises(ValueError):
            DiskParams(random_read_seconds=-1)


class TestSimulatedDisk:
    def test_sequential_read_time(self):
        disk = SimulatedDisk()
        cost = disk.sequential_read(800_000_000)
        assert cost == pytest.approx(1.0)
        assert disk.io_seconds == pytest.approx(1.0)
        assert disk.bytes_read == 800_000_000

    def test_random_reads_accumulate(self):
        disk = SimulatedDisk(DiskParams(random_read_seconds=1e-3))
        disk.random_page_reads(10)
        assert disk.io_seconds == pytest.approx(1e-2)
        assert disk.random_reads == 10

    def test_reset(self):
        disk = SimulatedDisk()
        disk.sequential_read(1000)
        disk.reset()
        assert disk.io_seconds == 0 and disk.bytes_read == 0

    def test_negative_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            disk.sequential_read(-1)
        with pytest.raises(ValueError):
            disk.random_page_reads(-1)


class TestPageAccessModel:
    def test_expected_unique_bounds(self):
        model = PageAccessModel(total_rows=1_000_000, row_bytes=8, page_bytes=4096)
        assert model.expected_unique(0) == 0
        assert model.expected_unique(10) <= 10
        # Touching far more than P pages approaches P.
        assert model.expected_unique(10**7) == pytest.approx(model.total_pages, rel=1e-3)

    def test_new_unique_sums_to_expected(self):
        model = PageAccessModel(total_rows=100_000, row_bytes=8, page_bytes=4096)
        total = sum(model.new_unique(100) for _ in range(50))
        fresh = PageAccessModel(total_rows=100_000, row_bytes=8, page_bytes=4096)
        assert total == pytest.approx(fresh.expected_unique(5000))

    def test_validation(self):
        with pytest.raises(ValueError):
            PageAccessModel(0, 8, 4096)


class TestNeedletailCostModel:
    def test_sample_cost_linear(self):
        cm = NeedletailCostModel(io_per_sample=2e-6, cpu_per_sample=1e-6)
        io, cpu = cm.sample_cost(1_000_000)
        assert io == pytest.approx(2.0)
        assert cpu == pytest.approx(1.0)

    def test_scan_cost_matches_paper_rates(self):
        cm = NeedletailCostModel()
        # 1e9 rows of 8 bytes: 8 GB / 800 MB/s = 10 s I/O, 1e9/1e7 = 100 s CPU.
        io, cpu = cm.scan_cost(10**9, 8)
        assert io == pytest.approx(10.0)
        assert cpu == pytest.approx(100.0)
        assert cpu > io  # the paper: SCAN is CPU-bound

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            NeedletailCostModel(io_per_sample=-1)


class TestBlockCacheCostModel:
    def test_first_touches_cost_more(self):
        cm = BlockCacheCostModel(total_rows=100_000, row_bytes=8)
        first_io, _ = cm.sample_cost(1000)
        # Keep sampling: pages fill up, marginal I/O shrinks.
        for _ in range(50):
            cm.sample_cost(1000)
        later_io, _ = cm.sample_cost(1000)
        assert later_io < first_io

    def test_io_bounded_by_all_pages(self):
        cm = BlockCacheCostModel(total_rows=10_000, row_bytes=8)
        total_io = sum(cm.sample_cost(10_000)[0] for _ in range(20))
        max_io = cm._pages.total_pages * cm.params.random_read_seconds
        assert total_io <= max_io + 1e-9

    def test_scan_cost_stateless(self):
        cm = BlockCacheCostModel(total_rows=10_000, row_bytes=8)
        a = cm.scan_cost(10_000, 8)
        b = cm.scan_cost(10_000, 8)
        assert a[0] == pytest.approx(b[0])


class TestCostModelIntegration:
    def test_run_stats_accumulate(self):
        from repro.core.ifocus import run_ifocus
        from repro.engines.memory import InMemoryEngine
        from tests.conftest import make_materialized_population

        pop = make_materialized_population([20.0, 80.0], sizes=2000)
        engine = InMemoryEngine(pop, cost_model=NeedletailCostModel())
        res = run_ifocus(engine, delta=0.05, seed=1)
        expected_io = res.total_samples * 1.5e-6
        assert res.stats.io_seconds == pytest.approx(expected_io)
        assert np.array_equal(res.stats.samples_per_group, res.samples_per_group)
