"""Tests for the NEEDLETAIL sampling engine (index-backed retrieval)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifocus import run_ifocus
from repro.core.scan import run_scan
from repro.needletail.bitvector import BitVector
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Table
from repro.viz.properties import check_ordering


def flights_table(n: int = 30_000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    names = rng.choice(["AA", "JB", "UA", "DL"], size=n, p=[0.4, 0.3, 0.2, 0.1])
    base = {"AA": 30.0, "JB": 15.0, "UA": 85.0, "DL": 45.0}
    delay = np.clip(
        np.array([base[a] for a in names]) + rng.normal(0, 10, n), 0, 100
    )
    year = rng.integers(1990, 2000, n)
    return Table.from_dict("flights", {"name": names, "delay": delay, "year": year})


class TestConstruction:
    def test_groups_from_index(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        assert sorted(engine.population.group_names) == ["AA", "DL", "JB", "UA"]
        t = flights_table()
        for g in engine.population.groups:
            assert g.size == int((t.column("name") == g.name).sum())

    def test_true_means_match_groupby(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        for g in engine.population.groups:
            expected = t.column("delay")[t.column("name") == g.name].mean()
            assert g.true_mean == pytest.approx(expected)

    def test_c_inferred_when_omitted(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay")
        assert engine.c == pytest.approx(float(t.column("delay").max()))

    def test_row_bytes_from_table(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        assert engine.row_bytes == t.row_bytes


class TestSampling:
    def test_wor_draws_are_group_values(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        run = engine.open_run(seed=1, without_replacement=True)
        gid = engine.population.group_names.index("AA")
        draws = run.draw(gid, 500)
        aa_values = set(np.round(t.column("delay")[t.column("name") == "AA"], 9))
        assert all(round(v, 9) in aa_values for v in draws)

    def test_wor_no_duplicates_of_rowids(self):
        # Drawing the entire group without replacement returns each value's
        # multiset exactly (sorted draws == sorted group values).
        t = flights_table(n=2000)
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        run = engine.open_run(seed=2, without_replacement=True)
        gid = engine.population.group_names.index("DL")
        size = engine.population.groups[gid].size
        draws = run.draw(gid, size)
        expected = t.column("delay")[t.column("name") == "DL"]
        assert np.allclose(np.sort(draws), np.sort(expected))

    def test_wor_exhaustion_raises(self):
        engine = NeedletailEngine(flights_table(n=1000), "name", "delay", c=100.0)
        run = engine.open_run(seed=3, without_replacement=True)
        size = engine.population.groups[0].size
        run.draw(0, size)
        with pytest.raises(ValueError):
            run.draw(0, 1)

    def test_with_replacement_unbounded(self):
        engine = NeedletailEngine(flights_table(n=1000), "name", "delay", c=100.0)
        run = engine.open_run(seed=4, without_replacement=False)
        draws = run.draw(0, 5000)  # more than the group size - fine with WR
        assert draws.shape == (5000,)


class TestEndToEnd:
    def test_ifocus_orders_correctly(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        res = run_ifocus(engine, delta=0.05, seed=5)
        assert check_ordering(res.estimates, engine.population.true_means())

    def test_scan_exact(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        res = run_scan(engine)
        assert np.allclose(res.estimates, engine.population.true_means())
        assert res.stats.io_seconds > 0

    def test_predicate_restricts_groups(self):
        t = flights_table()
        predicate = BitVector.from_bools(t.column("year") >= 1995)
        engine = NeedletailEngine(t, "name", "delay", c=100.0, predicate=predicate)
        mask = t.column("year") >= 1995
        for g in engine.population.groups:
            expected = t.column("delay")[(t.column("name") == g.name) & mask]
            assert g.size == expected.shape[0]
            assert g.true_mean == pytest.approx(expected.mean())

    def test_predicate_eliminating_all_rows_raises(self):
        t = flights_table()
        predicate = BitVector.zeros(t.num_rows)
        with pytest.raises(ValueError):
            NeedletailEngine(t, "name", "delay", c=100.0, predicate=predicate)

    def test_index_storage_bytes(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        assert engine.index_storage_bytes(compressed=True) > 0
        assert engine.index_storage_bytes(compressed=False) > 0
