"""Tests for the NEEDLETAIL sampling engine (index-backed retrieval)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifocus import run_ifocus
from repro.core.scan import run_scan
from repro.needletail.bitvector import BitVector
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Table
from repro.viz.properties import check_ordering


def flights_table(n: int = 30_000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    names = rng.choice(["AA", "JB", "UA", "DL"], size=n, p=[0.4, 0.3, 0.2, 0.1])
    base = {"AA": 30.0, "JB": 15.0, "UA": 85.0, "DL": 45.0}
    delay = np.clip(
        np.array([base[a] for a in names]) + rng.normal(0, 10, n), 0, 100
    )
    year = rng.integers(1990, 2000, n)
    return Table.from_dict("flights", {"name": names, "delay": delay, "year": year})


class TestConstruction:
    def test_groups_from_index(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        assert sorted(engine.population.group_names) == ["AA", "DL", "JB", "UA"]
        t = flights_table()
        for g in engine.population.groups:
            assert g.size == int((t.column("name") == g.name).sum())

    def test_true_means_match_groupby(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        for g in engine.population.groups:
            expected = t.column("delay")[t.column("name") == g.name].mean()
            assert g.true_mean == pytest.approx(expected)

    def test_c_inferred_when_omitted(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay")
        assert engine.c == pytest.approx(float(t.column("delay").max()))

    def test_row_bytes_from_table(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        assert engine.row_bytes == t.row_bytes


class TestSampling:
    def test_wor_draws_are_group_values(self):
        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        run = engine.open_run(seed=1, without_replacement=True)
        gid = engine.population.group_names.index("AA")
        draws = run.draw(gid, 500)
        aa_values = set(np.round(t.column("delay")[t.column("name") == "AA"], 9))
        assert all(round(v, 9) in aa_values for v in draws)

    def test_wor_no_duplicates_of_rowids(self):
        # Drawing the entire group without replacement returns each value's
        # multiset exactly (sorted draws == sorted group values).
        t = flights_table(n=2000)
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        run = engine.open_run(seed=2, without_replacement=True)
        gid = engine.population.group_names.index("DL")
        size = engine.population.groups[gid].size
        draws = run.draw(gid, size)
        expected = t.column("delay")[t.column("name") == "DL"]
        assert np.allclose(np.sort(draws), np.sort(expected))

    def test_wor_exhaustion_raises(self):
        engine = NeedletailEngine(flights_table(n=1000), "name", "delay", c=100.0)
        run = engine.open_run(seed=3, without_replacement=True)
        size = engine.population.groups[0].size
        run.draw(0, size)
        with pytest.raises(ValueError):
            run.draw(0, 1)

    def test_with_replacement_unbounded(self):
        engine = NeedletailEngine(flights_table(n=1000), "name", "delay", c=100.0)
        run = engine.open_run(seed=4, without_replacement=False)
        draws = run.draw(0, 5000)  # more than the group size - fine with WR
        assert draws.shape == (5000,)


class TestEndToEnd:
    def test_ifocus_orders_correctly(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        res = run_ifocus(engine, delta=0.05, seed=5)
        assert check_ordering(res.estimates, engine.population.true_means())

    def test_scan_exact(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        res = run_scan(engine)
        assert np.allclose(res.estimates, engine.population.true_means())
        assert res.stats.io_seconds > 0

    def test_predicate_restricts_groups(self):
        t = flights_table()
        predicate = BitVector.from_bools(t.column("year") >= 1995)
        engine = NeedletailEngine(t, "name", "delay", c=100.0, predicate=predicate)
        mask = t.column("year") >= 1995
        for g in engine.population.groups:
            expected = t.column("delay")[(t.column("name") == g.name) & mask]
            assert g.size == expected.shape[0]
            assert g.true_mean == pytest.approx(expected.mean())

    def test_predicate_eliminating_all_rows_raises(self):
        t = flights_table()
        predicate = BitVector.zeros(t.num_rows)
        with pytest.raises(ValueError):
            NeedletailEngine(t, "name", "delay", c=100.0, predicate=predicate)

    def test_index_storage_bytes(self):
        engine = NeedletailEngine(flights_table(), "name", "delay", c=100.0)
        assert engine.index_storage_bytes(compressed=True) > 0
        assert engine.index_storage_bytes(compressed=False) > 0


class TestFusedSelectKernel:
    """The one-batched-select fusion in ``_IndexedBlockKernel`` is bit-exact
    with the per-group ``select_many`` loop it replaced (ISSUE 5 satellite)."""

    @pytest.mark.parametrize("predicate_year", [None, 1995])
    def test_fused_draw_block_matches_per_group_draws(self, predicate_year):
        t = flights_table()
        predicate = (
            None
            if predicate_year is None
            else BitVector.from_bools(t.column("year") >= predicate_year)
        )
        fused = NeedletailEngine(t, "name", "delay", c=100.0, predicate=predicate)
        loop = NeedletailEngine(t, "name", "delay", c=100.0, predicate=predicate)
        run_fused = fused.open_run(seed=3)
        run_loop = loop.open_run(seed=3)
        gids = np.arange(fused.k)
        # Interleave fused blocks and sequential draws so shared stream
        # state advances identically through both doors.
        block = run_fused.draw_block(gids, 40)
        for j, gid in enumerate(gids):
            assert np.array_equal(block[:, j], run_loop.draw(int(gid), 40))
        sub = gids[::2]
        block = run_fused.draw_block(sub, 7)
        for j, gid in enumerate(sub):
            assert np.array_equal(block[:, j], run_loop.draw(int(gid), 7))

    def test_fused_select_structure_matches_per_group_select_many(self):
        from repro.needletail.engine import _FusedSelect

        t = flights_table()
        engine = NeedletailEngine(t, "name", "delay", c=100.0)
        selectors = [g._selector for g in engine.population.groups]
        fused = _FusedSelect(selectors)
        assert fused.ok
        rng = np.random.default_rng(0)
        sizes = np.array([g.size for g in engine.population.groups])
        count = 64
        slots = np.arange(len(selectors), dtype=np.int64)
        ranks = np.stack(
            [rng.integers(0, n, size=count) for n in sizes]
        ).astype(np.int64)
        rowids = fused.select(slots, ranks)
        for j, sel in enumerate(selectors):
            assert np.array_equal(rowids[j], sel.select_many(ranks[j]))
        # A batch touching only a subset of the slots, out of order.
        subset = np.array([2, 0], dtype=np.int64)
        rowids = fused.select(subset, ranks[subset])
        for row, slot in zip(rowids, subset):
            assert np.array_equal(
                row, selectors[int(slot)].select_many(ranks[int(slot)])
            )

    def test_non_bitvector_selector_falls_back_to_per_group(self):
        from repro.needletail.engine import _FusedSelect

        class OpaqueSelector:
            def count(self):
                return 1

        fused = _FusedSelect([OpaqueSelector()])
        assert not fused.ok
