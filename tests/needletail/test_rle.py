"""Tests for the run-length-compressed bitmap."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.needletail.bitvector import BitVector
from repro.needletail.rle import RunLengthBitmap


def clustered_bits(n: int = 1000) -> np.ndarray:
    bits = np.zeros(n, dtype=bool)
    bits[100:300] = True
    bits[600:650] = True
    return bits


class TestRoundtrip:
    def test_bools_roundtrip(self):
        bits = clustered_bits()
        rl = RunLengthBitmap.from_bools(bits)
        assert np.array_equal(rl.to_bools(), bits)
        assert rl.num_runs == 5

    def test_bitvector_roundtrip(self):
        bits = clustered_bits()
        bv = BitVector.from_bools(bits)
        rl = RunLengthBitmap.from_bitvector(bv)
        assert rl.to_bitvector() == bv

    def test_all_zero_all_one(self):
        assert RunLengthBitmap.zeros(50).count() == 0
        assert RunLengthBitmap.ones(50).count() == 50
        assert RunLengthBitmap.ones(50).num_runs == 1

    def test_empty(self):
        rl = RunLengthBitmap.from_bools(np.zeros(0, dtype=bool))
        assert len(rl) == 0 and rl.count() == 0

    @given(bits=st.lists(st.booleans(), min_size=0, max_size=200))
    @settings(max_examples=100)
    def test_roundtrip_property(self, bits):
        arr = np.array(bits, dtype=bool)
        rl = RunLengthBitmap.from_bools(arr)
        assert np.array_equal(rl.to_bools(), arr)
        assert rl.count() == int(arr.sum())


class TestAccessors:
    def test_get(self):
        bits = clustered_bits()
        rl = RunLengthBitmap.from_bools(bits)
        for i in (0, 99, 100, 299, 300, 599, 649, 999):
            assert rl.get(i) == bits[i]
        with pytest.raises(IndexError):
            rl.get(1000)

    def test_rank_matches_prefix(self):
        bits = clustered_bits()
        rl = RunLengthBitmap.from_bools(bits)
        for i in (0, 50, 100, 250, 300, 625, 1000):
            assert rl.rank(i) == int(bits[:i].sum())

    def test_select_matches_positions(self):
        bits = clustered_bits()
        rl = RunLengthBitmap.from_bools(bits)
        positions = np.flatnonzero(bits)
        ranks = np.array([0, 10, 199, 200, 249])
        assert np.array_equal(rl.select_many(ranks), positions[ranks])
        with pytest.raises(IndexError):
            rl.select(250)

    def test_scalar_select_equals_select_many_everywhere(self):
        bits = clustered_bits()
        rl = RunLengthBitmap.from_bools(bits)
        total = rl.count()
        many = rl.select_many(np.arange(total))
        for r in range(0, total, 7):
            assert rl.select(r) == int(many[r])
        with pytest.raises(IndexError):
            rl.select(-1)

    def test_scalar_select_avoids_the_array_door(self, monkeypatch):
        """Regression (ISSUE 5 satellite): the scalar path must not build a
        throwaway 1-element array via ``select_many``."""
        bits = clustered_bits()
        rl = RunLengthBitmap.from_bools(bits)
        positions = np.flatnonzero(bits)

        def boom(self, ranks):
            raise AssertionError("scalar select routed through select_many")

        monkeypatch.setattr(RunLengthBitmap, "select_many", boom)
        for r in (0, 10, 199, 249):
            assert rl.select(r) == positions[r]


class TestLogicalOps:
    @given(
        a=st.lists(st.booleans(), min_size=1, max_size=120),
        b_seed=st.integers(0, 1000),
    )
    @settings(max_examples=100)
    def test_ops_match_numpy(self, a, b_seed):
        a_arr = np.array(a, dtype=bool)
        b_arr = np.random.default_rng(b_seed).random(len(a)) < 0.5
        ra, rb = RunLengthBitmap.from_bools(a_arr), RunLengthBitmap.from_bools(b_arr)
        assert np.array_equal((ra & rb).to_bools(), a_arr & b_arr)
        assert np.array_equal((ra | rb).to_bools(), a_arr | b_arr)
        assert np.array_equal((ra ^ rb).to_bools(), a_arr ^ b_arr)
        assert np.array_equal((~ra).to_bools(), ~a_arr)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RunLengthBitmap.zeros(5) & RunLengthBitmap.zeros(6)


class TestCompression:
    def test_clustered_compresses(self):
        bits = np.zeros(1_000_000, dtype=bool)
        bits[:250_000] = True  # sorted low-cardinality column
        rl = RunLengthBitmap.from_bools(bits)
        assert rl.storage_bytes() < 100
        assert rl.compression_ratio() > 1000

    def test_random_does_not_compress(self):
        bits = np.random.default_rng(0).random(10_000) < 0.5
        rl = RunLengthBitmap.from_bools(bits)
        assert rl.compression_ratio() < 1.0  # RLE loses on random data

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            RunLengthBitmap(np.array([0]), True, 10)  # boundary at 0 invalid
        with pytest.raises(ValueError):
            RunLengthBitmap(np.array([5, 5]), True, 10)  # not increasing
