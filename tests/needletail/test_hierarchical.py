"""Tests for the hierarchical (tree-indexed) bitmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.needletail.bitvector import BitVector
from repro.needletail.hierarchical import HierarchicalBitmap


def random_bits(n: int, density: float = 0.3, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).random(n) < density


class TestSelect:
    @pytest.mark.parametrize("fanout", [2, 4, 64])
    def test_select_matches_flat(self, fanout):
        bits = random_bits(10_000, 0.3, seed=1)
        hb = HierarchicalBitmap.from_bools(bits, fanout=fanout)
        positions = np.flatnonzero(bits)
        for r in range(0, len(positions), 517):
            assert hb.select(r) == positions[r]

    def test_select_many_matches_bitvector(self):
        bits = random_bits(5_000, 0.4, seed=2)
        hb = HierarchicalBitmap.from_bools(bits)
        bv = BitVector.from_bools(bits)
        ranks = np.random.default_rng(3).integers(0, bv.count(), 200)
        assert np.array_equal(hb.select_many(ranks), bv.select_many(ranks))
        # Small batches take the tree path; results must agree too.
        small = ranks[:8]
        assert np.array_equal(hb.select_many(small), bv.select_many(small))

    def test_select_out_of_range(self):
        hb = HierarchicalBitmap.from_bools(np.array([True, False]))
        with pytest.raises(IndexError):
            hb.select(1)

    def test_dense_and_sparse(self):
        for density in (0.01, 0.99):
            bits = random_bits(4_096, density, seed=4)
            hb = HierarchicalBitmap.from_bools(bits, fanout=8)
            positions = np.flatnonzero(bits)
            if len(positions):
                assert hb.select(0) == positions[0]
                assert hb.select(len(positions) - 1) == positions[-1]


class TestStructure:
    def test_depth_grows_with_size(self):
        small = HierarchicalBitmap.from_bools(random_bits(64), fanout=4)
        large = HierarchicalBitmap.from_bools(random_bits(1_000_000), fanout=4)
        assert large.depth > small.depth

    def test_count(self):
        bits = random_bits(3_000, 0.2, seed=5)
        assert HierarchicalBitmap.from_bools(bits).count() == int(bits.sum())

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            HierarchicalBitmap.from_bools(np.array([True]), fanout=1)

    def test_from_indices(self):
        hb = HierarchicalBitmap.from_indices(np.array([3, 900]), 1000)
        assert hb.count() == 2
        assert hb.select(1) == 900


class TestUpdate:
    def test_point_update_repairs_counts(self):
        bits = random_bits(2_000, 0.3, seed=6)
        hb = HierarchicalBitmap.from_bools(bits, fanout=4)
        hb.update(150, not bits[150])
        bits[150] = not bits[150]
        assert hb.count() == int(bits.sum())
        positions = np.flatnonzero(bits)
        for r in (0, len(positions) // 2, len(positions) - 1):
            assert hb.select(r) == positions[r]

    def test_noop_update(self):
        bits = random_bits(100, 0.5, seed=7)
        hb = HierarchicalBitmap.from_bools(bits)
        before = hb.count()
        hb.update(3, bits[3])
        assert hb.count() == before

    def test_rank_delegates(self):
        bits = random_bits(500, 0.3, seed=8)
        hb = HierarchicalBitmap.from_bools(bits)
        assert hb.rank(250) == int(bits[:250].sum())
