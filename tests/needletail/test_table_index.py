"""Tests for the row-store table and the per-value bitmap index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.needletail.bitvector import BitVector
from repro.needletail.index import BitmapIndex
from repro.needletail.table import Column, Table


def sample_table(n: int = 5_000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        "t",
        {
            "grp": rng.choice(["a", "b", "c"], size=n, p=[0.5, 0.3, 0.2]),
            "val": rng.uniform(0, 100, n),
            "year": rng.integers(1990, 2000, n),
        },
    )


class TestTable:
    def test_basic_shape(self):
        t = sample_table()
        assert t.num_rows == 5_000
        assert set(t.column_names) == {"grp", "val", "year"}
        assert len(t) == 5_000

    def test_row_bytes(self):
        t = sample_table()
        assert t.row_bytes == sum(
            t.column(c).dtype.itemsize for c in t.column_names
        )
        assert t.total_bytes == t.row_bytes * t.num_rows

    def test_distinct(self):
        t = sample_table()
        assert t.distinct("grp").tolist() == ["a", "b", "c"]

    def test_filter(self):
        t = sample_table()
        mask = t.column("year") >= 1995
        ft = t.filter(mask)
        assert ft.num_rows == int(mask.sum())
        assert np.all(ft.column("year") >= 1995)

    def test_filter_shape_validation(self):
        t = sample_table()
        with pytest.raises(ValueError):
            t.filter(np.ones(3, dtype=bool))

    def test_missing_column(self):
        t = sample_table()
        with pytest.raises(KeyError):
            t.column("nope")
        assert "nope" not in t and "grp" in t

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            Table("t", [])
        with pytest.raises(ValueError):
            Table(
                "t",
                [
                    Column("a", np.zeros(3), 8),
                    Column("b", np.zeros(4), 8),
                ],
            )
        with pytest.raises(ValueError):
            Table("t", [Column("a", np.zeros(3), 8), Column("a", np.zeros(3), 8)])


class TestBitmapIndex:
    def test_counts_match_groupby(self):
        t = sample_table()
        idx = BitmapIndex(t, "grp")
        grp = t.column("grp")
        for key in ("a", "b", "c"):
            assert idx.count_for(key) == int((grp == key).sum())
        assert idx.cardinality == 3

    def test_rowids_partition_table(self):
        t = sample_table()
        idx = BitmapIndex(t, "grp")
        all_ids = np.concatenate([idx.rowids_for(k) for k in ("a", "b", "c")])
        assert np.array_equal(np.sort(all_ids), np.arange(t.num_rows))

    def test_rowids_match_values(self):
        t = sample_table()
        idx = BitmapIndex(t, "grp")
        grp = t.column("grp")
        for key in ("a", "b"):
            assert np.all(grp[idx.rowids_for(key)] == key)

    def test_sample_rowids_are_selects(self):
        t = sample_table()
        idx = BitmapIndex(t, "grp")
        positions = idx.rowids_for("b")
        ranks = np.array([0, 5, len(positions) - 1])
        assert np.array_equal(idx.sample_rowids("b", ranks), positions[ranks])

    def test_numeric_keys(self):
        t = sample_table()
        idx = BitmapIndex(t, "year")
        assert idx.cardinality == 10
        assert 1995 in idx
        assert idx.count_for(1995) == int((t.column("year") == 1995).sum())

    def test_unknown_key(self):
        idx = BitmapIndex(sample_table(), "grp")
        with pytest.raises(KeyError):
            idx.bitmap_for("z")

    def test_predicate_restriction(self):
        t = sample_table()
        idx = BitmapIndex(t, "grp")
        predicate = BitVector.from_bools(t.column("year") >= 1995)
        restricted = idx.restricted_bitvector("a", predicate)
        expected = (t.column("grp") == "a") & (t.column("year") >= 1995)
        assert restricted.count() == int(expected.sum())
        assert np.array_equal(restricted.set_positions(), np.flatnonzero(expected))

    def test_storage_accounting(self):
        t = sample_table()
        idx = BitmapIndex(t, "grp")
        assert idx.storage_bytes(compressed=True) > 0
        assert idx.storage_bytes(compressed=False) == 3 * ((t.num_rows + 7) // 8)

    def test_compressed_roundtrip(self):
        t = sample_table(n=500)
        idx = BitmapIndex(t, "grp")
        for key, rl in idx.compressed().items():
            assert rl.count() == idx.count_for(key)
