"""Unit tests for the bench regression guard (scripts/check_bench.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _write(path: Path, entries: dict[str, float]) -> Path:
    path.write_text(
        json.dumps(
            {
                "suite": "micro",
                "entries": [
                    {"op": op, "k": None, "median_seconds": median}
                    for op, median in entries.items()
                ],
            }
        )
    )
    return path


@pytest.fixture()
def files(tmp_path):
    def make(fresh: dict[str, float], baseline: dict[str, float]):
        return (
            _write(tmp_path / "fresh.json", fresh),
            _write(tmp_path / "baseline.json", baseline),
        )

    return make


class TestCompare:
    def test_within_threshold_passes(self, files):
        fresh, baseline = files({"op_a": 0.010, "op_b": 0.019}, {"op_a": 0.010, "op_b": 0.010})
        rc = check_bench.main([str(fresh), "--baseline", str(baseline)])
        assert rc == 0

    def test_regression_fails(self, files, capsys):
        fresh, baseline = files({"op_a": 0.025}, {"op_a": 0.010})
        rc = check_bench.main([str(fresh), "--baseline", str(baseline)])
        assert rc == 1
        assert "op_a" in capsys.readouterr().err

    def test_keys_absent_on_either_side_are_skipped(self, files):
        # fresh-only op (no baseline) and baseline-only op (not in smoke run)
        # must both be ignored, even at pathological ratios.
        fresh, baseline = files(
            {"shared": 0.010, "fresh_only": 99.0},
            {"shared": 0.009, "committed_only": 1e-9},
        )
        rc = check_bench.main([str(fresh), "--baseline", str(baseline)])
        assert rc == 0

    def test_custom_threshold(self, files):
        fresh, baseline = files({"op_a": 0.015}, {"op_a": 0.010})
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 0
        assert (
            check_bench.main(
                [str(fresh), "--baseline", str(baseline), "--threshold", "1.2"]
            )
            == 1
        )

    def test_non_positive_and_malformed_entries_ignored(self, files):
        fresh, baseline = files({"op_a": 0.010, "zero": 0.0}, {"op_a": 0.010, "zero": 1.0})
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 0

    def test_missing_file_is_a_distinct_error(self, files, tmp_path):
        fresh, baseline = files({"op_a": 0.010}, {"op_a": 0.010})
        assert check_bench.main([str(tmp_path / "nope.json"), "--baseline", str(baseline)]) == 2

    def test_empty_fresh_run_is_an_error(self, files, tmp_path):
        fresh, baseline = files({}, {"op_a": 0.010})
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 2

    def test_uniformly_slower_machine_is_calibrated_away(self, files):
        # A shared runner 2.5x slower than the baseline machine across the
        # board must stay green (>=5 shared ops turn on calibration).
        base = {f"op_{i}": 0.010 for i in range(6)}
        fresh, baseline = files({op: v * 2.5 for op, v in base.items()}, base)
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 0
        assert (
            check_bench.main(
                [str(fresh), "--baseline", str(baseline), "--no-calibrate"]
            )
            == 1
        )

    def test_single_regression_not_hidden_by_calibration(self, files, capsys):
        # One op 3x slower than the rest of the suite fails even on a
        # machine that is uniformly 1.5x slower.
        base = {f"op_{i}": 0.010 for i in range(6)}
        fresh_vals = {op: v * 1.5 for op, v in base.items()}
        fresh_vals["op_0"] = 0.010 * 1.5 * 3.0
        fresh, baseline = files(fresh_vals, base)
        rc = check_bench.main([str(fresh), "--baseline", str(baseline)])
        assert rc == 1
        assert "op_0" in capsys.readouterr().err

    def test_widespread_speedup_does_not_fail_unchanged_ops(self, files):
        # Most ops 3x faster (stale baseline after an optimization), one op
        # unchanged: the clamped machine factor must not flag the unchanged
        # op as a relative regression.
        base = {f"op_{i}": 0.010 for i in range(6)}
        fresh_vals = {op: v / 3.0 for op, v in base.items()}
        fresh_vals["op_5"] = 0.010
        fresh, baseline = files(fresh_vals, base)
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 0

    def test_default_baseline_is_committed_bench_micro(self):
        committed = check_bench.load_entries(
            Path(__file__).resolve().parents[1] / "BENCH_micro.json"
        )
        assert committed, "committed BENCH_micro.json should have entries"


class TestUnguardedEntries:
    def test_guard_false_entries_never_arm_the_guard(self, tmp_path):
        """Machine-topology ops (``"guard": false``) are excluded from both
        comparison and calibration, even at pathological ratios."""

        def write(path, rows):
            path.write_text(json.dumps({"suite": "micro", "entries": rows}))
            return path

        fresh = write(
            tmp_path / "fresh.json",
            [
                {"op": "op_a", "median_seconds": 0.010},
                {"op": "procpool_draw", "median_seconds": 99.0, "guard": False},
            ],
        )
        baseline = write(
            tmp_path / "baseline.json",
            [
                {"op": "op_a", "median_seconds": 0.010},
                {"op": "procpool_draw", "median_seconds": 1e-9, "guard": False},
            ],
        )
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 0
        assert check_bench.load_entries(fresh) == {"op_a": 0.010}

    def test_guard_true_and_absent_both_compare(self, tmp_path):
        def write(path, rows):
            path.write_text(json.dumps({"suite": "micro", "entries": rows}))
            return path

        fresh = write(
            tmp_path / "fresh.json",
            [{"op": "op_a", "median_seconds": 0.030, "guard": True}],
        )
        baseline = write(
            tmp_path / "baseline.json", [{"op": "op_a", "median_seconds": 0.010}]
        )
        assert check_bench.main([str(fresh), "--baseline", str(baseline)]) == 1


class TestAgainstRealSchema:
    def test_load_entries_reads_bench_export_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "suite": "micro",
                    "machine": "x86_64",
                    "entries": [
                        {"op": "draw_block_k1000", "k": 1000, "median_seconds": 4.7e-4},
                        {"op": "broken", "k": None},
                    ],
                }
            )
        )
        assert check_bench.load_entries(path) == {"draw_block_k1000": 4.7e-4}
