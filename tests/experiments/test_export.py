"""Tests for figure export (CSV/JSON/txt)."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.experiments.export import figure_to_csv, figure_to_json, write_figure
from repro.experiments.report import FigureResult


@pytest.fixture()
def fig() -> FigureResult:
    return FigureResult(
        figure="figX",
        title="demo",
        headers=["size", "pct"],
        rows=[[10, np.float64(1.5)], [100, np.float64(0.25)]],
        notes=["a note"],
    )


class TestCsv:
    def test_roundtrip(self, fig):
        text = figure_to_csv(fig)
        rows = list(csv.reader(text.splitlines()))
        assert rows[0] == ["size", "pct"]
        assert rows[1] == ["10", "1.5"]
        assert len(rows) == 3


class TestJson:
    def test_payload(self, fig):
        payload = json.loads(figure_to_json(fig))
        assert payload["figure"] == "figX"
        assert payload["headers"] == ["size", "pct"]
        assert payload["rows"][1] == [100, 0.25]
        assert payload["notes"] == ["a note"]

    def test_numpy_scalars_serialized(self, fig):
        # Must not raise on numpy float64 cells.
        json.loads(figure_to_json(fig))


class TestWrite:
    def test_writes_all_formats(self, fig, tmp_path):
        paths = write_figure(fig, tmp_path, formats=("csv", "json", "txt"))
        assert sorted(p.name for p in paths) == ["figX.csv", "figX.json", "figX.txt"]
        for p in paths:
            assert p.read_text()

    def test_unknown_format(self, fig, tmp_path):
        with pytest.raises(ValueError):
            write_figure(fig, tmp_path, formats=("xml",))

    def test_creates_directory(self, fig, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_figure(fig, target, formats=("csv",))
        assert (target / "figX.csv").exists()
