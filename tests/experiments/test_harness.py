"""Tests for the experiment harness (config, runner, report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_mixture_dataset
from repro.experiments.config import PAPER, SMOKE, Scale, current_scale
from repro.experiments.report import FigureResult, format_table
from repro.experiments.runner import TrialResult, mean_percentage_sampled, run_trial, run_trials


class TestConfig:
    def test_smoke_vs_paper(self):
        assert SMOKE.trials < PAPER.trials
        assert max(SMOKE.dataset_sizes) <= max(PAPER.dataset_sizes)
        assert PAPER.dataset_sizes[-1] == 10**10

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale() is PAPER
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale() is SMOKE
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_scale_is_frozen(self):
        with pytest.raises(AttributeError):
            SMOKE.trials = 1  # type: ignore[misc]


class TestRunner:
    def test_run_trial_fields(self):
        pop = make_mixture_dataset(k=5, total_size=10_000, seed=1)
        trial = run_trial(pop, "ifocus", delta=0.05, seed=1)
        assert trial.algorithm == "ifocus"
        assert trial.dataset_size == 10_000
        assert 0 < trial.total_samples <= 10_000
        assert trial.percent_sampled == pytest.approx(
            100 * trial.total_samples / 10_000
        )
        assert trial.total_seconds == trial.io_seconds + trial.cpu_seconds
        assert trial.io_seconds > 0  # default cost model charges samples

    def test_r_variant_graded_with_resolution(self):
        pop = make_mixture_dataset(k=5, total_size=10_000, seed=2)
        trial = run_trial(pop, "ifocusr", delta=0.05, resolution=2.0, seed=2)
        assert isinstance(trial.correct, bool)

    def test_run_trials_fresh_datasets(self):
        results = run_trials(
            lambda seed: make_mixture_dataset(k=5, total_size=10_000, seed=seed),
            "ifocus",
            trials=3,
            delta=0.05,
            seed=0,
        )
        assert len(results) == 3
        # Fresh datasets per trial: difficulties differ.
        assert len({r.difficulty for r in results}) > 1

    def test_mean_percentage(self):
        trials = [
            TrialResult("a", 100, 10, 10.0, True, 0, 0, 1, 1.0),
            TrialResult("a", 100, 30, 30.0, True, 0, 0, 1, 1.0),
        ]
        assert mean_percentage_sampled(trials) == pytest.approx(20.0)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.00012]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "0.00012" in out

    def test_figure_result_column(self):
        fig = FigureResult(
            figure="f", title="t", headers=["x", "y"], rows=[[1, 2], [3, 4]]
        )
        assert fig.column("y") == [2, 4]
        assert "f: t" in fig.format()

    def test_figure_notes_rendered(self):
        fig = FigureResult(
            figure="f", title="t", headers=["x"], rows=[[1]], notes=["hello"]
        )
        assert "note: hello" in fig.format()

    def test_bool_formatting(self):
        assert "yes" in format_table(["ok"], [[True]])
