"""Tiny-scale smoke tests for every figure/table function.

These run each experiment at a micro scale (much smaller than the benchmark
smoke scale) so the plain test suite stays fast while still executing every
code path end to end.  Shape assertions live in the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_batching,
    ablation_cost_model,
    ablation_kappa,
    ablation_removal_policy,
    headline_claims,
    fig3a_percentage_vs_size,
    fig3b_samples_vs_time,
    fig3c_percentage_vs_delta,
    fig4_runtime_vs_size,
    fig5a_heuristic_accuracy,
    fig5b_heuristic_accuracy_hard,
    fig5c_active_groups_convergence,
    fig6a_incorrect_pairs,
    fig6b_percentage_vs_groups,
    fig6c_difficulty_vs_groups,
    fig7a_percentage_vs_skew,
    fig7b_percentage_vs_std,
    fig7c_difficulty_vs_std,
    table1_execution_trace,
    table3_flights_runtimes,
)
from repro.experiments.config import Scale

MICRO = Scale(
    name="micro",
    dataset_sizes=(20_000, 50_000),
    default_size=20_000,
    trials=2,
    group_counts=(3, 5),
    skew_fractions=(0.2, 0.8),
    deltas=(0.05, 0.5),
    stds=(2.0, 10.0),
    heuristic_factors=(1.0, 16.0),
    hard_factors=(1.0, 1.2),
    hard_gamma=1.0,
    flights_sizes=(10**4, 10**5),
    groups_size_each=4_000,
)

ALL_FIGS = [
    fig3a_percentage_vs_size,
    fig3b_samples_vs_time,
    fig3c_percentage_vs_delta,
    fig4_runtime_vs_size,
    fig5a_heuristic_accuracy,
    fig5b_heuristic_accuracy_hard,
    fig5c_active_groups_convergence,
    fig6a_incorrect_pairs,
    fig6b_percentage_vs_groups,
    fig6c_difficulty_vs_groups,
    fig7a_percentage_vs_skew,
    fig7b_percentage_vs_std,
    fig7c_difficulty_vs_std,
    table1_execution_trace,
    table3_flights_runtimes,
    headline_claims,
    ablation_batching,
    ablation_cost_model,
    ablation_kappa,
    ablation_removal_policy,
]


@pytest.mark.integration
@pytest.mark.parametrize("fig_fn", ALL_FIGS, ids=lambda f: f.__name__)
def test_figure_runs_and_formats(fig_fn):
    fig = fig_fn(MICRO)
    assert fig.rows, fig.figure
    text = fig.format()
    assert fig.figure in text
    # Every row matches the header width.
    for row in fig.rows:
        assert len(row) == len(fig.headers)
