"""Chaos suite: seeded fault plans against the process executor.

The acceptance bar (ISSUE 6):

* a seeded ``kill_worker`` plan fired against every process-shareable
  sampler kind yields **bit-identical** draws to an uninjured twin, with
  the shm registry empty afterwards;
* ``kill_mid_command`` - SIGKILL while the parent is blocked on the result
  pipe - recovers (or raises) but never hangs;
* a corrupted build handshake is retried with a fresh worker;
* a worker that never completes its handshake trips the timeout instead of
  blocking pool construction forever;
* ``shutdown(timeout=...)`` escalates terminate -> kill against ONE shared
  deadline, so even SIGSTOPped workers cannot stall teardown;
* repeated crashes open the circuit breaker (new runs degrade to threads)
  and an exhausted restart budget degrades the *current* run per-shard -
  both still bit-identical, both surfaced via ``resilience_events()``.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.data.distributions import Mixture, PointMass, TwoPoint, UniformValues
from repro.data.population import Population, VirtualGroup
from repro.engines.memory import InMemoryEngine
from repro.engines.procpool import ProcessShardPool
from repro.engines.sharded import ShardedEngine
from repro.engines.shm import REGISTRY
from repro.errors import WorkerCrashed
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Column, Table
from repro.resilience.faults import Fault, FaultPlan, inject, seed_from_env
from tests.conftest import make_materialized_population

K = 8


def _materialized_engine() -> InMemoryEngine:
    pop = make_materialized_population(
        [10.0 + 8.0 * i for i in range(K)], sizes=400, seed=5
    )
    return InMemoryEngine(pop)


def _fusable_virtual_engine() -> InMemoryEngine:
    groups = [
        VirtualGroup("uniform", UniformValues(10.0, 90.0), 10**6),
        VirtualGroup("twopoint", TwoPoint(0.4, 0.0, 100.0), 10**6),
        VirtualGroup("point", PointMass(42.0), 10**6),
        VirtualGroup(
            "mixture",
            Mixture([UniformValues(0.0, 10.0), TwoPoint(0.5, 0.0, 100.0)]),
            10**6,
        ),
    ]
    return InMemoryEngine(Population(groups=groups, c=100.0))


def _needletail_engine() -> NeedletailEngine:
    rng = np.random.default_rng(11)
    n = 6000
    table = Table(
        "t",
        [
            Column("grp", rng.integers(0, 6, size=n), 4),
            Column("val", rng.uniform(0.0, 100.0, size=n), 8),
        ],
    )
    return NeedletailEngine(table, group_by="grp", value_column="val", c=100.0)


#: Every sampler kind that can cross the process boundary (the chaos matrix).
SHAREABLE_BUILDERS = {
    "materialized": _materialized_engine,
    "fusable_virtual": _fusable_virtual_engine,
    "needletail": _needletail_engine,
}


def _sharded(kind: str, **kwargs) -> ShardedEngine:
    return ShardedEngine(
        SHAREABLE_BUILDERS[kind](), shards=2, executor="process", **kwargs
    )


def _drain(run, k: int) -> list[np.ndarray]:
    """Enough commands that any seeded ``at < 5`` is guaranteed to fire
    (open_run is command index 0, then six fused draws per shard)."""
    gids = np.arange(k)
    out = [np.array(run.draw_block(gids, 4)) for _ in range(6)]
    out.append(np.array(run.draw(1, 2)))
    out.append(np.array(run.draw(0, 3)))
    return out


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every chaos test must leave the shm registry exactly as found."""
    baseline = REGISTRY.active_count()
    yield
    assert REGISTRY.active_count() == baseline, (
        f"leaked shared-memory segments: {REGISTRY.active_names()}"
    )


class TestSeededKills:
    @pytest.mark.parametrize("kind", sorted(SHAREABLE_BUILDERS))
    def test_seeded_kill_recovers_bit_identically(self, kind):
        """The headline chaos invariant: a seeded SIGKILL mid-query changes
        *nothing* about the answer, for every shareable sampler kind."""
        seed = seed_from_env(default=20260807)
        plan = FaultPlan.seeded(seed, kind="kill_worker", shards=2, max_at=5)

        baseline = _sharded(kind)
        expected = _drain(baseline.open_run(seed=0), baseline.k)
        baseline.close()

        engine = _sharded(kind)
        with inject(plan):
            got = _drain(engine.open_run(seed=0), engine.k)
        assert plan.fired(), "the seeded fault never triggered"
        assert any("respawned" in e for e in engine.resilience_events())
        engine.close()

        for want, have in zip(expected, got):
            np.testing.assert_array_equal(want, have)

    def test_kill_mid_command_never_hangs(self):
        """SIGKILL *after* the command was sent, while the parent is blocked
        on the result pipe: the reply must come from log replay, never from
        waiting on a dead worker."""
        baseline = _sharded("materialized")
        expected = _drain(baseline.open_run(seed=0), baseline.k)
        baseline.close()

        plan = FaultPlan([Fault("kill_mid_command", shard=0, at=2)])
        results: dict = {}

        def work():
            engine = _sharded("materialized")
            results["got"] = _drain(engine.open_run(seed=0), engine.k)
            results["events"] = engine.resilience_events()
            engine.close()

        with inject(plan):
            t = threading.Thread(target=work, daemon=True)
            t.start()
            t.join(timeout=60)
            assert not t.is_alive(), "parent hung on a SIGKILLed worker's pipe"
        assert plan.fired() == [("kill_mid_command", 0, 2)]
        assert any("respawned" in e for e in results["events"])
        for want, have in zip(expected, results["got"]):
            np.testing.assert_array_equal(want, have)


class TestHandshake:
    def test_corrupt_handshake_is_retried_with_a_fresh_worker(self):
        """Spawn 0 of shard 0 sends a garbled handshake; the pool respawns
        (spawn index 1 handshakes cleanly) and the engine is unharmed."""
        baseline = _sharded("materialized")
        expected = _drain(baseline.open_run(seed=3), baseline.k)
        baseline.close()

        plan = FaultPlan([Fault("corrupt_handshake", shard=0, at=0)])
        with inject(plan):
            engine = _sharded("materialized")
            got = _drain(engine.open_run(seed=3), engine.k)
        assert any("respawned" in e for e in engine.resilience_events())
        engine.close()
        for want, have in zip(expected, got):
            np.testing.assert_array_equal(want, have)

    def test_handshake_timeout_fails_fast_not_forever(self):
        """A worker that cannot finish its build inside the timeout is
        killed and surfaced; pool construction never blocks indefinitely
        and the partial pool is torn down (registry stays clean)."""
        pop = _materialized_engine().population
        gids = [np.arange(0, K // 2), np.arange(K // 2, K)]
        # Spawning an interpreter + importing numpy takes far longer than
        # 50 ms, so the timeout always fires before the handshake lands.
        with pytest.raises(WorkerCrashed, match="handshake"):
            ProcessShardPool(pop, gids, max_restarts=0, handshake_timeout=0.05)


class TestShutdownEscalation:
    def test_sigstopped_workers_cannot_stall_shutdown(self):
        """All workers join against ONE shared deadline; a stopped process
        ignores SIGTERM (it stays pending), so only the post-grace SIGKILL
        can reclaim it.  Shutdown must still finish in bounded time."""
        engine = _sharded("materialized")
        run = engine.open_run(seed=0)
        run.draw_block(np.arange(engine.k), 4)
        pool = engine._procpool
        victims = [w.process for w in pool._workers]
        for worker in pool._workers:
            os.kill(worker.process.pid, signal.SIGSTOP)
            worker.alive = False  # skip the stop-message handshake
        start = time.monotonic()
        pool.shutdown(timeout=0.5)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"shutdown took {elapsed:.1f}s against stopped workers"
        for process in victims:
            process.join(timeout=5)
            assert not process.is_alive()
        engine.close()


class TestDegradation:
    def test_repeated_crashes_open_the_breaker_and_new_runs_use_threads(self):
        """Three crashes hit the default breaker threshold: the pool keeps
        recovering the current run, but the *next* run routes to the thread
        executor - and both stay bit-identical."""
        baseline = _sharded("materialized")
        expected_a = _drain(baseline.open_run(seed=0), baseline.k)
        expected_b = _drain(baseline.open_run(seed=1), baseline.k)
        baseline.close()

        plan = FaultPlan([Fault("kill_worker", times=3)])
        engine = _sharded("materialized")
        with inject(plan):
            got_a = _drain(engine.open_run(seed=0), engine.k)
        assert len(plan.fired()) == 3
        assert engine.breaker.open
        assert any("circuit breaker opened" in e for e in engine.resilience_events())
        # The breaker is open: this run is served by the thread executor.
        got_b = _drain(engine.open_run(seed=1), engine.k)
        engine.close()

        for want, have in zip(expected_a + expected_b, got_a + got_b):
            np.testing.assert_array_equal(want, have)

    def test_exhausted_restart_budget_degrades_the_shard_mid_run(self):
        """Two kills against a budget of one: the second crash cannot be
        recovered in-process, so the run rebuilds that shard on threads
        from its seeds, replays its draw history, and continues - still
        bit-identical to the uninjured twin."""
        baseline = _sharded("materialized")
        expected = _drain(baseline.open_run(seed=0), baseline.k)
        baseline.close()

        plan = FaultPlan([Fault("kill_worker", shard=0, times=2)])
        engine = _sharded("materialized", max_restarts=1)
        with inject(plan):
            run = engine.open_run(seed=0)
            got = _drain(run, engine.k)
        assert len(plan.fired()) == 2
        assert run.degraded_shards == [0]
        assert any("degraded" in e for e in engine.resilience_events())
        engine.close()

        for want, have in zip(expected, got):
            np.testing.assert_array_equal(want, have)
