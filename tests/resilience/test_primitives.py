"""Unit tests for the resilience primitives: Deadline, retry, breaker."""

from __future__ import annotations

import pytest

from repro.errors import FatalError, QueryCancelled, TransientError, WorkerCrashed
from repro.resilience import CircuitBreaker, Deadline, RetryPolicy, call_with_retry


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_no_limit_never_expires(self):
        d = Deadline(None)
        assert d.remaining() is None
        assert not d.expired()
        assert d.check() is False

    def test_expires_on_the_fake_clock(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.check() is False
        assert d.remaining() == pytest.approx(2.0)
        clock.now = 1.9
        assert not d.expired()
        clock.now = 2.0
        assert d.expired()
        assert d.check() is True
        assert d.remaining() == 0.0

    def test_after_ms(self):
        clock = FakeClock()
        d = Deadline.after_ms(500.0, clock=clock)
        assert d.remaining() == pytest.approx(0.5)
        assert Deadline.after_ms(None).remaining() is None

    def test_cancel_makes_check_raise(self):
        d = Deadline(None)
        assert not d.cancelled
        d.cancel()
        assert d.cancelled
        with pytest.raises(QueryCancelled):
            d.check()

    def test_cancel_wins_over_expiry(self):
        clock = FakeClock()
        d = Deadline(0.0, clock=clock)
        clock.now = 1.0
        d.cancel()
        with pytest.raises(QueryCancelled):
            d.check()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            Deadline(-1.0)


class TestErrorTaxonomy:
    def test_worker_crashed_is_transient_and_runtime(self):
        # WorkerCrashed must stay catchable as RuntimeError (the
        # pre-resilience contract) while being retryable as transient.
        exc = WorkerCrashed("boom")
        assert isinstance(exc, TransientError)
        assert isinstance(exc, RuntimeError)

    def test_fatal_is_not_transient(self):
        assert not isinstance(FatalError("x"), TransientError)


class TestRetry:
    def test_returns_first_success(self):
        calls = []
        out = call_with_retry(lambda: calls.append(1) or "ok", sleep=lambda _s: None)
        assert out == "ok" and len(calls) == 1

    def test_retries_transient_until_budget(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("blip")
            return "done"

        policy = RetryPolicy(max_retries=2, base_delay=0.0)
        assert call_with_retry(flaky, policy=policy, sleep=lambda _s: None) == "done"
        assert len(attempts) == 3

    def test_reraises_after_budget(self):
        def always():
            raise TransientError("persistent")

        policy = RetryPolicy(max_retries=1, base_delay=0.0)
        with pytest.raises(TransientError, match="persistent"):
            call_with_retry(always, policy=policy, sleep=lambda _s: None)

    def test_non_transient_escapes_immediately(self):
        calls = []

        def fatal():
            calls.append(1)
            raise FatalError("no retry")

        with pytest.raises(FatalError):
            call_with_retry(fatal, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_on_retry_observer_and_backoff_schedule(self):
        seen = []
        slept = []

        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 4:
                raise TransientError(f"blip {len(attempts)}")
            return 42

        policy = RetryPolicy(max_retries=3, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3, jitter=0.0)
        out = call_with_retry(
            flaky,
            policy=policy,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
            sleep=slept.append,
        )
        assert out == 42
        assert [a for a, _ in seen] == [0, 1, 2]
        # jitter=0.0 opts out: base * multiplier**attempt, capped at max_delay.
        assert slept == pytest.approx([0.1, 0.2, 0.3])

    def test_seeded_jitter_is_deterministic_and_bounded(self):
        import itertools

        policy = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.8, seed=42)
        first = list(itertools.islice(policy.delays(), 6))
        again = list(itertools.islice(policy.delays(), 6))
        assert first == again, "same seed must give the same schedule"
        assert all(0.0 <= d <= 0.8 for d in first)
        other = list(itertools.islice(
            RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                        max_delay=0.8, seed=43).delays(), 6))
        assert first != other, "different seeds must decorrelate"

    def test_jitter_is_on_by_default_and_sleeps_through_it(self):
        import itertools

        slept = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("blip")
            return "ok"

        policy = RetryPolicy(max_retries=2, base_delay=0.1, max_delay=0.5, seed=7)
        assert policy.jitter == 1.0
        assert call_with_retry(flaky, policy=policy, sleep=slept.append) == "ok"
        expected = list(itertools.islice(policy.delays(), 2))
        assert slept == pytest.approx(expected)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        b = CircuitBreaker(threshold=3)
        assert b.closed
        assert b.record_failure() is False
        assert b.record_failure() is False
        assert b.record_failure() is True  # this one opened it
        assert b.open and not b.closed
        assert b.failures == 3
        assert "3 failures" in b.reason

    def test_open_is_sticky(self):
        b = CircuitBreaker(threshold=1)
        assert b.record_failure("first crash") is True
        assert b.reason == "first crash"
        # Further failures count but never "open it again".
        assert b.record_failure("second") is False
        assert b.reason == "first crash"

    def test_trip_forces_open_once(self):
        b = CircuitBreaker(threshold=100)
        assert b.trip("unrecoverable") is True
        assert b.open and b.reason == "unrecoverable"
        assert b.trip("again") is False

    def test_reset_closes(self):
        b = CircuitBreaker(threshold=1)
        b.record_failure()
        b.reset()
        assert b.closed and b.failures == 0 and b.reason is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
