"""The fault-injection harness itself: plans, budgets, env activation."""

from __future__ import annotations

import os

import pytest

from repro.errors import TransientError
from repro.resilience.faults import (
    ENV_VAR,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    active_plan,
    fault_at,
    inject,
    seed_from_env,
)


class TestFault:
    def test_kind_implies_site(self):
        assert Fault("kill_worker").site == "procpool.command"
        assert Fault("kill_mid_command").site == "procpool.command"
        assert Fault("delay_shard").site == "procpool.command"
        assert Fault("corrupt_handshake").site == "procpool.handshake"
        assert Fault("fail_scan_chunk").site == "catalog.scan_chunk"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("melt_cpu")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="times"):
            Fault("kill_worker", times=0)


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(1234, kind="kill_worker", shards=4, max_at=8)
        b = FaultPlan.seeded(1234, kind="kill_worker", shards=4, max_at=8)
        assert a.faults == b.faults
        (fault,) = a.faults
        assert fault.kind == "kill_worker"
        assert 0 <= fault.shard < 4 and 0 <= fault.at < 8

    def test_json_roundtrip(self):
        plan = FaultPlan(
            [
                Fault("kill_worker", shard=1, at=3),
                Fault("delay_shard", delay_s=0.25, times=2),
            ]
        )
        assert FaultPlan.from_json(plan.to_json()).faults == plan.faults

    def test_budget_and_coordinates(self):
        plan = FaultPlan([Fault("kill_worker", shard=1, at=3, times=2)])
        assert plan.match("procpool.command", shard=0, index=3) is None  # wrong shard
        assert plan.match("procpool.command", shard=1, index=2) is None  # wrong index
        assert plan.match("procpool.handshake", shard=1, index=3) is None  # wrong site
        assert plan.match("procpool.command", shard=1, index=3) is not None
        assert plan.match("procpool.command", shard=1, index=3) is not None
        assert plan.match("procpool.command", shard=1, index=3) is None  # spent
        assert plan.fired() == [("kill_worker", 1, 3), ("kill_worker", 1, 3)]

    def test_none_coordinates_are_wildcards(self):
        plan = FaultPlan([Fault("kill_worker", times=3)])
        assert plan.match("procpool.command", shard=0, index=0) is not None
        assert plan.match("procpool.command", shard=7, index=99) is not None


class TestActivation:
    def test_no_plan_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_plan() is None
        assert fault_at("procpool.command", shard=0, index=0) is None

    def test_inject_activates_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        plan = FaultPlan([Fault("kill_worker", shard=0, at=0)])
        with inject(plan) as active:
            assert active is plan
            assert active_plan() is plan
            # The env mirror is JSON so spawn children can parse it.
            assert ENV_VAR in os.environ
            assert fault_at("procpool.command", shard=0, index=0) is plan.faults[0]
        assert active_plan() is None
        assert ENV_VAR not in os.environ

    def test_bare_integer_env_is_seed_not_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "20260807")
        assert active_plan() is None
        assert seed_from_env() == 20260807

    def test_seed_from_env_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert seed_from_env(default=7) == 7
        monkeypatch.setenv(ENV_VAR, "[]")
        assert seed_from_env(default=7) == 7

    def test_json_env_is_an_active_plan(self, monkeypatch):
        plan = FaultPlan([Fault("kill_worker", shard=0, at=1, times=5)])
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        env_plan = active_plan()
        assert env_plan is not None
        assert env_plan.faults == plan.faults
        # The cached env plan keeps its budgets across active_plan() calls.
        assert env_plan.match("procpool.command", shard=0, index=1) is not None
        assert active_plan() is env_plan

    def test_fail_scan_chunk_raises_transient(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        plan = FaultPlan([Fault("fail_scan_chunk", at=2)])
        with inject(plan):
            assert fault_at("catalog.scan_chunk", shard=None, index=1) is None
            with pytest.raises(TransientError, match="scan chunk 2"):
                fault_at("catalog.scan_chunk", shard=None, index=2)
            # Budget spent: the retried scan passes chunk 2 cleanly.
            assert fault_at("catalog.scan_chunk", shard=None, index=2) is None

    def test_every_kind_is_covered_by_a_site(self):
        assert set(FAULT_KINDS) == {
            "kill_worker",
            "kill_mid_command",
            "delay_shard",
            "corrupt_handshake",
            "fail_scan_chunk",
            "fail_segment_write",
            "enospc_segment_write",
            "flip_segment_bit",
        }

    def test_enospc_segment_write_raises_disk_full(self, monkeypatch):
        import errno

        monkeypatch.delenv(ENV_VAR, raising=False)
        plan = FaultPlan([Fault("enospc_segment_write", at=1)])
        with inject(plan):
            assert fault_at("storage.segment_write", shard=None, index=0) is None
            with pytest.raises(OSError) as exc:
                fault_at("storage.segment_write", shard=None, index=1)
            assert exc.value.errno == errno.ENOSPC

    def test_flip_segment_bit_returns_the_fault_for_the_reader(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        plan = FaultPlan([Fault("flip_segment_bit", at=3)])
        with inject(plan):
            assert fault_at("storage.segment_read", shard=None, index=2) is None
            fault = fault_at("storage.segment_read", shard=None, index=3)
            assert fault is not None and fault.kind == "flip_segment_bit"
