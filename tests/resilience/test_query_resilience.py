"""Query-level resilience: deadlines, cooperative cancellation, scan retry.

The contract (ISSUE 6):

* a query that hits its deadline **returns** - anytime behaviour, never a
  raise: every group carries a valid (wider) interval, the result is
  flagged via ``Result.deadline_exceeded`` and a ``deadline_exceeded``
  caveat, and fewer samples were spent than an unbounded twin;
* ``Session.submit`` futures cancel cooperatively mid-run via their
  deadline token (:class:`~repro.errors.QueryCancelled`), leaving no
  leaked workers or shared-memory segments;
* transient scan failures during the population build are retried by
  restarting the build (a pure function of the source) and surfaced as a
  ``resilience:`` caveat; a fault that outlives the retry budget escapes
  as :class:`~repro.errors.TransientError`.
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

import repro
from repro.catalog import TableSource
from repro.engines.shm import REGISTRY
from repro.errors import QueryCancelled, TransientError
from repro.resilience.faults import Fault, FaultPlan, inject

K = 5
N = 20_000


@pytest.fixture(autouse=True)
def no_segment_leaks():
    baseline = REGISTRY.active_count()
    yield
    assert REGISTRY.active_count() == baseline, (
        f"leaked shared-memory segments: {REGISTRY.active_names()}"
    )


def _separated_session() -> repro.Session:
    """Well-separated group means: the unbounded query finishes quickly."""
    rng = np.random.default_rng(0)
    session = repro.connect(delta=0.05, engine="memory")
    session.register(
        "delays",
        {
            "grp": np.repeat([f"g{i}" for i in range(K)], N),
            "val": np.concatenate(
                [
                    rng.normal(10.0 + 20.0 * i, 5.0, N).clip(0.0, 100.0)
                    for i in range(K)
                ]
            ),
        },
    )
    return session


def _query(session: repro.Session):
    return session.table("delays").group_by("grp").agg(repro.avg("val"))


class TestDeadline:
    def test_expired_deadline_returns_wider_intervals_not_an_error(self):
        session = _separated_session()
        full = _query(session).run(seed=42)
        assert not full.deadline_exceeded
        assert not any("deadline" in c for c in full.caveats)

        bounded = _query(session).deadline(0.001).run(seed=42)
        assert bounded.deadline_exceeded
        assert any("deadline_exceeded" in c for c in bounded.caveats)
        assert bounded.total_samples < full.total_samples
        # Anytime contract: every group still carries a *valid* interval -
        # finite half-width, no wider-than-physics estimates, just wider
        # than the converged twin's.
        for est in bounded.first:
            assert np.isfinite(est.half_width) and est.half_width > 0.0
            lo, hi = est.interval
            assert lo <= hi
            assert est.half_width >= full.first[est.label].half_width

    def test_streaming_respects_the_deadline(self):
        session = _separated_session()
        stream = _query(session).deadline(0.001).stream(seed=42)
        result = stream.drain()
        assert result.deadline_exceeded
        assert any("deadline_exceeded" in c for c in result.caveats)

    def test_session_default_deadline_is_inherited(self):
        rng = np.random.default_rng(0)
        session = repro.connect(delta=0.05, engine="memory", deadline_ms=0.001)
        session.register(
            "delays",
            {
                "grp": np.repeat(["a", "b"], 5000),
                "val": rng.uniform(0.0, 100.0, 10000),
            },
        )
        out = _query(session).run(seed=1)
        assert out.deadline_exceeded


class TestCancellation:
    def test_submit_cancel_mid_run_raises_query_cancelled(self):
        """Two groups with equal means never separate (with replacement,
        they never exhaust either), so the query runs until cancelled -
        cancellation is the only way this test can pass."""
        n = 4000
        session = repro.connect(delta=0.05, engine="memory")
        session.register(
            "forever",
            {
                "grp": np.repeat(["a", "b"], n),
                "val": np.concatenate(
                    [np.tile([0.0, 84.0], n // 2), np.full(n, 42.0)]
                ),
            },
        )
        with session:
            future = session.submit(
                _forever_query(session), seed=0, without_replacement=False
            )
            time.sleep(0.3)
            assert future.cancel()
            assert future.cancelled()
            # QueryCancelled when sampling had started (the cooperative
            # path); CancelledError if the pool had not picked it up yet.
            with pytest.raises((QueryCancelled, CancelledError)):
                future.result(timeout=60)

    def test_cancel_after_completion_returns_false(self):
        session = _separated_session()
        with session:
            future = session.submit(_query(session), seed=7)
            result = future.result(timeout=120)
            assert result.total_samples > 0
            assert future.done()
            assert not future.cancel()
            assert not future.cancelled()


def _forever_query(session: repro.Session):
    return session.table("forever").group_by("grp").agg(repro.avg("val"))


class TestScanRetry:
    def _chunked_session(self) -> repro.Session:
        rng = np.random.default_rng(3)
        session = repro.connect(delta=0.05, engine="memory")
        session.register_source(
            "chunked",
            TableSource(
                {
                    "grp": np.repeat(["a", "b", "c"], 600),
                    "val": rng.uniform(0.0, 100.0, 1800),
                },
                name="chunked",
                chunk_rows=100,
            ),
        )
        return session

    def test_transient_scan_failure_is_retried_and_surfaced(self):
        session = self._chunked_session()
        plan = FaultPlan([Fault("fail_scan_chunk", at=1)])
        with inject(plan):
            out = (
                session.table("chunked").group_by("grp").agg(repro.avg("val"))
            ).run(seed=5)
        assert plan.fired() == [("fail_scan_chunk", None, 1)]
        assert any("retried" in c and "resilience" in c for c in out.caveats)
        assert out.total_samples > 0

    def test_fault_outliving_the_budget_escapes_as_transient(self):
        session = self._chunked_session()
        plan = FaultPlan([Fault("fail_scan_chunk", times=100)])
        with inject(plan):
            with pytest.raises(TransientError, match="injected fault"):
                (
                    session.table("chunked")
                    .group_by("grp")
                    .agg(repro.avg("val"))
                    .retries(1)
                ).run(seed=5)
