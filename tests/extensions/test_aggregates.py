"""Tests for the SUM/COUNT variants (Algorithms 4/5, §6.3.1-6.3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.memory import InMemoryEngine
from repro.extensions.counts import run_count_known, run_count_unknown
from repro.extensions.sums import run_ifocus_sum, run_ifocus_sum_unknown
from repro.viz.properties import check_ordering
from tests.conftest import make_materialized_population


def sums_population(seed: int = 0):
    """Groups whose SUM order differs from their AVG order (sizes dominate)."""
    return make_materialized_population(
        [80.0, 40.0, 20.0],
        sizes=[1_000, 4_000, 20_000],
        spread=5.0,
        seed=seed,
    )


class TestSumKnownSizes:
    def test_orders_sums_not_averages(self):
        pop = sums_population()
        engine = InMemoryEngine(pop)
        res = run_ifocus_sum(engine, delta=0.05, seed=1)
        true_sums = pop.true_means() * pop.sizes()
        assert check_ordering(res.estimates, true_sums)
        # Sum order is the reverse of average order in this construction.
        assert np.argsort(res.estimates).tolist() != np.argsort(pop.true_means()).tolist()

    def test_estimates_near_true_sums(self):
        pop = sums_population(seed=2)
        res = run_ifocus_sum(InMemoryEngine(pop), delta=0.05, seed=3)
        true_sums = pop.true_means() * pop.sizes()
        for est, true in zip(res.estimates, true_sums):
            assert est == pytest.approx(true, rel=0.25)

    def test_exhaustion_exact(self):
        pop = make_materialized_population([50.0, 50.1], sizes=80, spread=6.0, seed=4)
        res = run_ifocus_sum(InMemoryEngine(pop), delta=0.05, seed=5)
        true_sums = pop.true_means() * pop.sizes()
        assert all(g.exhausted for g in res.groups)
        assert np.allclose(res.estimates, true_sums)

    def test_resolution_stop(self):
        pop = sums_population(seed=6)
        spread_sum = float((pop.true_means() * pop.sizes()).max())
        res = run_ifocus_sum(
            InMemoryEngine(pop), delta=0.05, resolution=spread_sum, seed=7
        )
        plain = run_ifocus_sum(InMemoryEngine(pop), delta=0.05, seed=7)
        assert res.total_samples <= plain.total_samples

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            run_ifocus_sum(InMemoryEngine(sums_population()), delta=0.0)


class TestSumUnknownSizes:
    def test_normalized_sums_ordering(self):
        # Clearly separated normalized sums so the k^2 blowup stays small.
        pop = make_materialized_population(
            [90.0, 50.0, 10.0],
            sizes=[30_000, 8_000, 1_000],
            spread=5.0,
            seed=8,
        )
        engine = InMemoryEngine(pop)
        res = run_ifocus_sum_unknown(engine, delta=0.05, seed=9, max_rounds=400_000)
        sizes = pop.sizes().astype(float)
        true_norm = pop.true_means() * sizes / sizes.sum()
        assert check_ordering(res.estimates, true_norm)
        assert not res.params["truncated"]

    def test_unnormalized_scaling(self):
        pop = make_materialized_population(
            [90.0, 10.0], sizes=[20_000, 2_000], spread=5.0, seed=10
        )
        engine = InMemoryEngine(pop)
        norm = run_ifocus_sum_unknown(engine, delta=0.05, seed=11, normalized=True)
        raw = run_ifocus_sum_unknown(engine, delta=0.05, seed=11, normalized=False)
        total = float(pop.sizes().sum())
        assert np.allclose(raw.estimates, norm.estimates * total, rtol=1e-9)

    def test_costs_more_than_known_sizes(self):
        pop = make_materialized_population(
            [90.0, 50.0, 10.0], sizes=[30_000, 8_000, 1_000], spread=5.0, seed=12
        )
        engine = InMemoryEngine(pop)
        known = run_ifocus_sum(engine, delta=0.05, seed=13)
        unknown = run_ifocus_sum_unknown(engine, delta=0.05, seed=13, max_rounds=400_000)
        # Estimating sizes simultaneously costs extra (the paper's k^2 note).
        assert unknown.total_samples > known.total_samples


class TestCounts:
    def test_known_is_exact_and_free(self):
        pop = sums_population()
        res = run_count_known(InMemoryEngine(pop))
        assert np.array_equal(res.estimates, pop.sizes().astype(float))
        assert res.total_samples == 0

    def test_unknown_orders_counts(self):
        pop = make_materialized_population(
            [50.0, 50.0, 50.0],
            sizes=[40_000, 10_000, 2_000],
            spread=5.0,
            seed=14,
        )
        engine = InMemoryEngine(pop)
        res = run_count_unknown(engine, delta=0.05, seed=15)
        assert check_ordering(res.estimates, pop.sizes().astype(float))
        # The ordering guarantee implies each estimate sits within its own
        # finalization half-width of the true count (w.h.p.); value accuracy
        # beyond that is not promised (that is the Problem 6 extension).
        for g, true in zip(res.groups, pop.sizes()):
            assert abs(g.estimate - true) <= max(g.half_width, 1.0)
