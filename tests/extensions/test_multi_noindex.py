"""Tests for multi-group-by / multi-aggregate (§6.3.4-6.3.5) and no-index
(§6.3.6) variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.memory import InMemoryEngine
from repro.extensions.multi import (
    composite_group_column,
    run_ifocus_multi_avg,
    run_multi_groupby,
)
from repro.extensions.noindex import run_noindex
from repro.needletail.table import Table
from repro.viz.properties import check_ordering
from tests.conftest import make_materialized_population


def two_dim_table(n: int = 40_000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    carrier = rng.choice(["AA", "DL"], size=n)
    year = rng.choice([1995, 2005], size=n)
    base = {("AA", 1995): 20.0, ("AA", 2005): 40.0, ("DL", 1995): 60.0, ("DL", 2005): 80.0}
    mu = np.array([base[(c, y)] for c, y in zip(carrier, year)])
    delay = np.clip(mu + rng.normal(0, 8, n), 0, 100)
    dist = np.clip(500.0 + 300.0 * (carrier == "DL") + rng.normal(0, 100, n), 0, 2000)
    return Table.from_dict(
        "t", {"carrier": carrier, "year": year, "delay": delay, "dist": dist}
    )


class TestCompositeGroupBy:
    def test_composite_column(self):
        t = two_dim_table(100)
        key = composite_group_column(t, ["carrier", "year"])
        assert set(np.unique(key)) == {"AA|1995", "AA|2005", "DL|1995", "DL|2005"}

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            composite_group_column(two_dim_table(10), [])

    def test_run_multi_groupby_orders_cross_product(self):
        t = two_dim_table()
        result, engine = run_multi_groupby(
            t, ["carrier", "year"], "delay", delta=0.05, seed=1
        )
        true = engine.population.true_means()
        assert check_ordering(result.estimates, true)
        assert len(engine.population.group_names) == 4


class TestMultiAvg:
    def test_both_orderings_correct(self):
        t = two_dim_table(seed=2)
        res = run_ifocus_multi_avg(t, "carrier", "delay", "dist", delta=0.05, seed=3)
        delay_true = [
            t.column("delay")[t.column("carrier") == c].mean() for c in ("AA", "DL")
        ]
        dist_true = [
            t.column("dist")[t.column("carrier") == c].mean() for c in ("AA", "DL")
        ]
        assert check_ordering(res.y.estimates, np.array(delay_true))
        assert check_ordering(res.z.estimates, np.array(dist_true))

    def test_shared_samples(self):
        t = two_dim_table(seed=4)
        res = run_ifocus_multi_avg(t, "carrier", "delay", "dist", delta=0.05, seed=5)
        # Both aggregates report the same per-group sample counts (each
        # sampled row contributes to both).
        assert np.array_equal(res.y.samples_per_group, res.z.samples_per_group)
        assert res.total_samples == res.y.samples_per_group.sum()

    def test_estimates_close(self):
        t = two_dim_table(seed=6)
        res = run_ifocus_multi_avg(t, "carrier", "delay", "dist", delta=0.05, seed=7)
        for gid, carrier in enumerate(sorted(set(t.column("carrier")))):
            true_d = t.column("delay")[t.column("carrier") == carrier].mean()
            assert res.y.estimates[gid] == pytest.approx(true_d, abs=5.0)


class TestNoIndex:
    def test_orders_correctly(self):
        pop = make_materialized_population([20.0, 50.0, 80.0], sizes=30_000, seed=8)
        engine = InMemoryEngine(pop)
        res = run_noindex(engine, delta=0.05, seed=9)
        assert check_ordering(res.estimates, pop.true_means())
        assert res.algorithm == "noindex"

    def test_samples_proportional_to_sizes(self):
        pop = make_materialized_population(
            [20.0, 80.0], sizes=[40_000, 10_000], spread=5.0, seed=10
        )
        engine = InMemoryEngine(pop)
        res = run_noindex(engine, delta=0.05, seed=11)
        ratio = res.samples_per_group[0] / res.samples_per_group[1]
        assert 2.5 < ratio < 6.0  # ~4x expected from the 4:1 size skew

    def test_max_samples_truncates(self):
        pop = make_materialized_population([50.0, 50.05], sizes=10_000, seed=12)
        engine = InMemoryEngine(pop)
        res = run_noindex(engine, delta=0.05, seed=13, max_samples=5_000)
        assert res.params["truncated"]
        assert res.total_samples <= 5_000 + 256

    def test_resolution_stop(self):
        # Separating 50.0 from 50.2 needs eps < 0.1 (~6M draws per group
        # with replacement); the r=4 relaxation stops at eps < 1 (~50k).
        pop = make_materialized_population([50.0, 50.2, 90.0], sizes=50_000, seed=14)
        engine = InMemoryEngine(pop)
        relaxed = run_noindex(engine, delta=0.05, resolution=4.0, seed=15)
        assert not relaxed.params["truncated"]
        assert relaxed.total_samples < 400_000

    def test_costs_more_than_indexed_under_skew(self):
        from repro.core.ifocus import run_ifocus

        # Small contentious group: no-index wastes draws on the big group.
        pop = make_materialized_population(
            [50.0, 52.0, 90.0], sizes=[80_000, 8_000, 8_000], spread=8.0, seed=16
        )
        engine = InMemoryEngine(pop)
        indexed = run_ifocus(engine, delta=0.05, seed=17)
        blind = run_noindex(engine, delta=0.05, seed=17)
        assert blind.total_samples > indexed.total_samples

    def test_validation(self, small_engine):
        with pytest.raises(ValueError):
            run_noindex(small_engine, batch=0)
