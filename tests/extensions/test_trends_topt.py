"""Tests for the trends (Problem 3) and top-t (Problem 4) variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import run_ifocus_reference
from repro.engines.memory import InMemoryEngine
from repro.extensions.topt import run_ifocus_topt
from repro.extensions.trends import chain_neighbors, grid_neighbors, run_ifocus_trends
from repro.viz.properties import check_neighbor_ordering, check_top_t
from tests.conftest import make_materialized_population


class TestNeighborGraphs:
    def test_chain(self):
        assert chain_neighbors(3) == [[1], [0, 2], [1]]
        assert chain_neighbors(1) == [[]]

    def test_grid(self):
        adj = grid_neighbors(2, 2)
        assert sorted(adj[0]) == [1, 2]
        assert sorted(adj[3]) == [1, 2]

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_neighbors(0, 3)


class TestTrends:
    def test_adjacent_ordering_correct(self):
        pop = make_materialized_population(
            [30.0, 50.0, 20.0, 60.0, 40.0], sizes=20_000, seed=1
        )
        engine = InMemoryEngine(pop)
        res = run_ifocus_trends(engine, delta=0.05, seed=2)
        assert check_neighbor_ordering(res.estimates, pop.true_means())
        assert res.algorithm == "ifocus-trends"

    def test_cheaper_than_full_ordering_with_distant_duplicates(self):
        # Two non-adjacent groups share a mean: full ordering would sample to
        # exhaustion; the trend variant does not care about that pair.
        pop = make_materialized_population(
            [30.0, 60.0, 30.05, 70.0], sizes=20_000, seed=3
        )
        engine = InMemoryEngine(pop)
        trends = run_ifocus_trends(engine, delta=0.05, seed=4)
        full = run_ifocus_reference(engine, delta=0.05, seed=4)
        assert trends.total_samples < full.total_samples

    def test_custom_graph_validation(self):
        pop = make_materialized_population([10.0, 20.0], sizes=100)
        engine = InMemoryEngine(pop)
        with pytest.raises(ValueError):
            run_ifocus_trends(engine, neighbors=[[1]])  # wrong length
        with pytest.raises(ValueError):
            run_ifocus_trends(engine, neighbors=[[1], []])  # asymmetric
        with pytest.raises(ValueError):
            run_ifocus_trends(engine, neighbors=[[5], [0]])  # out of range

    def test_grid_choropleth(self):
        pop = make_materialized_population(
            [10.0, 40.0, 70.0, 25.0, 55.0, 85.0], sizes=10_000, seed=5
        )
        engine = InMemoryEngine(pop)
        res = run_ifocus_trends(
            engine, delta=0.05, seed=6, neighbors=grid_neighbors(2, 3)
        )
        true = pop.true_means()
        for i, adj in enumerate(grid_neighbors(2, 3)):
            for j in adj:
                if true[i] != true[j]:
                    assert (res.estimates[i] > res.estimates[j]) == (true[i] > true[j])


class TestTopT:
    def test_reports_true_top(self):
        pop = make_materialized_population(
            [10.0, 80.0, 30.0, 90.0, 50.0, 70.0], sizes=20_000, seed=7
        )
        engine = InMemoryEngine(pop)
        top = run_ifocus_topt(engine, t=3, delta=0.05, seed=8)
        assert check_top_t(top.result.estimates, pop.true_means(), t=3)
        assert top.top_names == ["g3", "g1", "g5"]

    def test_smallest_mode(self):
        pop = make_materialized_population([10.0, 80.0, 30.0, 90.0], sizes=20_000, seed=9)
        engine = InMemoryEngine(pop)
        top = run_ifocus_topt(engine, t=2, delta=0.05, largest=False, seed=10)
        assert top.top_names == ["g0", "g2"]

    def test_cheaper_than_full_with_contentious_losers(self):
        # A contentious pair far below the top must not be resolved.
        pop = make_materialized_population(
            [20.0, 20.2, 60.0, 90.0], sizes=30_000, seed=11
        )
        engine = InMemoryEngine(pop)
        top = run_ifocus_topt(engine, t=2, delta=0.05, seed=12)
        full = run_ifocus_reference(engine, delta=0.05, seed=12)
        assert top.result.total_samples < full.total_samples

    def test_t_validation(self, small_engine):
        with pytest.raises(ValueError):
            run_ifocus_topt(small_engine, t=0)
        with pytest.raises(ValueError):
            run_ifocus_topt(small_engine, t=99)
