"""Tests for the mistakes, values, and partial-results variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import run_ifocus_reference
from repro.engines.memory import InMemoryEngine
from repro.extensions.mistakes import run_ifocus_mistakes
from repro.extensions.partial import run_ifocus_partial, stream_partial_results
from repro.extensions.values import run_ifocus_values
from repro.viz.properties import pair_accuracy
from tests.conftest import make_materialized_population


class TestMistakes:
    def test_terminates_early_with_contentious_pair(self):
        # One contentious pair among 5 groups: the 3 easy groups resolve
        # early, giving a committed-pair fraction of 3*2/(5*4) = 0.3;
        # requesting that fraction skips the expensive pair entirely.
        pop = make_materialized_population(
            [20.0, 50.0, 50.2, 80.0, 95.0], sizes=30_000, seed=1
        )
        engine = InMemoryEngine(pop)
        relaxed = run_ifocus_mistakes(engine, min_correct_fraction=0.3, delta=0.05, seed=2)
        full = run_ifocus_reference(engine, delta=0.05, seed=2)
        assert relaxed.total_samples < full.total_samples
        assert relaxed.params["early_terminated"]
        assert relaxed.params["resolved_pair_fraction"] >= 0.3

    def test_accuracy_on_resolved_fraction(self):
        pop = make_materialized_population(
            [20.0, 50.0, 50.2, 80.0, 95.0], sizes=30_000, seed=3
        )
        engine = InMemoryEngine(pop)
        res = run_ifocus_mistakes(engine, min_correct_fraction=0.3, delta=0.05, seed=4)
        # The committed pairs are correct w.h.p.; in practice the flushed
        # estimates rarely add mistakes, so well over 30% come out right.
        assert pair_accuracy(res.estimates, pop.true_means()) >= 0.3

    def test_fraction_one_is_plain_ifocus(self, small_engine):
        a = run_ifocus_mistakes(small_engine, min_correct_fraction=1.0, delta=0.05, seed=5)
        b = run_ifocus_reference(small_engine, delta=0.05, seed=5)
        assert a.total_samples == b.total_samples

    def test_invalid_fraction(self, small_engine):
        with pytest.raises(ValueError):
            run_ifocus_mistakes(small_engine, min_correct_fraction=1.5)


class TestValues:
    def test_estimates_within_d(self):
        pop = make_materialized_population([20.0, 40.0, 60.0, 80.0], sizes=50_000, seed=6)
        engine = InMemoryEngine(pop)
        d = 2.0
        res = run_ifocus_values(engine, d=d, delta=0.05, seed=7)
        true = pop.true_means()
        for g in res.groups:
            assert abs(g.estimate - true[g.index]) <= d
            if not g.exhausted:
                assert g.half_width < d / 2

    def test_costs_more_than_plain(self, small_engine):
        plain = run_ifocus_reference(small_engine, delta=0.05, seed=8)
        accurate = run_ifocus_values(small_engine, d=1.0, delta=0.05, seed=8)
        assert accurate.total_samples > plain.total_samples

    def test_d_validation(self, small_engine):
        with pytest.raises(ValueError):
            run_ifocus_values(small_engine, d=0.0)


class TestPartial:
    def test_callback_receives_groups_in_finalization_order(self, close_engine):
        emitted = []
        res = run_ifocus_partial(close_engine, emitted.append, delta=0.05, seed=9)
        assert [o.index for o in emitted] == res.inactive_order
        assert len(emitted) == close_engine.k

    def test_emitted_prefix_is_internally_ordered(self, close_engine):
        # At each emission, the already-emitted groups must be correctly
        # ordered among themselves (the Problem 7 guarantee).
        true = close_engine.population.true_means()
        emitted = []

        def check(outcome):
            emitted.append(outcome)
            ests = [o.estimate for o in emitted]
            trues = [true[o.index] for o in emitted]
            order_est = np.argsort(ests)
            order_true = np.argsort(trues)
            assert np.array_equal(order_est, order_true)

        run_ifocus_partial(close_engine, check, delta=0.05, seed=10)

    def test_stream_yields_all_updates(self, small_engine):
        updates = list(stream_partial_results(small_engine, delta=0.05, seed=11))
        assert len(updates) == small_engine.k
        assert updates[-1].done
        assert [u.emitted_so_far for u in updates] == list(range(1, small_engine.k + 1))

    def test_stream_matches_callback(self, small_engine):
        updates = list(stream_partial_results(small_engine, delta=0.05, seed=12))
        emitted = []
        run_ifocus_partial(small_engine, emitted.append, delta=0.05, seed=12)
        assert [u.outcome.index for u in updates] == [o.index for o in emitted]
