"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import TruncatedNormal, TwoPoint
from repro.data.population import MaterializedGroup, Population, VirtualGroup
from repro.engines.memory import InMemoryEngine


def make_materialized_population(
    means: list[float],
    sizes: list[int] | int = 2000,
    spread: float = 5.0,
    c: float = 100.0,
    seed: int = 0,
) -> Population:
    """A materialized population with groups roughly at the given means."""
    rng = np.random.default_rng(seed)
    if isinstance(sizes, int):
        sizes = [sizes] * len(means)
    groups = []
    for i, (mu, n) in enumerate(zip(means, sizes)):
        values = np.clip(rng.normal(mu, spread, n), 0.0, c)
        groups.append(MaterializedGroup(f"g{i}", values))
    return Population(groups=groups, c=c)


def make_virtual_population(
    means: list[float],
    sizes: list[int] | int = 10**6,
    spread: float = 5.0,
    c: float = 100.0,
) -> Population:
    """A virtual (distribution-backed) population with exact analytic means."""
    if isinstance(sizes, int):
        sizes = [sizes] * len(means)
    groups = [
        VirtualGroup(f"g{i}", TruncatedNormal(mu, spread, 0.0, c), n)
        for i, (mu, n) in enumerate(zip(means, sizes))
    ]
    return Population(groups=groups, c=c)


def make_twopoint_population(
    ps: list[float], sizes: list[int] | int = 10**6, c: float = 100.0
) -> Population:
    """Bernoulli-style virtual population (the paper's highest-variance case)."""
    if isinstance(sizes, int):
        sizes = [sizes] * len(ps)
    groups = [
        VirtualGroup(f"g{i}", TwoPoint(p, 0.0, c), n)
        for i, (p, n) in enumerate(zip(ps, sizes))
    ]
    return Population(groups=groups, c=c)


@pytest.fixture
def small_engine() -> InMemoryEngine:
    """Four well-separated materialized groups - fast, deterministic runs."""
    pop = make_materialized_population([20.0, 40.0, 60.0, 80.0], sizes=3000, seed=7)
    return InMemoryEngine(pop)


@pytest.fixture
def close_engine() -> InMemoryEngine:
    """Five groups with one close pair (42 vs 45) - exercises focusing."""
    pop = make_materialized_population([10.0, 42.0, 45.0, 70.0, 90.0], sizes=5000, seed=11)
    return InMemoryEngine(pop)


@pytest.fixture
def virtual_engine() -> InMemoryEngine:
    """Virtual population: analytic means, effectively unlimited draws."""
    pop = make_virtual_population([15.0, 35.0, 55.0, 75.0], sizes=10**7)
    return InMemoryEngine(pop)
