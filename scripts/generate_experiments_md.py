"""Generate EXPERIMENTS.md: paper-reported vs measured, for every experiment.

Runs the whole experiment harness at the current REPRO_SCALE (smoke by
default) and writes EXPERIMENTS.md with the measured tables inlined next to
the paper's reported shapes.  Re-run after changing algorithms or scales:

    python scripts/generate_experiments_md.py [output_path]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablation_batching,
    ablation_cost_model,
    ablation_kappa,
    ablation_removal_policy,
    current_scale,
    fig3a_percentage_vs_size,
    fig3b_samples_vs_time,
    fig3c_percentage_vs_delta,
    fig4_runtime_vs_size,
    fig5a_heuristic_accuracy,
    fig5b_heuristic_accuracy_hard,
    fig5c_active_groups_convergence,
    fig6a_incorrect_pairs,
    fig6b_percentage_vs_groups,
    fig6c_difficulty_vs_groups,
    fig7a_percentage_vs_skew,
    fig7b_percentage_vs_std,
    fig7c_difficulty_vs_std,
    table1_execution_trace,
    table3_flights_runtimes,
)
from repro.experiments.headline import headline_claims

# (function, paper-reported shape, what must hold in our reproduction)
CATALOG = [
    (
        table1_execution_trace,
        "Table 1: four groups; group intervals shrink per round; groups leave "
        "the active set one by one; total cost decomposes as "
        "C = 21x4 + (58-21)x3 + (71-58)x2 in the paper's instance.",
        "Same staged-exit structure and cost decomposition (our instance has "
        "its own round numbers).",
    ),
    (
        fig3a_percentage_vs_size,
        "Fig 3(a): percentage sampled falls roughly linearly (log-log) with "
        "dataset size; IFOCUS < IREFINE < ROUNDROBIN; at 1e7 roughly "
        "15%/25%/50%; R-variants take a constant number of raw samples for "
        "sizes >= 1e8. All runs respect the ordering property.",
        "Same ordering of algorithms at every size, falling percentages, "
        "near-constant raw samples for the R-variants at the largest sizes, "
        "100% measured accuracy.",
    ),
    (
        fig3b_samples_vs_time,
        "Fig 3(b): total runtime is directly proportional to the number of "
        "samples across algorithms and sizes.",
        "Pearson correlation of samples vs simulated seconds > 0.95.",
    ),
    (
        fig3c_percentage_vs_delta,
        "Fig 3(c): sampling decreases as delta grows but stays well above "
        "zero even at delta ~ 1 (log k and log log(1/eta) terms are "
        "delta-independent).",
        "Monotone-decreasing trend with a large positive floor.",
    ),
    (
        fig4_runtime_vs_size,
        "Fig 4(a,b,c): SCAN grows linearly and is CPU-bound; sampling "
        "algorithms grow sublinearly; IFOCUS 23x faster than SCAN at 1e9; "
        "IFOCUS-R ~241x; R-variants nearly flat above 1e8.",
        "SCAN linear and CPU-bound; IFOCUS < ROUNDROBIN everywhere; "
        "IFOCUS-R beats SCAN with a widening factor as size grows (the "
        "paper-scale run reproduces the crossover of plain variants too).",
    ),
    (
        fig5a_heuristic_accuracy,
        "Fig 5(a): accuracy is 100% at factor 1 and drops immediately "
        "(roughly monotonically) once intervals shrink faster than the "
        "theory allows; factor 2 already makes 2-3% mistakes.",
        "Accuracy 1.0 at factor 1; below 1.0 at larger factors.",
    ),
    (
        fig5b_heuristic_accuracy_hard,
        "Fig 5(b): on the hard instance even a 1% faster shrink (factor "
        "1.01) drops accuracy below 95%; factor 1.2 below 70%. (That regime "
        "needs ~1e6 rounds per group - paper scale.)",
        "Accuracy 1.0 at factor 1; degradation at aggressive factors. At "
        "smoke scale the small groups exhaust (exact answers), so the "
        "factor range is extended until the guarantee visibly breaks; at "
        "REPRO_SCALE=paper the paper's 1.0-1.2 range is used.",
    ),
    (
        fig5c_active_groups_convergence,
        "Fig 5(c): active groups drop quickly to ~2 of 10 after ~10% of the "
        "data and decay slowly after; the hard-dataset series stays higher "
        "longer.",
        "Monotone-ish decay from k to a handful; hard series >= all series.",
    ),
    (
        fig6a_incorrect_pairs,
        "Fig 6(a): the number of incorrectly ordered pairs in the current "
        "estimates is near 0 with small jumps, nonzero up to ~3M samples; "
        "small enough to justify partial results.",
        "Low counts (a few of the 45 pairs) that reach ~0 by termination.",
    ),
    (
        fig6b_percentage_vs_groups,
        "Fig 6(b): percentage sampled rises with the number of groups (an "
        "artifact of random mean generation), IFOCUS stays far below "
        "ROUNDROBIN at every k.",
        "Same relative ordering at every k.",
    ),
    (
        fig6c_difficulty_vs_groups,
        "Fig 6(c): median difficulty c^2/eta^2 grows ~4 orders of magnitude "
        "from k=5 to k=50 (random means pack closer).",
        "Median difficulty strictly increasing with k.",
    ),
    (
        fig7a_percentage_vs_skew,
        "Fig 7(a): IFOCUS keeps its advantage under skew; total sampling "
        "falls as the first group's share grows (generation artifact).",
        "IFOCUS < ROUNDROBIN at every skew level.",
    ),
    (
        fig7b_percentage_vs_std,
        "Fig 7(b): larger truncnorm std samples slightly more at every "
        "delta (1-2% differences).",
        "Weakly higher sampling for larger std on average.",
    ),
    (
        fig7c_difficulty_vs_std,
        "Fig 7(c): difficulty rises with std.",
        "Median difficulty non-decreasing in std.",
    ),
    (
        table3_flights_runtimes,
        "Table 3: on flight data, IFOCUS ~3x and IFOCUS-R ~6x faster than "
        "ROUNDROBIN; runtimes roughly double across a 100x scale-up, driven "
        "by conflicting carrier pairs; all orderings correct.",
        "IFOCUS-R <= IFOCUS <= ROUNDROBIN per attribute and size; sublinear "
        "IFOCUS-R growth across the largest size step; all orderings "
        "correct.",
    ),
    (
        headline_claims,
        "Section 8: < 0.02% of the data sampled at 1e10 rows; > 60x faster "
        "than ROUNDROBIN; ~1000x faster than SCAN.",
        "Small sampled fraction at the largest campaign size with clear "
        "speedups over both baselines (absolute factors grow with size; "
        "paper numbers are at 1e10).",
    ),
    (
        ablation_batching,
        "(ours) batched executor vs reference loop.",
        "Identical outputs; order(s)-of-magnitude wall-clock speedup.",
    ),
    (
        ablation_removal_policy,
        "(ours) Section 3.1 alternative (a) vs (b).",
        "Both accurate; (b) samples at least as much.",
    ),
    (
        ablation_cost_model,
        "(ours) constant-per-tuple vs block-cache pricing.",
        "Sparse sampling priced higher by the block-cache model; SCAN "
        "priced identically.",
    ),
    (
        ablation_kappa,
        "(paper footnote) kappa close to 1 gives very similar results.",
        "kappa=1.01 within a few percent of kappa=1 in samples, same "
        "accuracy.",
    ),
]


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    scale = current_scale()
    parts: list[str] = []
    parts.append("# EXPERIMENTS — paper-reported vs measured\n")
    parts.append(
        "Generated by `python scripts/generate_experiments_md.py` at scale "
        f"`{scale.name}` (sizes={list(scale.dataset_sizes)}, trials="
        f"{scale.trials}). Absolute numbers are simulator outputs; the "
        "*shapes* (who wins, by what factor, where crossovers fall) are the "
        "reproduction target. Set `REPRO_SCALE=paper` and re-run for "
        "paper-scale parameters.\n"
    )
    for fn, paper, ours in CATALOG:
        t0 = time.time()
        fig = fn(scale)
        elapsed = time.time() - t0
        parts.append(f"\n## {fig.figure}: {fig.title}\n")
        parts.append(f"**Paper reports:** {paper}\n")
        parts.append(f"**Reproduction criteria:** {ours}\n")
        parts.append(f"**Measured** ({elapsed:.1f}s wall):\n")
        parts.append("```")
        parts.append(fig.format())
        parts.append("```")
        print(f"[done] {fig.figure} in {elapsed:.1f}s")
    text = "\n".join(parts) + "\n"
    with open(out_path, "w") as handle:
        handle.write(text)
    print(f"wrote {out_path} ({len(text)} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
