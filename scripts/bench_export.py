#!/usr/bin/env python
"""Run the micro benchmark suite and write the normalized BENCH_micro.json.

Equivalent to ``python -m repro bench-export``; kept as a standalone script
so CI can invoke it without installing the package (it adds ``src`` to the
path itself).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import export_micro  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="output path (default BENCH_micro.json; smoke "
                        "mode defaults to BENCH_micro.smoke.json so a sanity "
                        "run never clobbers the committed trajectory)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI sanity mode: light micro ops only, capped "
                        "rounds, finishes in seconds")
    args = parser.parse_args(argv)
    path = export_micro(args.output, smoke=args.smoke)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
