#!/usr/bin/env python
"""CI smoke for continuous queries: subscribe, windows, late data, cancel.

Runs the streaming path end to end over HTTP on an ephemeral port:

1. boot ``repro.serve`` with a chunked event stream that includes a LATE
   chunk (rows for an already-closed window arriving after the watermark
   has passed);
2. GET /subscribe - the SSE frames must be monotonically numbered
   ``window`` events (at least 3 windows) ending in a single ``done``;
3. the late chunk must not corrupt the stream: under the default ``drop``
   policy the affected window is emitted exactly once and the late rows
   show up in the done-event stats;
4. open a second, unbounded subscription and DELETE it - the stream must
   end with a clean ``done`` carrying ``cancelled: true``;
5. shut down and assert the shared-memory registry is empty.

Usage: python scripts/streaming_smoke.py
"""

from __future__ import annotations

import http.client
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro import connect  # noqa: E402
from repro.catalog import IteratorSource, Schema  # noqa: E402
from repro.engines.shm import REGISTRY  # noqa: E402
from repro.serve import QueryService, serve_in_thread  # noqa: E402

EVENTS_SQL = "SELECT g, AVG(v) FROM events GROUP BY g"

SCHEMA = Schema.from_arrays(
    {"g": np.array(["a"]), "v": np.array([1.0]), "ts": np.array([0.0])}
)


def block(lo: int, hi: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    n = hi - lo
    return {
        "g": rng.choice(np.array(["a", "b", "c"]), n),
        "v": rng.random(n) * 50.0,
        "ts": np.arange(lo, hi, dtype=np.float64),
    }


def event_chunks():
    """ts 0..299 in order, then a LATE chunk (120..139), then 300..399.

    By the time 120..139 re-arrive the watermark sits at 299, so windows
    [100, 200) and [200, 300) are closed: the late rows must be dropped,
    not re-opened into a duplicate emission.
    """
    yield block(0, 100, seed=1)
    yield block(100, 200, seed=2)
    yield block(200, 300, seed=3)
    yield block(120, 140, seed=4)  # late for the closed [100, 200) window
    yield block(300, 400, seed=5)


class Endless:
    """An unbounded stream the DELETE-to-cancel check can hold open."""

    def __init__(self) -> None:
        self.gate = threading.Event()

    def chunks(self):
        base = 0
        while True:
            yield block(base, base + 100, seed=base)
            base += 100
            if self.gate.wait(10.0):
                return


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body))
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else {}
    finally:
        conn.close()


def sse_frames(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body))
        resp = conn.getresponse()
        frames = [f for f in resp.read().decode().split("\n\n") if f.strip()]
        return resp.status, frames
    finally:
        conn.close()


def frame_data(frame: str) -> dict:
    for line in frame.splitlines():
        if line.startswith("data: "):
            return json.loads(line[len("data: "):])
    raise SystemExit(f"frame without data line: {frame!r}")


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {message}")


def main() -> int:
    endless = Endless()
    session = connect(delta=0.1, seed=0, engine="memory")
    session.register("events", IteratorSource(event_chunks, schema=SCHEMA))
    session.register("endless", IteratorSource(endless.chunks, schema=SCHEMA))
    service = QueryService(session, sessions=2, default_seed=0)
    handle = serve_in_thread(service)
    print(f"serving on {handle.url}")
    try:
        status, body = request(handle.port, "GET", "/healthz")
        check(status == 200 and body["status"] == "ok", "healthz answers")

        status, frames = sse_frames(
            handle.port,
            "GET",
            "/subscribe?sql=SELECT+g,+AVG(v)+FROM+events+GROUP+BY+g"
            "&window_size=100&window_on=ts&updates=0",
        )
        check(status == 200 and len(frames) >= 4, "subscription streams SSE")
        ids = [int(f.splitlines()[0].split(":")[1]) for f in frames]
        check(ids == list(range(1, len(frames) + 1)), "SSE ids are monotonic from 1")
        check("event: done" in frames[-1], "stream ends with done")
        windows = [frame_data(f) for f in frames[:-1] if "event: window" in f]
        check(len(windows) >= 3, f"at least 3 windows emitted (got {len(windows)})")
        indices = [w["window"]["index"] for w in windows]
        check(indices == sorted(set(indices)), "window indices strictly increase")
        check(
            sum(1 for i in indices if i == 1) == 1,
            "late chunk does not re-emit the closed window",
        )
        done = frame_data(frames[-1])
        check(done["cancelled"] is False, "uninterrupted stream is not cancelled")
        check(
            done["stats"]["late_dropped"] == 20,
            "the 20 late rows were dropped and counted",
        )

        holder = {}

        def hold():
            holder["status"], holder["frames"] = sse_frames(
                handle.port,
                "POST",
                "/subscribe",
                {
                    "sql": "SELECT g, AVG(v) FROM endless GROUP BY g",
                    "window": {"size": 100.0, "on": "ts"},
                    "emit_updates": False,
                    "query_id": "smoke-sub",
                },
            )

        thread = threading.Thread(target=hold)
        thread.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _s, stats = request(handle.port, "GET", "/stats")
            if stats["tenants"].get("public", {}).get("subscriptions", 0) >= 1:
                break
            time.sleep(0.05)
        status, body = request(handle.port, "DELETE", "/query/smoke-sub")
        check(status == 200 and body["cancelled"], "DELETE cancels the subscription")
        endless.gate.set()
        thread.join(timeout=120)
        check(holder.get("status") == 200, "cancelled subscriber still got 200 SSE")
        check("event: done" in holder["frames"][-1], "cancelled stream ends with done")
        check(
            frame_data(holder["frames"][-1])["cancelled"] is True,
            "done event reports cancelled: true",
        )
        _s, stats = request(handle.port, "GET", "/stats")
        counters = stats["tenants"]["public"]["counters"]
        check(counters["subscriptions_started"] == 2, "both subscriptions counted")
        check(
            stats["tenants"]["public"]["subscriptions"] == 0,
            "subscription gauge returns to zero",
        )
    finally:
        handle.stop()

    check(REGISTRY.active_count() == 0, "shutdown leaves the shm registry empty")
    print("streaming smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
