#!/usr/bin/env python
"""Bench regression guard: compare a fresh micro-bench JSON to the committed one.

Usage::

    python scripts/check_bench.py FRESH.json [--baseline BENCH_micro.json]
                                  [--threshold 2.0]

Every op present in *both* files is compared by ``median_seconds``; any op
slower than ``threshold`` x the committed baseline fails the check (exit 1).
Ops absent on either side are skipped with a notice - the smoke export only
runs the light subset, and newly added ops have no baseline yet - so the
guard never blocks on coverage differences, only on regressions.

Entries carrying ``"guard": false`` are excluded entirely (from both the
comparisons and the machine-factor calibration): benchmarks whose medians
measure *machine topology* rather than code - e.g. the process-executor
elapsed-scaling ops, which swing with the runner's core count - export their
trajectory into BENCH_micro.json without ever arming the guard.

Baselines are committed from one developer machine, but CI runs on shared
runners with different (and noisy) single-thread speed.  To keep the guard
meaningful across machines, when enough ops are shared
(>= ``_CALIBRATE_MIN_OPS``) each ratio is judged *relative to the median
ratio* - the "machine factor": a runner that is uniformly 2.5x slower stays
green, while one op that slowed 2x more than the rest of the suite fails.
A single genuine regression barely moves the median, so it cannot hide
itself.  ``--no-calibrate`` restores raw absolute comparison.

The 2x default is deliberately loose: the guard is for order-of-magnitude
regressions (an accidentally de-fused hot path), not for 10% drift.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Minimum shared ops before median calibration is trustworthy.
_CALIBRATE_MIN_OPS = 5


def load_entries(path: Path) -> dict[str, float]:
    """Map op name -> median seconds, dropping malformed or non-positive rows.

    Rows flagged ``"guard": false`` (machine-topology-dependent ops, e.g.
    process-executor elapsed scaling) are dropped too - they are trajectory
    data, never regression evidence.
    """
    data = json.loads(path.read_text())
    entries: dict[str, float] = {}
    for entry in data.get("entries", []):
        op = entry.get("op")
        median = entry.get("median_seconds")
        if not op or not isinstance(median, (int, float)) or median <= 0:
            continue
        if entry.get("guard") is False:
            continue
        entries[str(op)] = float(median)
    return entries


def compare(
    fresh: dict[str, float],
    baseline: dict[str, float],
    threshold: float,
    calibrate: bool = True,
) -> tuple[list[str], list[str]]:
    """Return (failures, report_lines) for the shared ops."""
    failures: list[str] = []
    lines: list[str] = []
    shared = sorted(fresh.keys() & baseline.keys())
    machine_factor = 1.0
    if calibrate and len(shared) >= _CALIBRATE_MIN_OPS:
        # Clamped at 1.0: the factor only *excuses* uniformly slower
        # machines.  A median < 1 (most ops got faster - e.g. an optimization
        # PR whose baseline re-export is pending) must not turn unchanged
        # ops into "relative regressions"; raw ratios already cover them.
        machine_factor = max(
            1.0, statistics.median(fresh[op] / baseline[op] for op in shared)
        )
        lines.append(
            f"  machine factor: {machine_factor:.2f}x (median ratio over "
            f"{len(shared)} shared ops, clamped >= 1; regressions judged "
            "relative to it)"
        )
    for op in shared:
        ratio = fresh[op] / baseline[op]
        relative = ratio / machine_factor
        verdict = "FAIL" if relative > threshold else "ok"
        lines.append(
            f"  {op:<32} {baseline[op] * 1e3:10.3f} ms -> {fresh[op] * 1e3:10.3f} ms"
            f"  ({ratio:5.2f}x raw, {relative:5.2f}x rel)  {verdict}"
        )
        if relative > threshold:
            failures.append(
                f"{op}: {relative:.2f}x slower than the rest of the suite "
                f"(> {threshold:g}x; raw {ratio:.2f}x)"
            )
    for op in sorted(fresh.keys() - baseline.keys()):
        lines.append(f"  {op:<32} (no committed baseline; skipped)")
    for op in sorted(baseline.keys() - fresh.keys()):
        lines.append(f"  {op:<32} (not in fresh run; skipped)")
    return failures, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced micro-bench JSON")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_micro.json"),
        help="committed baseline (default: repo BENCH_micro.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when fresh median > threshold x baseline (default 2.0)",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="compare raw ratios instead of normalizing by the median ratio "
        "(machine-speed calibration)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error(f"--threshold must be > 0, got {args.threshold}")

    fresh_path, base_path = Path(args.fresh), Path(args.baseline)
    for path in (fresh_path, base_path):
        if not path.exists():
            print(f"check_bench: no such file: {path}", file=sys.stderr)
            return 2
    fresh = load_entries(fresh_path)
    baseline = load_entries(base_path)
    if not fresh:
        print(f"check_bench: {fresh_path} contains no usable entries", file=sys.stderr)
        return 2

    failures, lines = compare(
        fresh, baseline, args.threshold, calibrate=not args.no_calibrate
    )
    print(f"bench regression check ({fresh_path} vs {base_path}, {args.threshold:g}x):")
    print("\n".join(lines))
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
