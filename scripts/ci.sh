#!/usr/bin/env bash
# CI gate: lint (ruff, when available) + the tier-1 test suite.
#
# Usage:  scripts/ci.sh [extra pytest args...]
#
#   scripts/ci.sh                  # full gate: lint + tier-1
#   scripts/ci.sh -k sharded       # fast mode: only tests matching an
#                                  # expression (args go straight to pytest,
#                                  # so -k/-m/paths all work while iterating)
#   scripts/ci.sh -m "not slow"    # drop the long statistical tests
#
# This script *is* the hosted CI: .github/workflows/ci.yml runs exactly this
# plus the bench smoke (scripts/bench_export.py --smoke + scripts/check_bench.py),
# so a green local run means a green matrix job.
#
# Exits non-zero on the first failure.  ruff is optional because the offline
# image may not ship it; the lint step is skipped (with a notice) rather than
# silently passed when the tool is missing.  The lint rule set is pinned in
# pyproject.toml ([tool.ruff]), not inherited from ruff defaults.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check (config: pyproject.toml) =="
    ruff check src tests scripts benchmarks
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q "$@"

echo "== CI OK =="
