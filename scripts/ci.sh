#!/usr/bin/env bash
# CI gate: lint (ruff, when available) + the tier-1 test suite.
#
# Usage:  scripts/ci.sh [extra pytest args...]
#
# Exits non-zero on the first failure.  ruff is optional because the offline
# image may not ship it; the lint step is skipped (with a notice) rather than
# silently passed when the tool is missing.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q "$@"

echo "== CI OK =="
