#!/usr/bin/env python
"""CI smoke for the query service: boot, canned queries, clean shutdown.

Runs the full serving path end to end on an ephemeral port:

1. boot ``repro.serve`` with the synthetic flights table + a never-
   converging "hard" table;
2. POST /query twice - the repeat must be a cache hit with byte-identical
   result JSON;
3. POST /stream - the SSE frames must be monotonically numbered updates
   ending in a single ``done`` event;
4. start a never-converging query and DELETE it - the submitter must get
   the structured 499 ``cancelled`` error;
5. drain: flip the service into drain mode - ``/readyz`` goes 503 while
   ``/healthz`` stays 200, and new work is shed with 503 + ``Retry-After``;
6. shut down and assert the shared-memory registry is empty (the shm-leak
   oracle: an abandoned worker segment fails CI here);
7. SIGTERM a real ``repro serve`` subprocess - it must announce the drain
   and exit 0 (the path a rolling restart takes in production).

Usage: python scripts/serve_smoke.py [--rows N]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import connect  # noqa: E402
from repro.engines.shm import REGISTRY  # noqa: E402
from repro.serve import QueryService, serve_in_thread  # noqa: E402

FLIGHTS_SQL = "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
SLOW_SPEC = {
    "table": "slow",
    "group_by": ["g"],
    "aggregates": [{"func": "AVG", "column": "value"}],
    "engine": "memory",
}


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body))
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else {}
    finally:
        conn.close()


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {message}")


def sigterm_drains_cleanly() -> bool:
    """SIGTERM a foreground ``repro serve`` and watch it drain to exit 0."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--flights",
         "--rows", "2000", "--port", "0", "--drain-timeout", "5"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        if "listening" not in line:
            print(f"unexpected first line: {line!r}", file=sys.stderr)
            return False
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
    if proc.returncode != 0:
        print(out, file=sys.stderr)
        return False
    return "draining" in out and "stopped" in out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=20_000,
                        help="synthetic flights rows for the canned queries")
    args = parser.parse_args()

    session = connect(delta=0.1, seed=0)
    session.register_flights("flights", rows=args.rows, seed=0)
    session.register_synthetic("slow", "hard", k=4, gamma=0.01, group_size=5_000_000)
    service = QueryService(session, sessions=2, default_seed=0)
    handle = serve_in_thread(service)
    print(f"serving on {handle.url}")
    try:
        status, body = request(handle.port, "GET", "/healthz")
        check(status == 200 and body["status"] == "ok", "healthz answers")

        status, first = request(handle.port, "POST", "/query", {"sql": FLIGHTS_SQL})
        check(status == 200 and first["cache"] == "miss", "first query executes")
        status, second = request(handle.port, "POST", "/query", {"sql": FLIGHTS_SQL})
        check(status == 200 and second["cache"] == "hit", "repeat query is a cache hit")
        check(
            json.dumps(first["result"], sort_keys=True)
            == json.dumps(second["result"], sort_keys=True),
            "cached result is byte-identical",
        )

        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=120)
        conn.request(
            "POST", "/stream", body=json.dumps({"sql": FLIGHTS_SQL, "seed": 1})
        )
        resp = conn.getresponse()
        frames = [f for f in resp.read().decode().split("\n\n") if f.strip()]
        conn.close()
        check(resp.status == 200 and len(frames) >= 2, "SSE stream answers")
        ids = [int(f.splitlines()[0].split(":")[1]) for f in frames]
        check(ids == list(range(1, len(frames) + 1)), "SSE ids are monotonic from 1")
        check("event: done" in frames[-1], "SSE stream ends with done")
        check(
            all("event: update" in f for f in frames[:-1]),
            "all non-final SSE frames are updates",
        )

        outcome = {}

        def run_slow():
            outcome["status"], outcome["body"] = request(
                handle.port,
                "POST",
                "/query",
                {"spec": SLOW_SPEC, "query_id": "smoke-slow"},
            )

        thread = threading.Thread(target=run_slow)
        thread.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _s, stats = request(handle.port, "GET", "/stats")
            if stats["inflight"] >= 1:
                break
            time.sleep(0.05)
        status, body = request(handle.port, "DELETE", "/query/smoke-slow")
        check(status == 200 and body["cancelled"], "DELETE cancels the slow query")
        thread.join(timeout=120)
        check(
            outcome.get("status") == 499
            and outcome["body"]["error"]["code"] == "cancelled",
            "cancelled submitter gets the structured 499",
        )

        status, body = request(handle.port, "GET", "/readyz")
        check(status == 200 and body["ready"], "readyz is 200 before the drain")
        service.begin_drain()
        status, body = request(handle.port, "GET", "/readyz")
        check(
            status == 503 and body["draining"],
            "readyz flips to 503 while draining",
        )
        status, _body = request(handle.port, "GET", "/healthz")
        check(status == 200, "healthz stays 200 while draining (liveness)")
        status, body = request(handle.port, "POST", "/query", {"sql": FLIGHTS_SQL})
        check(
            status == 503 and body["error"]["code"] == "draining",
            "draining server sheds new work with 503",
        )
    finally:
        handle.stop()

    check(REGISTRY.active_count() == 0, "shutdown leaves the shm registry empty")
    check(sigterm_drains_cleanly(), "SIGTERM drains a real serve process to exit 0")
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
