#!/usr/bin/env python
"""CI smoke for the durable storage tier: build, restart, warm-open gate.

Runs the persistence path end to end in a throwaway store directory:

1. cold: attach a synthetic relation under ``connect(store=...)``, run one
   grouped query (building + persisting the NEEDLETAIL index and the
   materialized population), and time the build;
2. restart: re-open the same store in a **fresh python process** - the
   warm open must construct a mapped engine without a single index rebuild
   (``BUILD_COUNTS["needletail"] == 0`` in the child is the oracle) and
   serve results identical to the cold run;
3. gate: the warm open must be at least 10x faster than the cold build
   (mapping segments is O(1) in the data; rebuilding is O(rows));
4. verify: every segment checksum must match its catalog row;
5. self-heal: flip one bit of a committed index segment on disk, re-open,
   and re-run the query - the corrupt build must be quarantined and
   rebuilt transparently, the answer bit-identical to the cold run with a
   ``resilience:`` caveat, and the store clean again afterwards.

Usage: python scripts/storage_smoke.py [--rows N] [--min-speedup X]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.storage import Store  # noqa: E402

WARM_CHILD = """
import json, sys, time
import repro
from repro.needletail.engine import BUILD_COUNTS
from repro.storage.mapped import MappedNeedletailEngine

# On the clock: open the store and map the persisted index - no query, so
# the parent's speedup gate compares build cost against open cost alone.
t0 = time.perf_counter()
session = repro.connect(store=sys.argv[1], seed=1)
engine = session._catalog.indexed_engine(
    "t", "g", "v", group_spec=["g"], builder=lambda: None
)
elapsed = time.perf_counter() - t0
assert isinstance(engine, MappedNeedletailEngine), type(engine).__name__

result = session.table("t").group_by("g").agg(repro.avg("v")).run(seed=5)
session.close()
print(json.dumps({
    "warm_s": elapsed,
    "build_counts": dict(BUILD_COUNTS),
    "order": result.first.order(),
    "samples": result.total_samples,
    "estimates": sorted((g.label, g.estimate, g.samples) for g in result.first),
}))
"""


def _dataset(rows: int):
    groups = 32
    rng = np.random.default_rng(7)
    per = rows // groups
    return {
        "g": np.repeat([f"g{i:02d}" for i in range(groups)], per),
        "v": rng.normal(50.0, 12.0, per * groups).clip(0, 100),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=640_000)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required cold-build / warm-open ratio")
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-storage-smoke-") as tmp:
        store = Path(tmp) / "store"

        # On the clock: attach + prime, i.e. scan the rows, build the
        # NEEDLETAIL index + population, persist every segment.  The query
        # runs off the clock - both sides pay it equally.
        t0 = time.perf_counter()
        session = repro.connect(store=store, seed=1)
        session.attach("t", _dataset(args.rows))
        session._catalog.prime("t", "g", "v")
        cold_s = time.perf_counter() - t0
        cold_result = (
            session.table("t").group_by("g").agg(repro.avg("v")).run(seed=5)
        )
        session.close()
        print(f"cold attach + index build: {cold_s:.3f}s ({args.rows:,} rows)")

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", WARM_CHILD, str(store)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        if out.returncode != 0:
            print(out.stdout, file=sys.stderr)
            print(out.stderr, file=sys.stderr)
            print("FAIL: warm re-open process crashed", file=sys.stderr)
            return 1
        report = json.loads(out.stdout.strip().splitlines()[-1])
        warm_s = report["warm_s"]
        speedup = cold_s / warm_s if warm_s else float("inf")
        print(f"warm re-open, mapped engine (fresh process): {warm_s:.3f}s "
              f"-> {speedup:.1f}x")

        failures = []
        if report["build_counts"]["needletail"] != 0:
            failures.append(
                f"warm open rebuilt the index: BUILD_COUNTS="
                f"{report['build_counts']}"
            )
        if report["order"] != cold_result.first.order():
            failures.append(
                f"ordering drifted: {report['order']} != "
                f"{cold_result.first.order()}"
            )
        if report["samples"] != cold_result.total_samples:
            failures.append("total_samples drifted across the restart")
        cold_estimates = sorted(
            [g.label, g.estimate, g.samples] for g in cold_result.first
        )
        if report["estimates"] != cold_estimates:
            failures.append("per-group estimates drifted across the restart")
        if speedup < args.min_speedup:
            failures.append(
                f"warm open only {speedup:.1f}x faster than the cold build "
                f"(need >= {args.min_speedup:.0f}x)"
            )

        with Store(store) as raw:
            checked = raw.verify()
        print(f"verified {checked} segments")

        # Self-heal: corrupt one committed index segment, then query again.
        with Store(store) as raw:
            row = raw._db.execute(
                "SELECT s.filename FROM segments s "
                "JOIN builds b ON s.build_id = b.id "
                "WHERE b.kind = 'needletail' ORDER BY s.id LIMIT 1"
            ).fetchone()
            victim = Path(raw.segments_dir) / row["filename"]
        with open(victim, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0x01]))
        print(f"flipped one bit of {row['filename']}")

        healed_session = repro.connect(store=store, seed=1)
        healed = (
            healed_session.table("t").group_by("g").agg(repro.avg("v")).run(seed=5)
        )
        healed_session.close()
        if sorted(
            [g.label, g.estimate, g.samples] for g in healed.first
        ) != cold_estimates:
            failures.append("healed estimates drifted from the cold run")
        if not any(
            c.startswith("resilience:") and "quarantined" in c
            for c in healed.caveats
        ):
            failures.append(
                f"healed result carries no quarantine caveat: {healed.caveats}"
            )
        with Store(store) as raw:
            tombstones = {t["filename"] for t in raw.quarantined()}
            if row["filename"] not in tombstones:
                failures.append("corrupt segment was not tombstoned")
            raw.verify()  # the re-persisted build must be clean on disk
        if not failures:
            print("self-heal: quarantined, rebuilt, bit-identical with caveat")

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("storage smoke OK")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
