"""Section 8 headline: sample fraction and speedups at the largest size."""

from repro.experiments.headline import headline_claims


def test_headline_claims(run_figure):
    fig = run_figure(headline_claims)
    # The qualitative claims must hold at any scale: IFOCUS-R far ahead of
    # both baselines.  (Absolute factors grow with dataset size; the paper's
    # 60x/1000x are at 1e10 rows.)
    assert fig.raw["speedup_rr"] > 2.0
    assert fig.raw["speedup_scan"] > 2.0
    ifocusr_pct = fig.raw["measured"]["ifocusr"]["pct"]
    assert ifocusr_pct < 5.0
