"""Serving-path latency and throughput: cold execution vs cache hit (ISSUE 7).

Measures the full HTTP round trip through ``repro.serve`` - parse, admission,
execution on the session pool, canonical JSON encode - against the same
query served from the shared result cache.  Two regimes export:

* **cold** - every request carries a fresh seed, so each one executes a
  real IFOCUS run on the pool.  Latency is dominated by sampling.
* **hot** - the identical request repeated; after the first, every answer
  comes from the result cache as pre-encoded bytes.  Latency is pure
  service overhead (HTTP + lookup), the number the "many dashboards, one
  dataset" argument rests on.

``extra_info`` carries qps and p50/p99 milliseconds for both regimes.  All
ops export with ``"guard": false``: the medians measure socket and
scheduler behaviour of the recording machine, so ``scripts/check_bench.py``
must never treat them as regression evidence.

Export with ``python -m repro bench-export`` (writes BENCH_micro.json).
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np
import pytest

from repro import connect
from repro.serve import QueryService, serve_in_thread

FLIGHTS_SQL = "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"

_COLD_REQUESTS = 30
_HOT_REQUESTS = 300


def _boot(rows: int):
    session = connect(delta=0.1, seed=0)
    session.register_flights("flights", rows=rows, seed=0)
    service = QueryService(session, sessions=2, default_seed=0)
    return serve_in_thread(service)


def _post_query(port: int, body: dict) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("POST", "/query", body=json.dumps(body))
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status == 200, payload
        return payload
    finally:
        conn.close()


def _measure(port: int, bodies) -> dict:
    """Sequential request latencies -> {qps, p50_ms, p99_ms}."""
    latencies = []
    t0 = time.perf_counter()
    for body in bodies:
        t = time.perf_counter()
        _post_query(port, body)
        latencies.append(time.perf_counter() - t)
    elapsed = time.perf_counter() - t0
    lat = np.asarray(latencies)
    return {
        "qps": round(len(lat) / elapsed, 2),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
    }


def test_bench_serve_hit_smoke(benchmark):
    """Light sanity case (runs in --smoke): one executed query, then the
    benchmark times the cache-hit round trip end to end."""
    handle = _boot(rows=4_000)
    try:
        first = _post_query(handle.port, {"sql": FLIGHTS_SQL})
        assert first["cache"] == "miss"

        def hit():
            envelope = _post_query(handle.port, {"sql": FLIGHTS_SQL})
            assert envelope["cache"] == "hit"
            return envelope

        envelope = benchmark.pedantic(hit, rounds=5, iterations=1)
        assert envelope["result"] == first["result"]
    finally:
        handle.stop()
    benchmark.extra_info["rows"] = 4_000
    benchmark.extra_info["guard"] = False


@pytest.mark.bench
def test_bench_serve_cold_vs_hit(benchmark):
    """The headline table: cold-execution vs cache-hit qps and p50/p99.

    Cold requests rotate the seed so every one executes on the pool; hot
    requests repeat one (spec, seed) so all but the first are served from
    the shared cache.  The benchmark clock times a single hot round trip;
    the regime table exports via ``extra_info``.
    """
    handle = _boot(rows=20_000)
    try:
        cold = _measure(
            handle.port,
            ({"sql": FLIGHTS_SQL, "seed": 1000 + i} for i in range(_COLD_REQUESTS)),
        )
        _post_query(handle.port, {"sql": FLIGHTS_SQL, "seed": 7})  # warm the key
        hot = _measure(
            handle.port,
            ({"sql": FLIGHTS_SQL, "seed": 7} for _ in range(_HOT_REQUESTS)),
        )

        envelope = benchmark.pedantic(
            lambda: _post_query(handle.port, {"sql": FLIGHTS_SQL, "seed": 7}),
            rounds=10,
            iterations=1,
        )
        assert envelope["cache"] == "hit"
    finally:
        handle.stop()
    benchmark.extra_info["rows"] = 20_000
    benchmark.extra_info["cold_requests"] = _COLD_REQUESTS
    benchmark.extra_info["hot_requests"] = _HOT_REQUESTS
    benchmark.extra_info.update({f"cold_{k}": v for k, v in cold.items()})
    benchmark.extra_info.update({f"hot_{k}": v for k, v in hot.items()})
    benchmark.extra_info["guard"] = False
