"""Ablation: constant-per-tuple vs block-cache cost model."""

from repro.experiments import ablation_cost_model


def test_ablation_cost_model(run_figure):
    fig = run_figure(ablation_cost_model)
    io = {(row[0], row[1]): row[3] for row in fig.rows}
    # Sparse regime: the block-cache model charges far more than the
    # constant-per-tuple model (every fresh page is a random read).
    assert io[("(unit) sparse-10k", "block-cache")] > 5 * io[("(unit) sparse-10k", "constant")]
    # SCAN is priced identically under both models.
    assert abs(io[("scan", "block-cache")] - io[("scan", "constant")]) < 1e-9
    # Dense sampling saturates the cache: block-cache I/O is finite and
    # bounded by pages x read_time, so it stays below the per-sample total.
    assert io[("roundrobin", "block-cache")] <= io[("roundrobin", "constant")] * 10