"""Fig 6(c): instance difficulty c^2/eta^2 grows with the number of groups."""

from repro.experiments import fig6c_difficulty_vs_groups


def test_fig6c_difficulty_vs_groups(run_figure):
    fig = run_figure(fig6c_difficulty_vs_groups)
    ks = fig.column("k")
    medians = dict(zip(ks, fig.column("median")))
    # More random means pack closer: median difficulty increases with k.
    assert medians[max(ks)] > medians[min(ks)]
