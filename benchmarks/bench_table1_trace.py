"""Table 1: IFOCUS execution trace with per-round confidence intervals."""

from repro.experiments import table1_execution_trace


def test_table1_trace(run_figure):
    fig = run_figure(table1_execution_trace)
    # The trace must show the staged exits the paper's Table 1 illustrates.
    assert len(fig.rows) >= 3
