"""Fig 3(c): percentage sampled vs the failure probability delta."""

from repro.experiments import fig3c_percentage_vs_delta


def test_fig3c_percentage_vs_delta(run_figure):
    fig = run_figure(fig3c_percentage_vs_delta)
    series = fig.raw["series"]
    deltas = sorted(series["ifocus"])
    # Sampling decreases with delta but does not collapse to zero: even at
    # delta ~ 1, at least a tenth of the delta-0.01 effort remains.
    for alg in ("ifocus", "roundrobin"):
        lo, hi = series[alg][deltas[-1]], series[alg][deltas[0]]
        assert lo <= hi
        assert lo > 0.02 * hi
