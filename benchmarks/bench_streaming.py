"""Continuous-query throughput: windows/sec and sliding warm-start reuse.

The PR-9 streaming tier turns one-shot IFOCUS queries into windowed
streams: :class:`~repro.streaming.runner.WindowRunner` cuts an unbounded
chunk stream into half-open windows and runs the ordinary sampling loop
inside each one.  These ops record that trajectory:

* ``windows_per_sec`` and ``window_p50_s`` - steady-state tumbling
  throughput (how fast closed windows drain out of a stream);
* ``cold_s`` vs ``warm_s`` - sliding windows with ``every < size``
  recomputed from scratch versus warm-started from the overlapping
  predecessor panes.  The heavy case asserts warm start actually wins
  AND that the two produce bit-identical results (minus wall-clock
  fields) - speed must never buy a different answer.

All ops export with ``"guard": false``: windows/sec measures the sampling
loop on whatever machine recorded it, so ``scripts/check_bench.py`` must
never treat these medians as regression evidence.

Export with ``python -m repro bench-export`` (writes BENCH_micro.json).
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.catalog import IteratorSource, Schema
from repro.session import connect
from repro.streaming.runner import WindowResult, WindowRunner

_CHUNK_ROWS = 5_000
_WINDOW_ROWS = 10_000
_SLIDE_WINDOW_ROWS = 50_000
_ROWS_SMOKE = 60_000
_ROWS_FULL = 400_000
_REPS = 5

#: Well-separated group means: IFOCUS orders these in a handful of sampling
#: rounds, so per-window cost is dominated by assembling the grouped
#: population - exactly the work sliding warm start reuses across panes.
_MEANS = {"a": 5.0, "b": 15.0, "c": 30.0, "d": 45.0}


def _dataset(n: int, seed: int = 13) -> dict:
    rng = np.random.default_rng(seed)
    g = rng.choice(np.array(list(_MEANS)), n)
    mu = np.vectorize(_MEANS.get)(g)
    return {
        "g": g,
        "v": (mu + rng.normal(0.0, 1.0, n)).clip(0, 50),
        "ts": np.arange(n, dtype=np.float64),
    }


def _session(data: dict):
    schema = Schema.from_arrays({k: v[:1] for k, v in data.items()})
    n = len(data["ts"])

    def chunks():
        for start in range(0, n, _CHUNK_ROWS):
            yield {k: v[start:start + _CHUNK_ROWS] for k, v in data.items()}

    session = connect(engine="memory", seed=0, delta=0.1)
    session.register("events", IteratorSource(chunks, schema=schema))
    return session


def _spec(session, *, size: int = _WINDOW_ROWS, every: float | None = None):
    return (
        session.table("events").group_by("g").agg("AVG(v)")
        .window(float(size), every=every, on="ts")
        .spec()
    )


def _drain(session, spec, *, warm_start: bool):
    """Run the stream to completion; per-window close-to-close latencies."""
    runner = WindowRunner(
        spec, session.catalog, seed=7, warm_start=warm_start, emit_updates=False
    )
    results = []
    latencies = []
    t0 = time.perf_counter()
    mark = t0
    for event in runner.run():
        if isinstance(event, WindowResult):
            now = time.perf_counter()
            latencies.append(now - mark)
            mark = now
            results.append(event)
    return results, time.perf_counter() - t0, latencies


def _canon(result) -> dict:
    d = result.to_dict()
    d.pop("io_seconds")
    d.pop("cpu_seconds")
    return d


def _record_throughput(benchmark, results, elapsed, latencies) -> None:
    benchmark.extra_info["windows"] = len(results)
    benchmark.extra_info["rows"] = int(sum(r.rows for r in results))
    benchmark.extra_info["windows_per_sec"] = len(results) / elapsed
    benchmark.extra_info["window_p50_s"] = statistics.median(latencies)
    benchmark.extra_info["guard"] = False


def test_bench_streaming_tumbling_smoke(benchmark):
    """Light sanity case (runs in --smoke): tumbling windows/sec over a
    small stream, with the per-window p50 in ``extra_info``."""
    session = _session(_dataset(_ROWS_SMOKE))
    spec = _spec(session)

    def drain():
        return _drain(session, spec, warm_start=False)

    results, elapsed, latencies = benchmark.pedantic(drain, rounds=3, iterations=1)
    assert len(results) == _ROWS_SMOKE // _WINDOW_ROWS
    assert all(r.rows == _WINDOW_ROWS for r in results)
    _record_throughput(benchmark, results, elapsed, latencies)
    session.close()


@pytest.mark.bench
def test_bench_streaming_tumbling_throughput(benchmark):
    """Steady-state tumbling throughput: 40 windows of 10k rows."""
    session = _session(_dataset(_ROWS_FULL))
    spec = _spec(session)

    def drain():
        return _drain(session, spec, warm_start=False)

    results, elapsed, latencies = benchmark.pedantic(
        drain, rounds=_REPS, iterations=1
    )
    assert len(results) == _ROWS_FULL // _WINDOW_ROWS
    _record_throughput(benchmark, results, elapsed, latencies)
    session.close()


@pytest.mark.bench
def test_bench_streaming_sliding_warm_start(benchmark):
    """The warm-start claim: sliding windows (stride = size/2) reusing the
    overlapping predecessor panes must beat recomputing every window from
    scratch, with bit-identical per-window results."""
    data = _dataset(_ROWS_FULL)
    session = _session(data)
    spec = _spec(session, size=_SLIDE_WINDOW_ROWS, every=_SLIDE_WINDOW_ROWS / 2)

    cold_results, *_ = _drain(session, spec, warm_start=False)
    cold = min(_drain(session, spec, warm_start=False)[1] for _ in range(_REPS))

    def drain_warm():
        return _drain(session, spec, warm_start=True)

    warm_results, warm_elapsed, latencies = benchmark.pedantic(
        drain_warm, rounds=_REPS, iterations=1
    )
    warm = min(warm_elapsed, min(drain_warm()[1] for _ in range(_REPS - 1)))

    assert len(warm_results) == len(cold_results)
    for w, c in zip(warm_results, cold_results):
        assert w.window == c.window
        assert _canon(w.result) == _canon(c.result)
    assert any(r.warm_start for r in warm_results[1:])
    assert warm < cold, (
        f"warm start must beat cold recompute: warm {warm:.3f}s "
        f"vs cold {cold:.3f}s"
    )
    _record_throughput(benchmark, warm_results, warm_elapsed, latencies)
    benchmark.extra_info["cold_s"] = cold
    benchmark.extra_info["warm_s"] = warm
    benchmark.extra_info["speedup_x"] = cold / warm
    session.close()
