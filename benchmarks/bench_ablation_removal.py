"""Ablation: active-set removal policy (a) never-reactivate vs (b) reactivate."""

from repro.experiments import ablation_removal_policy


def test_ablation_removal_policy(run_figure):
    fig = run_figure(ablation_removal_policy)
    by_policy = {row[0]: (row[1], row[2]) for row in fig.rows}
    samples_a, acc_a = by_policy["a: never-reactivate"]
    samples_b, acc_b = by_policy["b: reactivate"]
    # Both are accurate in practice; (b) can only take at least as many samples.
    assert acc_a >= 0.95 and acc_b >= 0.95
    assert samples_b >= samples_a * 0.99
