"""Fig 6(b): percentage sampled vs number of groups."""

from repro.experiments import fig6b_percentage_vs_groups


def test_fig6b_percentage_vs_groups(run_figure):
    fig = run_figure(fig6b_percentage_vs_groups)
    ks = fig.column("k")
    ifocus = dict(zip(ks, fig.column("ifocus")))
    rr = dict(zip(ks, fig.column("roundrobin")))
    # IFOCUS keeps a clear advantage at every group count.
    for k in ks:
        assert ifocus[k] < rr[k]
