"""Fig 7(b): percentage sampled vs delta across truncnorm std values."""

import numpy as np

from repro.experiments import fig7b_percentage_vs_std


def test_fig7b_percentage_vs_std(run_figure):
    fig = run_figure(fig7b_percentage_vs_std)
    series = fig.raw["series"]
    stds = sorted(series)
    deltas = sorted(series[stds[0]])
    # Larger standard deviation needs (weakly) more sampling on average.
    small = np.mean([series[stds[0]][d] for d in deltas])
    large = np.mean([series[stds[-1]][d] for d in deltas])
    assert large >= 0.8 * small
