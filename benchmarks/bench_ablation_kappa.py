"""Ablation: kappa grid parameter (paper footnote: kappa ~ 1 is immaterial)."""

from repro.experiments import ablation_kappa


def test_ablation_kappa(run_figure):
    fig = run_figure(ablation_kappa)
    by_kappa = {row[0]: (row[1], row[2]) for row in fig.rows}
    base_samples, base_acc = by_kappa[1.0]
    near_samples, near_acc = by_kappa[1.01]
    # kappa = 1.01 must behave like kappa = 1 (accuracy and cost).
    assert base_acc == 1.0 and near_acc == 1.0
    assert 0.8 <= near_samples / base_samples <= 1.25
