"""Benchmark-suite configuration.

Every figure/table benchmark runs the corresponding experiment exactly once
(``benchmark.pedantic(rounds=1)``) - the experiments are themselves repeated
trials internally - and prints the paper-style table so the suite's output
doubles as the reproduction report.  Set ``REPRO_SCALE=paper`` for the
full-scale run (hours); the default ``smoke`` scale finishes in minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import current_scale


def pytest_collection_modifyitems(config, items):
    """Skip ``bench``-marked items unless explicitly requested.

    The heavy perf-trajectory benchmarks (k=1000 fused vs legacy runs) are
    not part of the tier-1 suite; ``REPRO_RUN_BENCH=1`` (set by
    ``python -m repro bench-export`` / scripts/bench_export.py) enables them.
    """
    if os.environ.get("REPRO_RUN_BENCH"):
        return
    skip = pytest.mark.skip(reason="bench benchmark; set REPRO_RUN_BENCH=1 to run")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session", autouse=True)
def announce_scale():
    scale = current_scale()
    print(
        f"\n[repro] benchmark scale = {scale.name!r} "
        f"(sizes={list(scale.dataset_sizes)}, trials={scale.trials}); "
        "set REPRO_SCALE=paper for full-scale runs\n"
    )
    yield


@pytest.fixture()
def run_figure(benchmark, capsys):
    """Run a figure function once under the benchmark clock and print it."""

    def _run(fig_fn, *args, **kwargs):
        result = benchmark.pedantic(fig_fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
        with capsys.disabled():
            print()
            print(result.format())
        return result

    return _run
