"""Benchmark-suite configuration.

Every figure/table benchmark runs the corresponding experiment exactly once
(``benchmark.pedantic(rounds=1)``) - the experiments are themselves repeated
trials internally - and prints the paper-style table so the suite's output
doubles as the reproduction report.  Set ``REPRO_SCALE=paper`` for the
full-scale run (hours); the default ``smoke`` scale finishes in minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments import current_scale


@pytest.fixture(scope="session", autouse=True)
def announce_scale():
    scale = current_scale()
    print(
        f"\n[repro] benchmark scale = {scale.name!r} "
        f"(sizes={list(scale.dataset_sizes)}, trials={scale.trials}); "
        "set REPRO_SCALE=paper for full-scale runs\n"
    )
    yield


@pytest.fixture()
def run_figure(benchmark, capsys):
    """Run a figure function once under the benchmark clock and print it."""

    def _run(fig_fn, *args, **kwargs):
        result = benchmark.pedantic(fig_fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
        with capsys.disabled():
            print()
            print(result.format())
        return result

    return _run
