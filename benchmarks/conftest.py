"""Benchmark-suite configuration.

Every figure/table benchmark runs the corresponding experiment exactly once
(``benchmark.pedantic(rounds=1)``) - the experiments are themselves repeated
trials internally - and prints the paper-style table so the suite's output
doubles as the reproduction report.  Set ``REPRO_SCALE=paper`` for the
full-scale run (hours); the default ``smoke`` scale finishes in minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import current_scale


def pytest_collection_modifyitems(config, items):
    """Deselect ``bench``-marked items unless explicitly requested.

    The heavy perf-trajectory benchmarks (k=1000 fused vs legacy runs) are
    not part of the tier-1 suite; ``REPRO_RUN_BENCH=1`` (set by
    ``python -m repro bench-export`` / scripts/bench_export.py) enables them.
    Deselection (rather than skip markers or collection errors) keeps
    ``pytest benchmarks`` green in any environment, so CI jobs never need to
    special-case paths - REPRO_RUN_BENCH is the only switch.
    """
    if os.environ.get("REPRO_RUN_BENCH") not in (None, "", "0"):
        return
    kept, deselected = [], []
    for item in items:
        (deselected if "bench" in item.keywords else kept).append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = kept


@pytest.fixture(scope="session", autouse=True)
def announce_scale():
    scale = current_scale()
    print(
        f"\n[repro] benchmark scale = {scale.name!r} "
        f"(sizes={list(scale.dataset_sizes)}, trials={scale.trials}); "
        "set REPRO_SCALE=paper for full-scale runs\n"
    )
    yield


@pytest.fixture()
def run_figure(benchmark, capsys):
    """Run a figure function once under the benchmark clock and print it."""

    def _run(fig_fn, *args, **kwargs):
        result = benchmark.pedantic(fig_fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
        with capsys.disabled():
            print()
            print(result.format())
        return result

    return _run
