"""Fig 5(c): number of active groups as sampling proceeds."""

from repro.experiments import fig5c_active_groups_convergence


def test_fig5c_active_groups(run_figure):
    fig = run_figure(fig5c_active_groups_convergence)
    active = fig.column("active_all")
    # Converges from k active groups down to (near) zero, monotonically-ish.
    assert active[0] >= active[-1]
    assert active[-1] <= 2.0  # a handful of contentious groups at the end
