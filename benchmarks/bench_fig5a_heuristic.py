"""Fig 5(a): accuracy vs heuristic shrinking factor (mixture workload)."""

from repro.experiments import fig5a_heuristic_accuracy


def test_fig5a_heuristic_accuracy(run_figure):
    fig = run_figure(fig5a_heuristic_accuracy)
    factors = fig.column("factor")
    accuracy = fig.column("accuracy")
    by_factor = dict(zip(factors, accuracy))
    # The sound schedule (factor 1) must be perfect; large factors must not be.
    assert by_factor[1.0] == 1.0
    assert min(accuracy) < 1.0
