"""Fig 3(a): percentage of the dataset sampled vs dataset size."""

from repro.experiments import fig3a_percentage_vs_size


def test_fig3a_percentage_vs_size(run_figure):
    fig = run_figure(fig3a_percentage_vs_size)
    series = fig.raw["series"]
    sizes = sorted(series["ifocus"])
    # Percentage sampled falls with dataset size for every algorithm.
    for alg, by_size in series.items():
        assert by_size[sizes[0]] >= by_size[sizes[-1]], alg
    # IFOCUS beats ROUNDROBIN at every size; the R variants beat their bases
    # at the largest size.
    for size in sizes:
        assert series["ifocus"][size] < series["roundrobin"][size]
    assert series["ifocusr"][sizes[-1]] <= series["ifocus"][sizes[-1]]
    assert series["roundrobinr"][sizes[-1]] <= series["roundrobin"][sizes[-1]]
