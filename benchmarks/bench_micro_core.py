"""Micro-benchmarks of the core algorithm paths (statistical timings).

The ``bench``-marked cases track the fused-sampling perf trajectory at
k=1000: ``draw_block`` vs the per-group Python loop it replaced, and a full
IFOCUS run through the fused executor vs ``_legacy_run_ifocus`` - a faithful
reproduction of the pre-fusion executor (per-group draw/charge loops, dict
column mapping, full-segment separation recomputation after every
finalization event) driven through the same public engine API, so the two
runs draw identical samples and produce identical results.  Export with
``python -m repro bench-export`` (writes BENCH_micro.json).
"""

from functools import lru_cache
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.confidence import EpsilonSchedule, ifocus_epsilon
from repro.core.ifocus import run_ifocus
from repro.core.intervals import separated_equal_width_batch
from repro.data.synthetic import make_mixture_dataset
from repro.engines.memory import InMemoryEngine


def test_bench_ifocus_run(benchmark):
    """One IFOCUS run over a fixed 100k-row mixture dataset."""
    population = make_mixture_dataset(k=10, total_size=100_000, seed=7)
    engine = InMemoryEngine(population)
    result = benchmark(lambda: run_ifocus(engine, delta=0.05, seed=7))
    benchmark.extra_info["k"] = 10
    assert result.k == 10


def test_bench_epsilon_schedule(benchmark):
    """Vectorized epsilon over a 1e5-round batch."""
    schedule = EpsilonSchedule(k=10, delta=0.05, c=100.0)
    rounds = np.arange(2, 100_002, dtype=np.float64)
    out = benchmark(lambda: schedule.segment(rounds, 1e6))
    benchmark.extra_info["k"] = 10
    assert np.all(np.asarray(out) > 0)


def test_bench_epsilon_scalar(benchmark):
    out = benchmark(lambda: ifocus_epsilon(5000, k=10, delta=0.05, c=100.0, n=1e6))
    benchmark.extra_info["k"] = 10
    assert out > 0


def test_bench_separation_batch(benchmark):
    """Batched sorted-gap separation test on a 4096 x 10 estimate block."""
    rng = np.random.default_rng(0)
    estimates = rng.uniform(0, 100, size=(4096, 10))
    eps = rng.uniform(0.5, 5.0, size=4096)
    out = benchmark(lambda: separated_equal_width_batch(estimates, eps))
    benchmark.extra_info["k"] = 10
    assert out.shape == (4096, 10)


# ---------------------------------------------------------------------------
# Fused-sampling trajectory benchmarks (k = 1000; REPRO_RUN_BENCH=1 to run)
# ---------------------------------------------------------------------------

_K_LARGE = 1000


@lru_cache(maxsize=1)
def _k1000_engine() -> InMemoryEngine:
    population = make_mixture_dataset(
        k=_K_LARGE, total_size=1_000_000, seed=31, materialize=True
    )
    return InMemoryEngine(population)


def _legacy_run_ifocus(engine, *, delta=0.05, seed=None, initial_batch=64, max_batch=1 << 18):
    """The pre-fusion IFOCUS executor, reproduced via the public engine API.

    One ``run.draw``/``run.charge`` Python call per group per batch, a dict
    for the survivor column mapping, and a batch walk that recomputes the
    epsilon segment and the full remaining separation matrix after every
    finalization event - exactly the per-group-loop hot path this PR
    replaced.  Draws the same samples as :func:`run_ifocus` (per-group
    streams are shared through the engine), so results must match.
    """
    run = engine.open_run(seed, without_replacement=True)
    k = run.k
    sizes = run.sizes()
    schedule = EpsilonSchedule(k, delta, c=run.c)
    sums = np.zeros(k)
    estimates = np.zeros(k)
    samples = np.zeros(k, dtype=np.int64)
    half_widths = np.zeros(k)
    finalized_round = np.zeros(k, dtype=np.int64)
    exhausted = np.zeros(k, dtype=bool)
    active = np.ones(k, dtype=bool)

    def finalize(gid, est, round_m, half_width, consumed, is_exhausted):
        active[gid] = False
        estimates[gid] = est
        samples[gid] += consumed
        half_widths[gid] = half_width
        finalized_round[gid] = round_m
        exhausted[gid] = is_exhausted
        run.charge(gid, consumed)

    for gid in range(k):
        value = float(run.draw(gid, 1)[0])
        sums[gid] = value
        estimates[gid] = value
        run.charge(gid, 1)
    samples[:] = 1
    m = 1
    batch = int(initial_batch)
    while active.any():
        for gid in np.flatnonzero(active & (sizes <= m)):
            finalize(int(gid), run.exact_mean(int(gid)), m, 0.0, 0, True)
        if not active.any():
            break
        active_idx = np.flatnonzero(active)
        b_eff = max(min(batch, int(sizes[active_idx].min()) - m), 1)
        rounds = np.arange(m + 1, m + b_eff + 1, dtype=np.float64)
        blocks = np.stack([run.draw(int(g), b_eff) for g in active_idx], axis=1)
        csums = np.cumsum(blocks, axis=0) + sums[active_idx][None, :]
        prefix = csums / rounds[:, None]

        live = np.arange(active_idx.shape[0])
        frozen = estimates[exhausted]
        row = 0
        while row < b_eff and live.size > 0:
            gids = active_idx[live]
            n_max = float(sizes[gids].max())
            eps_seg = np.asarray(schedule(rounds[row:], n_max), dtype=np.float64)
            sep = separated_equal_width_batch(prefix[row:, live], eps_seg)
            if frozen.size:
                seg = prefix[row:, live]
                for value in frozen:
                    sep &= np.abs(seg - value) > eps_seg[:, None]
            sep_rows = np.flatnonzero(sep.any(axis=1))
            if not sep_rows.size:
                row = b_eff
                break
            event = int(sep_rows[0])
            abs_row = row + event
            eps_here = float(eps_seg[event])
            round_m = int(rounds[abs_row])
            newly = np.flatnonzero(sep[event])
            for j in newly:
                pos = int(live[j])
                finalize(
                    int(active_idx[pos]),
                    float(prefix[abs_row, pos]),
                    round_m,
                    eps_here,
                    abs_row + 1,
                    False,
                )
            live = np.delete(live, newly)
            row = abs_row + 1

        survivors = np.flatnonzero(active)
        if survivors.size:
            col_of = {int(g): i for i, g in enumerate(active_idx)}
            cols = np.array([col_of[int(g)] for g in survivors], dtype=np.int64)
            sums[survivors] = csums[-1, cols]
            estimates[survivors] = prefix[-1, cols]
            samples[survivors] += b_eff
            for g in survivors:
                run.charge(int(g), b_eff)
        m += b_eff
        batch = min(batch * 2, max_batch)
    # Result assembly exactly as the pre-fusion executor wrote it, including
    # its per-group ``run.group_names()[i]`` call (O(k) names rebuilds).
    groups = [
        SimpleNamespace(
            index=i,
            name=run.group_names()[i],
            estimate=float(estimates[i]),
            samples=int(samples[i]),
            half_width=float(half_widths[i]),
            exhausted=bool(exhausted[i]),
            finalized_round=int(finalized_round[i]),
        )
        for i in range(k)
    ]
    return SimpleNamespace(
        estimates=estimates.copy(), samples_per_group=samples.copy(), groups=groups
    )


@pytest.mark.bench
def test_bench_draw_block_k1000(benchmark):
    """Fused block draw: 64 rounds x 1000 groups in one gather."""
    engine = _k1000_engine()
    gids = np.arange(_K_LARGE)

    def setup():
        run = engine.open_run(seed=1)
        run.draw_block(gids, 1)  # materialize the permutations off the clock
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, 64), setup=setup, rounds=10, iterations=1
    )
    benchmark.extra_info["k"] = _K_LARGE
    assert out.shape == (64, _K_LARGE)


@pytest.mark.bench
def test_bench_draw_block_pergroup_k1000(benchmark):
    """The replaced path: one Python draw call per group plus np.stack."""
    engine = _k1000_engine()
    gids = np.arange(_K_LARGE)

    def setup():
        run = engine.open_run(seed=1)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: np.stack([run.draw(int(g), 64) for g in gids], axis=1),
        setup=setup,
        rounds=10,
        iterations=1,
    )
    benchmark.extra_info["k"] = _K_LARGE
    assert out.shape == (64, _K_LARGE)


@pytest.mark.bench
def test_bench_ifocus_k1000_fused(benchmark):
    """Full IFOCUS run at k=1000 through the fused executor."""
    engine = _k1000_engine()
    result = benchmark.pedantic(
        lambda: run_ifocus(engine, delta=0.05, seed=33),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["k"] = _K_LARGE
    assert result.k == _K_LARGE


@pytest.mark.bench
def test_bench_ifocus_k1000_legacy(benchmark):
    """Same run through the vendored pre-fusion executor (the baseline)."""
    engine = _k1000_engine()
    fused = run_ifocus(engine, delta=0.05, seed=33)
    result = benchmark.pedantic(
        lambda: _legacy_run_ifocus(engine, delta=0.05, seed=33),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["k"] = _K_LARGE
    # Apples to apples: identical draws, identical results.
    assert np.allclose(result.estimates, fused.estimates)
    assert np.array_equal(result.samples_per_group, fused.samples_per_group)
