"""Micro-benchmarks of the core algorithm paths (statistical timings)."""

import numpy as np

from repro.core.confidence import EpsilonSchedule, ifocus_epsilon
from repro.core.ifocus import run_ifocus
from repro.core.intervals import separated_equal_width_batch
from repro.data.synthetic import make_mixture_dataset
from repro.engines.memory import InMemoryEngine


def test_bench_ifocus_run(benchmark):
    """One IFOCUS run over a fixed 100k-row mixture dataset."""
    population = make_mixture_dataset(k=10, total_size=100_000, seed=7)
    engine = InMemoryEngine(population)
    result = benchmark(lambda: run_ifocus(engine, delta=0.05, seed=7))
    assert result.k == 10


def test_bench_epsilon_schedule(benchmark):
    """Vectorized epsilon over a 1e5-round batch."""
    schedule = EpsilonSchedule(k=10, delta=0.05, c=100.0)
    rounds = np.arange(2, 100_002, dtype=np.float64)
    out = benchmark(lambda: schedule(rounds, 1e6))
    assert np.all(np.asarray(out) > 0)


def test_bench_epsilon_scalar(benchmark):
    out = benchmark(lambda: ifocus_epsilon(5000, k=10, delta=0.05, c=100.0, n=1e6))
    assert out > 0


def test_bench_separation_batch(benchmark):
    """Batched sorted-gap separation test on a 4096 x 10 estimate block."""
    rng = np.random.default_rng(0)
    estimates = rng.uniform(0, 100, size=(4096, 10))
    eps = rng.uniform(0.5, 5.0, size=4096)
    out = benchmark(lambda: separated_equal_width_batch(estimates, eps))
    assert out.shape == (4096, 10)
