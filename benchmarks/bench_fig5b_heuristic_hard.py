"""Fig 5(b): heuristic shrinking on the hard instance breaks fast."""

from repro.experiments import fig5b_heuristic_accuracy_hard


def test_fig5b_heuristic_accuracy_hard(run_figure):
    fig = run_figure(fig5b_heuristic_accuracy_hard)
    factors = fig.column("factor")
    accuracy = fig.column("accuracy")
    by_factor = dict(zip(factors, accuracy))
    assert by_factor[1.0] == 1.0
    # On the hard instance, shrinking intervals ~20% faster costs accuracy.
    assert by_factor[max(factors)] < 1.0
