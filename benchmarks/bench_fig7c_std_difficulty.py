"""Fig 7(c): difficulty c^2/eta^2 vs truncnorm standard deviation."""

from repro.experiments import fig7c_difficulty_vs_std


def test_fig7c_difficulty_vs_std(run_figure):
    fig = run_figure(fig7c_difficulty_vs_std)
    stds = fig.column("std")
    medians = dict(zip(stds, fig.column("median")))
    # Wider truncated normals push means together - difficulty rises.
    assert medians[max(stds)] >= medians[min(stds)]
