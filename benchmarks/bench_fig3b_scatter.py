"""Fig 3(b): total runtime is proportional to the number of samples."""

from repro.experiments import fig3b_samples_vs_time


def test_fig3b_samples_vs_time(run_figure):
    fig = run_figure(fig3b_samples_vs_time)
    # The paper's scatter is a straight line: samples and simulated runtime
    # must be strongly correlated.
    assert fig.raw["correlation"] > 0.95
