"""Micro-benchmarks of the NEEDLETAIL bitmap substrate."""

import numpy as np

from repro.needletail.bitvector import BitVector
from repro.needletail.hierarchical import HierarchicalBitmap
from repro.needletail.rle import RunLengthBitmap

_N = 1_000_000


def _bits(density: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random(_N) < density


def test_bench_bitvector_build(benchmark):
    bits = _bits(0.1)
    bv = benchmark(lambda: BitVector.from_bools(bits))
    assert bv.count() == bits.sum()


def test_bench_bitvector_select_many(benchmark):
    bv = BitVector.from_bools(_bits(0.1))
    rng = np.random.default_rng(1)
    ranks = rng.integers(0, bv.count(), size=10_000)
    out = benchmark(lambda: bv.select_many(ranks))
    assert out.shape == (10_000,)


def test_bench_bitvector_and(benchmark):
    a = BitVector.from_bools(_bits(0.3, 0))
    b = BitVector.from_bools(_bits(0.3, 1))
    out = benchmark(lambda: a & b)
    assert len(out) == _N


def test_bench_hierarchical_select(benchmark):
    hb = HierarchicalBitmap.from_bools(_bits(0.1), fanout=64)
    total = hb.count()

    def run():
        return [hb.select(r) for r in range(0, total, total // 100)]

    out = benchmark(run)
    assert len(out) >= 100


def test_bench_rle_compress_clustered(benchmark):
    # Clustered bitmap (sorted column): RLE's sweet spot.
    bits = np.zeros(_N, dtype=bool)
    bits[100_000:300_000] = True
    rl = benchmark(lambda: RunLengthBitmap.from_bools(bits))
    assert rl.num_runs == 3
    assert rl.compression_ratio() > 1000
