"""Table 3: flight-records runtimes (ROUNDROBIN vs IFOCUS vs IFOCUS-R)."""

import numpy as np

from repro.experiments import table3_flights_runtimes


def test_table3_flights(run_figure):
    fig = run_figure(table3_flights_runtimes)
    # Group rows by attribute: {attribute: {algorithm: [times per size]}}.
    table: dict[str, dict[str, list[float]]] = {}
    for row in fig.rows:
        attribute, algorithm, *times = row
        table.setdefault(attribute, {})[algorithm] = [float(t) for t in times]
    sizes = [float(s) for s in fig.headers[2:]]
    size_ratio = sizes[-1] / sizes[-2]
    for attribute, by_alg in table.items():
        rr = np.array(by_alg["roundrobin"])
        ifocus = np.array(by_alg["ifocus"])
        ifocusr = np.array(by_alg["ifocusr"])
        # The paper's ordering at every size: IFOCUS-R <= IFOCUS <= ROUNDROBIN.
        assert np.all(ifocus <= rr), attribute
        assert np.all(ifocusr <= ifocus * 1.05), attribute
        # IFOCUS-R grows sublinearly across the last size step (conflicting
        # carrier pairs stop exhausting once groups outgrow the resolution
        # stopping point; at paper scale growth is ~2x per 100x).
        assert ifocusr[-1] < 0.95 * size_ratio * ifocusr[-2], attribute
    assert "all correct" in fig.notes[-1]
