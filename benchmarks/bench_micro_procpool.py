"""Elapsed-wall-clock scaling of the process shard executor (ISSUE 5).

Unlike ``bench_micro_sharded.py`` - whose thread fan-out can only claim the
per-shard thread-CPU *critical path*, because the GIL serializes the Python
half of every draw - the process executor is measured in honest **elapsed
seconds**: the 512 x 1000 fused draw over the k=1000 materialized mixture,
at shards 1/2/4, thread vs process.  On a >=4-core machine the shards=4
process draw must beat the shards=1 process draw by ``scaling_x >= 1.5``
elapsed (the acceptance bar); on 1-2-core CI boxes the gate test skips -
the numbers still export so the committed BENCH_micro.json carries the
trajectory from whatever machine recorded it.

All ops in this file export with ``"guard": false``: their medians measure
machine topology (core count, spawn cost, pipe latency), so
``scripts/check_bench.py`` must never treat them as regression evidence.

Export with ``python -m repro bench-export`` (writes BENCH_micro.json).
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np
import pytest

from repro.data.synthetic import make_mixture_dataset
from repro.engines.memory import InMemoryEngine
from repro.engines.sharded import ShardedEngine

_K_LARGE = 1000
_DRAW_ROUNDS = 512
_REPS = 5


def _usable_cpus() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the host, ignoring affinity masks and cgroup
    pinning - a containerized runner on a 64-core host pinned to 2 CPUs must
    still skip the scaling gate.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@lru_cache(maxsize=1)
def _k1000_population():
    return make_mixture_dataset(
        k=_K_LARGE, total_size=1_000_000, seed=31, materialize=True
    )


@lru_cache(maxsize=None)
def _elapsed_seconds(executor: str, shards: int, reps: int = _REPS) -> float:
    """Median elapsed seconds of the 512 x 1000 fused draw."""
    engine = ShardedEngine(
        InMemoryEngine(_k1000_population()), shards=shards, executor=executor
    )
    gids = np.arange(_K_LARGE)
    times: list[float] = []
    try:
        for rep in range(reps):
            run = engine.open_run(seed=100 + rep)
            run.draw_block(gids, 1)  # materialize permutations off the clock
            t0 = time.perf_counter()
            run.draw_block(gids, _DRAW_ROUNDS)
            times.append(time.perf_counter() - t0)
    finally:
        engine.close()
    return float(np.median(times))


def test_bench_procpool_draw_smoke(benchmark):
    """Light sanity case (runs in --smoke): a 2-shard process engine merges
    bit-identically to the plain engine on a small draw."""
    population = make_mixture_dataset(k=16, total_size=16_000, seed=9, materialize=True)
    plain = InMemoryEngine(population)
    engine = ShardedEngine(InMemoryEngine(population), shards=2, executor="process")
    gids = np.arange(16)

    def setup():
        run = engine.open_run(seed=2)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, 64), setup=setup, rounds=3, iterations=1
    )
    benchmark.extra_info["k"] = 16
    benchmark.extra_info["shards"] = 2
    benchmark.extra_info["executor"] = "process"
    benchmark.extra_info["guard"] = False
    plain_run = plain.open_run(seed=2)
    plain_run.draw_block(gids, 1)
    assert np.array_equal(out, plain_run.draw_block(gids, 64))
    engine.close()


@pytest.mark.bench
def test_bench_procpool_draw_k1000(benchmark):
    """The headline op: shards=4 process draw, with the full elapsed matrix.

    ``extra_info`` carries elapsed medians for every (executor, shards)
    combination plus ``scaling_x`` (process shards=1 elapsed / shards=4
    elapsed) and the recording machine's core count; the >=1.5 acceptance
    gate lives in :func:`test_procpool_elapsed_scaling_gate` so single-core
    CI skips the criterion without losing the exported numbers.
    """
    matrix = {
        f"elapsed_{executor}_s{shards}": _elapsed_seconds(executor, shards)
        for executor in ("thread", "process")
        for shards in (1, 2, 4)
    }
    engine = ShardedEngine(
        InMemoryEngine(_k1000_population()), shards=4, executor="process"
    )
    gids = np.arange(_K_LARGE)

    def setup():
        run = engine.open_run(seed=1)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, _DRAW_ROUNDS),
        setup=setup,
        rounds=_REPS,
        iterations=1,
    )
    engine.close()
    benchmark.extra_info["k"] = _K_LARGE
    benchmark.extra_info["shards"] = 4
    benchmark.extra_info["executor"] = "process"
    benchmark.extra_info["draw_rounds"] = _DRAW_ROUNDS
    benchmark.extra_info["cpu_count"] = _usable_cpus()
    benchmark.extra_info["guard"] = False
    benchmark.extra_info.update({k: round(v, 6) for k, v in matrix.items()})
    benchmark.extra_info["scaling_x"] = round(
        matrix["elapsed_process_s1"] / matrix["elapsed_process_s4"], 2
    )
    assert out.shape == (_DRAW_ROUNDS, _K_LARGE)


@pytest.mark.bench
def test_bench_procpool_draw_thread_k1000(benchmark):
    """The same elapsed draw through the thread executor, for the table."""
    engine = ShardedEngine(
        InMemoryEngine(_k1000_population()), shards=4, executor="thread"
    )
    gids = np.arange(_K_LARGE)

    def setup():
        run = engine.open_run(seed=1)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, _DRAW_ROUNDS),
        setup=setup,
        rounds=_REPS,
        iterations=1,
    )
    engine.close()
    benchmark.extra_info["k"] = _K_LARGE
    benchmark.extra_info["shards"] = 4
    benchmark.extra_info["executor"] = "thread"
    benchmark.extra_info["guard"] = False
    assert out.shape == (_DRAW_ROUNDS, _K_LARGE)


@pytest.mark.bench
def test_procpool_elapsed_scaling_gate():
    """Elapsed scaling_x >= 1.5 at shards=4 - the ISSUE 5 acceptance bar.

    Skip-not-fail below 4 cores: a 1- or 2-vCPU CI runner physically cannot
    express a 4-way elapsed speedup, so the criterion only arms where the
    hardware can satisfy it.
    """
    cpus = _usable_cpus()
    if cpus < 4:
        pytest.skip(
            f"elapsed-scaling gate needs >= 4 cores, found {cpus}; the "
            "measurements still export via test_bench_procpool_draw_k1000"
        )
    scaling = _elapsed_seconds("process", 1) / _elapsed_seconds("process", 4)
    assert scaling >= 1.5, (
        f"process shards=4 elapsed is only {scaling:.2f}x better than "
        "shards=1; expected >= 1.5x on a >= 4-core machine"
    )
