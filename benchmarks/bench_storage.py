"""Durable-store timings: cold index build vs warm memory-mapped re-open.

The PR-8 storage tier exists to make re-opening a NEEDLETAIL index O(1):
``write_segment`` persists the bitmap words and value columns once, and a
later :class:`~repro.storage.DurableCatalog` open maps them back with
``np.memmap`` instead of re-scanning the relation and re-packing bitmaps.
These ops record that trajectory - ``cold_build_s`` (attach + prime from
rows), ``warm_open_s`` (fresh catalog, mapped engine), and their ratio -
so the committed BENCH_micro.json carries the speedup claim the storage CI
leg (``scripts/storage_smoke.py``) gates on.

All ops export with ``"guard": false``: the medians measure disk, page
cache, and fsync latency on whatever machine recorded them, so
``scripts/check_bench.py`` must never treat them as regression evidence.

Export with ``python -m repro bench-export`` (writes BENCH_micro.json).
"""

from __future__ import annotations

import shutil
import time

import numpy as np
import pytest

from repro.needletail.engine import BUILD_COUNTS
from repro.storage import DurableCatalog, MappedNeedletailEngine

_GROUPS = 64
_ROWS_PER_GROUP_SMOKE = 2_000
_ROWS_PER_GROUP_FULL = 20_000
_REPS = 5


def _dataset(rows_per_group: int, groups: int = _GROUPS, seed: int = 13):
    rng = np.random.default_rng(seed)
    return {
        "g": np.repeat([f"g{i:03d}" for i in range(groups)], rows_per_group),
        "v": rng.normal(50.0, 12.0, rows_per_group * groups).clip(0, 100),
    }


def _cold_build_seconds(store_dir, data) -> float:
    """Attach + prime from rows into an empty store (the one-time cost)."""
    shutil.rmtree(store_dir, ignore_errors=True)
    cat = DurableCatalog(store_dir)
    t0 = time.perf_counter()
    cat.attach("t", data)
    primed = cat.prime("t", "g", "v")
    elapsed = time.perf_counter() - t0
    assert "needletail" in primed
    cat.close()
    return elapsed


def _warm_open_seconds(store_dir) -> float:
    """Fresh catalog handle -> mapped engine, no index rebuild."""
    before = dict(BUILD_COUNTS)
    cat = DurableCatalog(store_dir)
    t0 = time.perf_counter()
    engine = cat.indexed_engine(
        "t", "g", "v", group_spec=["g"],
        builder=lambda: (_ for _ in ()).throw(AssertionError("index rebuilt")),
    )
    elapsed = time.perf_counter() - t0
    assert isinstance(engine, MappedNeedletailEngine)
    assert BUILD_COUNTS["needletail"] == before["needletail"]
    cat.close()
    return elapsed


def _record(benchmark, store_dir, data) -> None:
    cold = min(_cold_build_seconds(store_dir, data) for _ in range(_REPS))
    warm = min(_warm_open_seconds(store_dir) for _ in range(_REPS))
    benchmark.extra_info["rows"] = len(data["v"])
    benchmark.extra_info["groups"] = _GROUPS
    benchmark.extra_info["cold_build_s"] = cold
    benchmark.extra_info["warm_open_s"] = warm
    benchmark.extra_info["speedup_x"] = cold / warm if warm else float("inf")
    benchmark.extra_info["guard"] = False


def test_bench_storage_warm_open_smoke(benchmark, tmp_path):
    """Light sanity case (runs in --smoke): the warm open itself, with the
    cold-vs-warm matrix in ``extra_info``."""
    store = tmp_path / "store"
    data = _dataset(_ROWS_PER_GROUP_SMOKE)
    _cold_build_seconds(store, data)  # populate once, off the clock

    def warm_open():
        cat = DurableCatalog(store)
        engine = cat.indexed_engine("t", "g", "v", group_spec=["g"],
                                    builder=lambda: None)
        cat.close()
        return engine

    engine = benchmark.pedantic(warm_open, rounds=3, iterations=1)
    assert isinstance(engine, MappedNeedletailEngine)
    _record(benchmark, store, data)


@pytest.mark.bench
def test_bench_storage_cold_vs_warm(benchmark, tmp_path):
    """The headline op: 1.28M rows, cold attach+prime vs mapped re-open."""
    store = tmp_path / "store"
    data = _dataset(_ROWS_PER_GROUP_FULL)
    _cold_build_seconds(store, data)

    def warm_open():
        cat = DurableCatalog(store)
        engine = cat.indexed_engine("t", "g", "v", group_spec=["g"],
                                    builder=lambda: None)
        cat.close()
        return engine

    engine = benchmark.pedantic(warm_open, rounds=_REPS, iterations=1)
    assert isinstance(engine, MappedNeedletailEngine)
    _record(benchmark, store, data)
