"""Fig 4(a)(b)(c): simulated total / I-O / CPU runtimes vs dataset size."""

from repro.experiments import fig4_runtime_vs_size


def test_fig4_runtime_vs_size(run_figure):
    fig = run_figure(fig4_runtime_vs_size)
    series = fig.raw["series"]
    sizes = sorted(series["scan"])
    big = sizes[-1]
    # SCAN grows linearly with size...
    ratio = series["scan"][big]["total"] / series["scan"][sizes[0]]["total"]
    assert ratio > 0.5 * (big / sizes[0])
    # ... and is CPU-bound (hash probes dominate sequential I/O).
    assert series["scan"][big]["cpu"] > series["scan"][big]["io"]
    # The algorithm ordering holds at the largest size: ifocus < roundrobin,
    # and the resolution variant beats SCAN outright.  (Plain ROUNDROBIN only
    # crosses below SCAN around 1e9 rows - in the paper's Fig. 4 as well -
    # which the smoke sizes don't reach.)
    assert series["ifocus"][big]["total"] < series["roundrobin"][big]["total"]
    assert series["ifocusr"][big]["total"] < series["scan"][big]["total"]
    # Resolution variants are the fastest of their family, and their
    # advantage over SCAN widens with dataset size (the Fig. 4 crossover).
    assert series["ifocusr"][big]["total"] <= series["ifocus"][big]["total"]
    adv_small = series["scan"][sizes[0]]["total"] / series["ifocusr"][sizes[0]]["total"]
    adv_big = series["scan"][big]["total"] / series["ifocusr"][big]["total"]
    assert adv_big > adv_small
