"""Ablation: vectorized batched executor vs the literal per-round loop."""

from repro.experiments import ablation_batching


def test_ablation_batching(run_figure):
    fig = run_figure(ablation_batching)
    # Outputs must be identical; the batched executor should win clearly.
    assert all(row[-1] for row in fig.rows)  # identical column
    speedups = [row[4] for row in fig.rows]
    assert max(speedups) > 2.0
