"""Micro-benchmarks of the sharded execution backend.

The headline case tracks shard scaling on the k=1000 mixture workload: one
fused ``draw_block`` over all 1000 groups, served by a single shard vs fanned
out over 4.  Because CI containers are often pinned to one core, the scaling
metric is the **draw critical path** - the maximum per-shard thread-CPU
seconds (``ShardedRun.shard_seconds``), i.e. the wall time of the slowest
shard in a worker-per-shard deployment - rather than single-box elapsed time,
which cannot parallelize on one core.  Elapsed medians are still recorded for
the regression guard; the critical-path metrics ride along in ``extra_info``
and land in BENCH_micro.json (see DESIGN_PERF.md, "Sharded execution").

Export with ``python -m repro bench-export`` (writes BENCH_micro.json).
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.data.synthetic import make_mixture_dataset
from repro.engines.memory import InMemoryEngine
from repro.engines.sharded import ShardedEngine

_K_LARGE = 1000
_DRAW_ROUNDS = 512
_REPS = 5


@lru_cache(maxsize=1)
def _k1000_population():
    return make_mixture_dataset(k=_K_LARGE, total_size=1_000_000, seed=31, materialize=True)


def _critical_path_seconds(shards: int, reps: int = _REPS) -> float:
    """Median over runs of the slowest shard's draw thread-CPU seconds."""
    engine = ShardedEngine(
        InMemoryEngine(_k1000_population()), shards=shards, record_timings=True
    )
    gids = np.arange(_K_LARGE)
    worst: list[float] = []
    try:
        for rep in range(reps):
            run = engine.open_run(seed=100 + rep)
            run.draw_block(gids, 1)  # materialize permutations off the clock
            before = run.shard_seconds.copy()
            run.draw_block(gids, _DRAW_ROUNDS)
            worst.append(float((run.shard_seconds - before).max()))
    finally:
        engine.close()
    return float(np.median(worst))


def test_bench_sharded_draw_smoke(benchmark):
    """Light sanity case: shards=4 fan-out merges bit-identically (k=32)."""
    population = make_mixture_dataset(k=32, total_size=32_000, seed=9, materialize=True)
    plain = InMemoryEngine(population)
    sharded = ShardedEngine(InMemoryEngine(population), shards=4)
    gids = np.arange(32)

    def setup():
        run = sharded.open_run(seed=2)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, 64), setup=setup, rounds=5, iterations=1
    )
    benchmark.extra_info["k"] = 32
    benchmark.extra_info["shards"] = 4
    plain_run = plain.open_run(seed=2)
    plain_run.draw_block(gids, 1)
    assert np.array_equal(out, plain_run.draw_block(gids, 64))
    sharded.close()


@pytest.mark.bench
def test_bench_sharded_draw_k1000(benchmark):
    """Fan-out draw at k=1000 / shards=4, with critical-path scaling metrics.

    Asserts the acceptance bar for the sharded backend: the shards=4 draw
    critical path is at least 2x shorter than the shards=1 one on the k=1000
    mixture workload (i.e. >= 2x throughput with one worker per shard).
    """
    critical_1 = _critical_path_seconds(shards=1)
    critical_4 = _critical_path_seconds(shards=4)

    engine = ShardedEngine(InMemoryEngine(_k1000_population()), shards=4)
    gids = np.arange(_K_LARGE)

    def setup():
        run = engine.open_run(seed=1)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, _DRAW_ROUNDS),
        setup=setup,
        rounds=_REPS,
        iterations=1,
    )
    engine.close()
    scaling = critical_1 / critical_4
    benchmark.extra_info["k"] = _K_LARGE
    benchmark.extra_info["shards"] = 4
    benchmark.extra_info["draw_rounds"] = _DRAW_ROUNDS
    benchmark.extra_info["critical_path_shards1_seconds"] = critical_1
    benchmark.extra_info["critical_path_shards4_seconds"] = critical_4
    benchmark.extra_info["scaling_x"] = round(scaling, 2)
    assert out.shape == (_DRAW_ROUNDS, _K_LARGE)
    assert scaling >= 2.0, (
        f"shards=4 critical path {critical_4 * 1e3:.2f} ms is only "
        f"{scaling:.2f}x better than shards=1 ({critical_1 * 1e3:.2f} ms); "
        "expected >= 2x"
    )


@pytest.mark.bench
def test_bench_sharded_draw_shards1_k1000(benchmark):
    """Baseline for the regression guard: the same draw through one shard."""
    engine = ShardedEngine(InMemoryEngine(_k1000_population()), shards=1)
    gids = np.arange(_K_LARGE)

    def setup():
        run = engine.open_run(seed=1)
        run.draw_block(gids, 1)
        return (run,), {}

    out = benchmark.pedantic(
        lambda run: run.draw_block(gids, _DRAW_ROUNDS),
        setup=setup,
        rounds=_REPS,
        iterations=1,
    )
    engine.close()
    benchmark.extra_info["k"] = _K_LARGE
    benchmark.extra_info["shards"] = 1
    assert out.shape == (_DRAW_ROUNDS, _K_LARGE)
