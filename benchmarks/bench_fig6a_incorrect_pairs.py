"""Fig 6(a): incorrectly ordered pairs in the running estimates."""

from repro.experiments import fig6a_incorrect_pairs


def test_fig6a_incorrect_pairs(run_figure):
    fig = run_figure(fig6a_incorrect_pairs)
    wrong = fig.column("incorrect_all")
    # Incorrect pairs end at ~zero once sampling completes, and past the
    # earliest rounds (the very first snapshots are single-sample estimates)
    # they stay down at a few of the 45 pairs.
    assert wrong[-1] <= 0.5
    assert max(wrong[len(wrong) // 5 :]) <= 4.0
