"""Fig 7(a): impact of dataset skew on sampling."""

from repro.experiments import fig7a_percentage_vs_skew


def test_fig7a_percentage_vs_skew(run_figure):
    fig = run_figure(fig7a_percentage_vs_skew)
    fractions = fig.column("first_fraction")
    ifocus = dict(zip(fractions, fig.column("ifocus")))
    rr = dict(zip(fractions, fig.column("roundrobin")))
    # The IFOCUS advantage survives heavy skew (paper: holds even at 90%).
    for f in fractions:
        assert ifocus[f] < rr[f]
