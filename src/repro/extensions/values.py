"""Approximate actual values (Problem 6, §6.2.1).

Besides the ordering guarantee, the analyst may want every displayed bar to
be within d of its true value.  The fix is a *minimum sampling* rule: no
group may leave the active set while its half-width exceeds d/2, so every
finalized estimate satisfies |nu_i - mu_i| <= d/2 <= d with probability
>= 1 - delta.  Sample complexity is that of IFOCUS with eta_i replaced by
min(eta_i, d/2).
"""

from __future__ import annotations

from repro._compat import deprecated_entrypoint
from repro._util import check_positive
from repro.core.reference import run_ifocus_reference
from repro.core.types import OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["run_ifocus_values"]


def _run_ifocus_values(
    engine: SamplingEngine,
    *,
    d: float,
    delta: float = 0.05,
    resolution: float = 0.0,
    **kwargs,
) -> OrderingResult:
    """IFOCUS with the value-accuracy guarantee |nu_i - mu_i| <= d.

    Args:
        d: maximum tolerated deviation of any displayed value (same units as
            the aggregated attribute).

    Returns:
        An :class:`OrderingResult` whose groups all finalized with
        half-width < d/2 (exhausted groups are exact).
    """
    check_positive(d, "d")
    result = run_ifocus_reference(
        engine,
        delta=delta,
        resolution=resolution,
        min_half_width=d / 2.0,
        algorithm_name="ifocus-values",
        **kwargs,
    )
    result.params["d"] = d
    return result


run_ifocus_values = deprecated_entrypoint(
    _run_ifocus_values,
    "run_ifocus_values",
    "session.table(...).group_by(X).agg(avg(Y)).values(within=d).run()",
)
