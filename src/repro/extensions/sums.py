"""SUM aggregation (Algorithms 4 and 5, §6.3.1).

Two regimes:

* **Known group sizes** (:func:`run_ifocus_sum`) - sum_i = mu_i * n_i, so the
  IFOCUS machinery carries over with each group's estimate and interval
  scaled by its size (Algorithm 4).  Interval widths now differ across
  groups, so the active-set test is the general heterogeneous-width one.
* **Unknown group sizes** (:func:`run_ifocus_sum_unknown`) - the algorithm
  simultaneously estimates each group's fractional size s_i and mean via the
  unbiased product estimator x*z of the *normalized sum* s_i * mu_i
  (Algorithm 5): x is a sample from the group, z an unbiased [0, 1] estimate
  of s_i.  NEEDLETAIL derives z from bitmap skip counts without I/O; we
  simulate the same unbiased draw as a group-membership indicator of a
  uniformly random tuple (E[z] = s_i), which preserves unbiasedness and the
  [0, c] range of x*z, hence the identical confidence-interval computation
  the paper highlights.
"""

from __future__ import annotations

import numpy as np

from repro._compat import deprecated_entrypoint
from repro._util import check_nonnegative, check_probability
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import separated_general
from repro.core.types import GroupOutcome, OrderingResult
from repro.engines.base import SamplingEngine
from repro.resilience.deadline import Deadline

__all__ = ["run_ifocus_sum", "run_ifocus_sum_unknown"]


def _finalize_result(
    algorithm: str,
    run,
    estimates: np.ndarray,
    counts: np.ndarray,
    half_widths: np.ndarray,
    finalized_round: np.ndarray,
    exhausted: np.ndarray,
    inactive_order: list[int],
    m: int,
    params: dict,
) -> OrderingResult:
    names = run.group_names()
    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(estimates[i]),
            samples=int(counts[i]),
            half_width=float(half_widths[i]),
            exhausted=bool(exhausted[i]),
            finalized_round=int(finalized_round[i]),
        )
        for i in range(len(names))
    ]
    return OrderingResult(
        algorithm=algorithm,
        estimates=estimates.copy(),
        samples_per_group=counts.copy(),
        rounds=m,
        groups=groups,
        inactive_order=inactive_order,
        trace=None,
        params=params,
        stats=run.stats,
    )


def _run_ifocus_sum(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    without_replacement: bool = True,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
    deadline: Deadline | None = None,
) -> OrderingResult:
    """IFOCUS-Sum with known group sizes (Algorithm 4).

    Returns estimates of the group *sums* sigma_i = n_i * mu_i, ordered
    correctly with probability >= 1 - delta.  ``resolution`` is interpreted
    on the sum scale.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    run = engine.open_run(seed, without_replacement=without_replacement)
    k = run.k
    sizes = run.sizes().astype(np.float64)
    schedule = EpsilonSchedule(k, delta, c=run.c)

    sums = np.zeros(k)
    counts = np.zeros(k, dtype=np.int64)
    estimates = np.zeros(k)  # scaled: n_i * mean_i
    half_widths = np.full(k, np.inf)
    active = np.ones(k, dtype=bool)
    exhausted = np.zeros(k, dtype=bool)
    finalized_round = np.zeros(k, dtype=np.int64)
    inactive_order: list[int] = []

    def finalize(gid: int, width: float, m: int, is_exhausted: bool) -> None:
        active[gid] = False
        half_widths[gid] = width
        finalized_round[gid] = m
        exhausted[gid] = is_exhausted
        inactive_order.append(gid)
        if is_exhausted:
            estimates[gid] = sizes[gid] * run.exact_mean(gid)

    for gid in range(k):
        value = float(run.draw(gid, 1)[0])
        sums[gid] = value
        counts[gid] = 1
        estimates[gid] = sizes[gid] * value
        run.charge(gid, 1)
    m = 1
    truncated = False
    deadline_exceeded = False

    while active.any():
        if max_rounds is not None and m >= max_rounds:
            truncated = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m, False)
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m, False)
            break
        if without_replacement:
            for gid in np.flatnonzero(active & (run.sizes() <= counts)):
                finalize(int(gid), 0.0, m, True)
            if not active.any():
                break
        m += 1
        idx = np.flatnonzero(active)
        n_max = float(run.sizes()[idx].max()) if without_replacement else None
        base_eps = float(schedule(float(m), n_max))
        for gid in idx:
            gid = int(gid)
            value = float(run.draw(gid, 1)[0])
            sums[gid] += value
            counts[gid] += 1
            estimates[gid] = sizes[gid] * sums[gid] / counts[gid]
            run.charge(gid, 1)
        half_widths[idx] = sizes[idx] * base_eps  # Alg. 4 line 7: eps_i = n_i * eps_m
        if resolution > 0.0 and float(half_widths[idx].max()) < resolution / 4.0:
            for gid in idx:
                finalize(int(gid), float(half_widths[gid]), m, False)
            break
        sep = separated_general(estimates[idx], half_widths[idx])
        for pos, gid in enumerate(idx):
            if sep[pos]:
                finalize(int(gid), float(half_widths[gid]), m, False)

    return _finalize_result(
        "ifocus-sum",
        run,
        estimates,
        counts,
        np.where(exhausted, 0.0, half_widths),
        finalized_round,
        exhausted,
        inactive_order,
        m,
        {
            "delta": delta,
            "resolution": resolution,
            "known_sizes": True,
            "truncated": truncated,
            "deadline_exceeded": deadline_exceeded,
        },
    )


run_ifocus_sum = deprecated_entrypoint(
    _run_ifocus_sum,
    "run_ifocus_sum",
    "session.table(...).group_by(X).agg(total(Y)).run()",
)


def run_ifocus_sum_unknown(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
    normalized: bool = True,
    deadline: Deadline | None = None,
) -> OrderingResult:
    """IFOCUS-Sum with unknown group sizes (Algorithm 5).

    Estimates the *normalized sums* s_i * mu_i (``normalized=True``) or, when
    the total row count is known, the raw sums N * s_i * mu_i.  The
    size-estimate draws z are free (bitmap metadata, no disk reads), so only
    the value samples are charged, matching the paper's accounting.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    run = engine.open_run(seed, without_replacement=False)  # x*z needs i.i.d. draws
    k = run.k
    sizes = run.sizes().astype(np.float64)
    total = float(sizes.sum())
    fractions = sizes / total
    schedule = EpsilonSchedule(k, delta, c=run.c)
    scale = 1.0 if normalized else total

    seed_seq = np.random.SeedSequence(
        entropy=seed if isinstance(seed, int) else None, spawn_key=(0xC0DE,)
    )
    z_rng = np.random.default_rng(seed_seq)

    sums = np.zeros(k)  # running sums of x*z
    counts = np.zeros(k, dtype=np.int64)
    estimates = np.zeros(k)
    half_widths = np.full(k, np.inf)
    active = np.ones(k, dtype=bool)
    finalized_round = np.zeros(k, dtype=np.int64)
    inactive_order: list[int] = []

    def draw_xz(gid: int) -> float:
        x = float(run.draw(gid, 1)[0])
        z = 1.0 if z_rng.random() < fractions[gid] else 0.0
        run.charge(gid, 1)
        return x * z

    def finalize(gid: int, width: float, m: int) -> None:
        active[gid] = False
        half_widths[gid] = width
        finalized_round[gid] = m
        inactive_order.append(gid)

    for gid in range(k):
        sums[gid] = draw_xz(gid)
        counts[gid] = 1
        estimates[gid] = scale * sums[gid]
    m = 1
    truncated = False
    deadline_exceeded = False

    while active.any():
        if max_rounds is not None and m >= max_rounds:
            truncated = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m)
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m)
            break
        m += 1
        idx = np.flatnonzero(active)
        eps = float(schedule(float(m), None)) * scale
        for gid in idx:
            gid = int(gid)
            sums[gid] += draw_xz(gid)
            counts[gid] += 1
            estimates[gid] = scale * sums[gid] / counts[gid]
        half_widths[idx] = eps
        if resolution > 0.0 and eps < resolution / 4.0:
            for gid in idx:
                finalize(int(gid), eps, m)
            break
        sep = separated_general(estimates[idx], half_widths[idx])
        for pos, gid in enumerate(idx):
            if sep[pos]:
                finalize(int(gid), eps, m)

    return _finalize_result(
        "ifocus-sum-unknown",
        run,
        estimates,
        counts,
        half_widths,
        finalized_round,
        np.zeros(k, dtype=bool),
        inactive_order,
        m,
        {
            "delta": delta,
            "resolution": resolution,
            "known_sizes": False,
            "normalized": normalized,
            "truncated": truncated,
            "deadline_exceeded": deadline_exceeded,
        },
    )
