"""Partial results (Problem 7, §6.2.2).

IFOCUS naturally finalizes easy groups long before hard ones; the
partial-results variant surfaces each group's estimate *the moment it leaves
the active set*, so the analyst can start reading the visualization while
contentious groups keep sampling.  The guarantee: at any point, all groups
emitted so far are correctly ordered among themselves with probability
>= 1 - delta.

Two interfaces:

* :func:`run_ifocus_partial` - callback style: ``on_result(outcome)`` fires
  on every finalization (same thread, zero overhead);
* :func:`stream_partial_results` - iterator style: yields
  :class:`PartialUpdate` objects as they happen, running the algorithm on a
  background thread (the pattern an interactive UI would use).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro._compat import deprecated_entrypoint
from repro.core.reference import run_ifocus_reference
from repro.core.types import GroupOutcome, OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["PartialUpdate", "run_ifocus_partial", "stream_partial_results"]


@dataclass(frozen=True)
class PartialUpdate:
    """One emission of the partial-results stream."""

    outcome: GroupOutcome
    emitted_so_far: int
    total_groups: int

    @property
    def done(self) -> bool:
        return self.emitted_so_far == self.total_groups


def _run_ifocus_partial(
    engine: SamplingEngine,
    on_result: Callable[[GroupOutcome], None],
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    **kwargs,
) -> OrderingResult:
    """Run IFOCUS, invoking ``on_result`` the moment each group finalizes."""
    return run_ifocus_reference(
        engine,
        delta=delta,
        resolution=resolution,
        on_finalize=lambda gid, outcome: on_result(outcome),
        algorithm_name="ifocus-partial",
        **kwargs,
    )


def _stream_partial_results(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    **kwargs,
) -> Iterator[PartialUpdate]:
    """Iterate over partial results as the algorithm produces them.

    The algorithm runs on a daemon thread; the iterator yields one
    :class:`PartialUpdate` per finalized group, in finalization order, and
    terminates after the last group.  Any exception in the algorithm is
    re-raised in the consumer.
    """
    k = engine.k
    out: "queue.Queue[object]" = queue.Queue()
    emitted = {"n": 0}

    def on_result(outcome: GroupOutcome) -> None:
        emitted["n"] += 1
        out.put(PartialUpdate(outcome=outcome, emitted_so_far=emitted["n"], total_groups=k))

    def worker() -> None:
        try:
            _run_ifocus_partial(
                engine, on_result, delta=delta, resolution=resolution, **kwargs
            )
            out.put(None)  # sentinel: finished
        except BaseException as exc:  # pragma: no cover - surfaced to consumer
            out.put(exc)

    thread = threading.Thread(target=worker, daemon=True, name="ifocus-partial")
    thread.start()
    while True:
        item = out.get()
        if item is None:
            break
        if isinstance(item, BaseException):
            raise item
        yield item
    thread.join()


run_ifocus_partial = deprecated_entrypoint(
    _run_ifocus_partial,
    "run_ifocus_partial",
    "for update in session.table(...).group_by(X).agg(avg(Y)).stream(): ...",
)

stream_partial_results = deprecated_entrypoint(
    _stream_partial_results,
    "stream_partial_results",
    "session.table(...).group_by(X).agg(avg(Y)).stream()",
)
