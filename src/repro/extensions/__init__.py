"""Section 6 extensions: weaker/stronger guarantees and other query shapes."""

from repro.extensions.counts import run_count_known, run_count_unknown
from repro.extensions.mistakes import run_ifocus_mistakes
from repro.extensions.multi import (
    MultiAvgResult,
    composite_group_column,
    run_ifocus_multi_avg,
    run_multi_groupby,
)
from repro.extensions.noindex import run_noindex
from repro.extensions.partial import (
    PartialUpdate,
    run_ifocus_partial,
    stream_partial_results,
)
from repro.extensions.sums import run_ifocus_sum, run_ifocus_sum_unknown
from repro.extensions.topt import TopTResult, run_ifocus_topt
from repro.extensions.trends import chain_neighbors, grid_neighbors, run_ifocus_trends
from repro.extensions.values import run_ifocus_values

__all__ = [
    "run_count_known",
    "run_count_unknown",
    "run_ifocus_mistakes",
    "MultiAvgResult",
    "composite_group_column",
    "run_ifocus_multi_avg",
    "run_multi_groupby",
    "run_noindex",
    "PartialUpdate",
    "run_ifocus_partial",
    "stream_partial_results",
    "run_ifocus_sum",
    "run_ifocus_sum_unknown",
    "TopTResult",
    "run_ifocus_topt",
    "chain_neighbors",
    "grid_neighbors",
    "run_ifocus_trends",
    "run_ifocus_values",
]
