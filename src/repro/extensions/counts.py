"""COUNT aggregation (§6.3.2).

With bitmap indexes the per-group row counts are index metadata, so COUNT is
answered *exactly* with zero samples (:func:`run_count_known`).  Without that
metadata (but with the total row count known), COUNT reduces to estimating
the fractional sizes s_i in [0, 1]: each uniformly random tuple is a
Bernoulli(s_i) indicator for group i, and the plain IFOCUS machinery applies
with c = 1 (:func:`run_count_unknown`).
"""

from __future__ import annotations

import numpy as np

from repro._compat import deprecated_entrypoint
from repro.core.ifocus import _run_ifocus
from repro.core.types import GroupOutcome, OrderingResult
from repro.data.distributions import TwoPoint
from repro.data.population import Population, VirtualGroup
from repro.engines.base import SamplingEngine
from repro.engines.memory import InMemoryEngine

__all__ = ["run_count_known", "run_count_unknown"]


def _run_count_known(engine: SamplingEngine) -> OrderingResult:
    """Exact COUNT per group from index metadata (no sampling)."""
    sizes = engine.population.sizes()
    names = engine.population.group_names
    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(sizes[i]),
            samples=0,
            half_width=0.0,
            exhausted=True,
            finalized_round=0,
        )
        for i in range(engine.k)
    ]
    return OrderingResult(
        algorithm="count-known",
        estimates=sizes.astype(np.float64),
        samples_per_group=np.zeros(engine.k, dtype=np.int64),
        rounds=0,
        groups=groups,
        inactive_order=list(range(engine.k)),
        trace=None,
        params={"exact": True},
    )


run_count_known = deprecated_entrypoint(
    _run_count_known,
    "run_count_known",
    'session.table(...).group_by(X).agg(count("*")).run()',
)


def run_count_unknown(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution_fraction: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
) -> OrderingResult:
    """Estimate per-group COUNTs by sampling group-membership indicators.

    Each "sample" for group i is the indicator of a uniformly random tuple
    belonging to S_i (a Bernoulli(s_i) draw in [0, 1]); IFOCUS orders the
    indicator means - and hence the counts - with probability >= 1 - delta.
    ``resolution_fraction`` is the Problem-2 resolution on the [0, 1]
    fraction scale.  Returned estimates are scaled back to counts.
    """
    sizes = engine.population.sizes().astype(np.float64)
    total = float(sizes.sum())
    fractions = sizes / total
    indicator_pop = Population(
        groups=[
            VirtualGroup(name, TwoPoint(float(p), 0.0, 1.0), int(total))
            for name, p in zip(engine.population.group_names, fractions)
        ],
        c=1.0,
        name=f"{engine.population.name}-indicators",
    )
    indicator_engine = InMemoryEngine(indicator_pop, cost_model=engine.cost_model)
    result = _run_ifocus(
        indicator_engine,
        delta=delta,
        resolution=resolution_fraction,
        without_replacement=False,  # indicator draws are i.i.d.
        seed=seed,
        max_rounds=max_rounds,
    )
    scaled = OrderingResult(
        algorithm="count-unknown",
        estimates=result.estimates * total,
        samples_per_group=result.samples_per_group,
        rounds=result.rounds,
        groups=[
            GroupOutcome(
                index=g.index,
                name=g.name,
                estimate=g.estimate * total,
                samples=g.samples,
                half_width=g.half_width * total,
                exhausted=g.exhausted,
                finalized_round=g.finalized_round,
            )
            for g in result.groups
        ],
        inactive_order=result.inactive_order,
        trace=result.trace,
        params={**result.params, "total_rows": total},
        stats=result.stats,
    )
    return scaled
