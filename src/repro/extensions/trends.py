"""Trend-lines and choropleths: neighbor-only ordering (Problem 3, §6.1.1).

When the x axis is ordinal (time) or spatial (regions of a map), only
comparisons between *adjacent* groups drive the visual impression, so a group
may stop sampling as soon as its interval is disjoint from its still-active
neighbors' intervals.  The effective difficulty per group improves from
eta_i = min over all j of |mu_i - mu_j| to
eta*_i = min(tau_{i-1,i}, tau_{i,i+1}).

For choropleths, adjacency generalizes to an arbitrary neighbor graph; pass
``neighbors`` as an adjacency list.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._compat import deprecated_entrypoint
from repro.core.reference import LoopContext, run_ifocus_reference
from repro.core.types import OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["run_ifocus_trends", "chain_neighbors", "grid_neighbors"]


def chain_neighbors(k: int) -> list[list[int]]:
    """Adjacency of an ordinal axis: group i borders i-1 and i+1."""
    return [[j for j in (i - 1, i + 1) if 0 <= j < k] for i in range(k)]


def grid_neighbors(rows: int, cols: int) -> list[list[int]]:
    """4-neighborhood adjacency of a rows x cols choropleth grid.

    Group index is row-major: region (r, c) is group r*cols + c.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    out: list[list[int]] = []
    for r in range(rows):
        for c in range(cols):
            adj = []
            if r > 0:
                adj.append((r - 1) * cols + c)
            if r < rows - 1:
                adj.append((r + 1) * cols + c)
            if c > 0:
                adj.append(r * cols + c - 1)
            if c < cols - 1:
                adj.append(r * cols + c + 1)
            out.append(adj)
    return out


def _neighbor_policy(neighbors: Sequence[Sequence[int]]):
    def policy(ctx: LoopContext) -> np.ndarray:
        out = np.zeros(ctx.k, dtype=bool)
        est, hw = ctx.estimates, ctx.half_widths
        for i in np.flatnonzero(ctx.active):
            i = int(i)
            clear = True
            for j in neighbors[i]:
                if ctx.active[j] and abs(est[i] - est[j]) <= hw[i] + hw[j]:
                    clear = False
                    break
            out[i] = clear
        return out

    return policy


def _run_ifocus_trends(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    neighbors: Sequence[Sequence[int]] | None = None,
    **kwargs,
) -> OrderingResult:
    """IFOCUS with the neighbor-overlap active-set rule.

    Args:
        engine: sampling engine; group order is the x-axis order.
        neighbors: adjacency list; defaults to the ordinal chain
            (trend-line).  Pass :func:`grid_neighbors` output for a
            choropleth.
        Other keyword arguments are forwarded to the reference loop.

    Returns:
        An :class:`OrderingResult`; with probability >= 1 - delta all
        adjacent pairs (per the graph) are ordered correctly.
    """
    k = engine.k
    if neighbors is None:
        neighbors = chain_neighbors(k)
    if len(neighbors) != k:
        raise ValueError(f"neighbors must list all {k} groups, got {len(neighbors)}")
    for i, adj in enumerate(neighbors):
        for j in adj:
            if not 0 <= j < k:
                raise ValueError(f"neighbor {j} of group {i} out of range")
            if i not in neighbors[j]:
                raise ValueError(f"neighbor graph must be symmetric: {i} -> {j}")
    return run_ifocus_reference(
        engine,
        delta=delta,
        resolution=resolution,
        policy=_neighbor_policy(neighbors),
        algorithm_name="ifocus-trends",
        **kwargs,
    )


run_ifocus_trends = deprecated_entrypoint(
    _run_ifocus_trends,
    "run_ifocus_trends",
    "session.table(...).group_by(X).agg(avg(Y)).trends().run()",
)
