"""Allowing mistakes (Problem 5, §6.1.3).

If the analyst tolerates incorrect ordering on a fraction of the pairwise
comparisons, the algorithm can skip the most contentious pairs: it tracks the
fraction of pairs whose relative order is committed (both endpoints inactive)
and terminates as soon as that fraction reaches the requested level, leaving
the still-active groups at their current estimates.
"""

from __future__ import annotations

from repro._compat import deprecated_entrypoint
from repro._util import check_probability
from repro.core.reference import LoopContext, run_ifocus_reference
from repro.core.types import OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["run_ifocus_mistakes"]


def _run_ifocus_mistakes(
    engine: SamplingEngine,
    *,
    min_correct_fraction: float = 0.9,
    delta: float = 0.05,
    resolution: float = 0.0,
    **kwargs,
) -> OrderingResult:
    """IFOCUS that stops once enough pairwise orderings are resolved.

    Args:
        min_correct_fraction: the gamma of Problem 5 - the fraction of pairs
            (i, j) that must be ordered correctly (with probability
            >= 1 - delta).  1.0 degenerates to plain IFOCUS.

    Returns:
        An :class:`OrderingResult`; ``params["resolved_pair_fraction"]``
        records the fraction actually resolved at termination.
    """
    if min_correct_fraction != 1.0:
        check_probability(min_correct_fraction, "min_correct_fraction")

    observed = {"fraction": 1.0, "fired": False}

    def terminate(ctx: LoopContext) -> bool:
        frac = ctx.resolved_pair_fraction()
        if frac >= min_correct_fraction:
            observed["fraction"] = frac
            observed["fired"] = True
            return True
        return False

    result = run_ifocus_reference(
        engine,
        delta=delta,
        resolution=resolution,
        terminate_when=terminate if min_correct_fraction < 1.0 else None,
        algorithm_name="ifocus-mistakes",
        **kwargs,
    )
    result.params["min_correct_fraction"] = min_correct_fraction
    result.params["early_terminated"] = observed["fired"]
    result.params["resolved_pair_fraction"] = observed["fraction"]
    return result


run_ifocus_mistakes = deprecated_entrypoint(
    _run_ifocus_mistakes,
    "run_ifocus_mistakes",
    "session.table(...).group_by(X).agg(avg(Y)).mistakes(gamma).run()",
)
