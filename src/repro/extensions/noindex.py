"""No-index querying (Problem 9, §6.3.6).

Without an index on the group-by attribute, the engine cannot sample a
*chosen* group - only a uniformly random tuple from the whole relation, which
then lands in whatever group it belongs to.  The per-group sample counts are
therefore proportional to group sizes rather than to need, so contentious
small groups starve; the paper notes this behaves like round-robin at best
(and strictly worse under skew), yet still beats a full scan.

The anytime Hoeffding intervals still apply per group (counts just arrive
unevenly), and the run stops when all pairwise intervals are disjoint or the
resolution kicks in.
"""

from __future__ import annotations

import numpy as np

from repro._compat import deprecated_entrypoint
from repro._util import check_nonnegative, check_probability
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import separated_general
from repro.core.types import GroupOutcome, OrderingResult
from repro.engines.base import SamplingEngine
from repro.resilience.deadline import Deadline

__all__ = ["run_noindex"]


def _run_noindex(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    seed: int | np.random.Generator | None = None,
    batch: int = 256,
    max_samples: int | None = None,
    deadline: Deadline | None = None,
) -> OrderingResult:
    """Order group averages using only whole-table uniform sampling.

    Args:
        engine: sampling engine (its per-group streams emulate "this uniform
            tuple happened to belong to group i").
        batch: tuples drawn between termination checks.
        max_samples: optional cap on total tuples; hitting it finalizes the
            remaining groups at their current estimates
            (``params["truncated"]`` is set).
        deadline: optional time budget / cancel token, polled once per
            batch; expiry finalizes at current estimates and sets
            ``params["deadline_exceeded"]``.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    run = engine.open_run(seed, without_replacement=False)
    k = run.k
    sizes = run.sizes().astype(np.float64)
    weights = sizes / sizes.sum()
    schedule = EpsilonSchedule(k, delta, c=run.c)
    chooser = np.random.default_rng(
        np.random.SeedSequence(entropy=seed if isinstance(seed, int) else None, spawn_key=(0xF00D,))
    )

    sums = np.zeros(k)
    counts = np.zeros(k, dtype=np.int64)
    total = 0
    truncated = False
    deadline_exceeded = False

    while True:
        gids = chooser.choice(k, size=batch, p=weights)
        for gid in range(k):
            hit = int((gids == gid).sum())
            if hit:
                block = run.draw(gid, hit)
                sums[gid] += float(block.sum())
                counts[gid] += hit
                run.charge(gid, hit)
        total += batch
        if np.all(counts >= 1):
            est = sums / counts
            widths = np.asarray(schedule(counts.astype(np.float64), None), dtype=np.float64)
            if resolution > 0.0 and float(widths.max()) < resolution / 4.0:
                break
            if separated_general(est, widths).all():
                break
        if max_samples is not None and total >= max_samples:
            truncated = True
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            break

    est = sums / np.maximum(counts, 1)
    widths = np.asarray(
        schedule(np.maximum(counts, 1).astype(np.float64), None), dtype=np.float64
    )
    groups = [
        GroupOutcome(
            index=i,
            name=run.group_names()[i],
            estimate=float(est[i]),
            samples=int(counts[i]),
            half_width=float(widths[i]),
            exhausted=False,
            finalized_round=int(counts[i]),
        )
        for i in range(k)
    ]
    return OrderingResult(
        algorithm="noindex",
        estimates=est,
        samples_per_group=counts.copy(),
        rounds=total,
        groups=groups,
        inactive_order=list(np.argsort(counts, kind="stable")),
        trace=None,
        params={
            "delta": delta,
            "resolution": resolution,
            "truncated": truncated,
            "deadline_exceeded": deadline_exceeded,
        },
        stats=run.stats,
    )


run_noindex = deprecated_entrypoint(
    _run_noindex,
    "run_noindex",
    'session.table(...).group_by(X).agg(avg(Y)).on_engine("noindex").run()',
)
