"""Multiple group-bys and multiple aggregates (§6.3.4, §6.3.5).

* :func:`composite_group_column` / :func:`run_multi_groupby` - GROUP BY X, Z
  becomes a single group-by on the cross-product key "x|z" (the
  two-dimensional visualization with a cross-product x axis the paper
  describes), executed through the standard engine with a joint index.
* :func:`run_ifocus_multi_avg` - SELECT X, AVG(Y), AVG(Z): Problem 8's
  two-phase schedule.  Phase 1 runs IFOCUS on AVG(Y) with budget delta/2
  while *also* accumulating Z from every sampled row; phase 2 re-activates
  all groups and continues sampling until the AVG(Z) intervals separate,
  starting from the phase-1 counts - which is why the second phase is
  usually much cheaper than a fresh run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._compat import deprecated_entrypoint
from repro._util import check_probability, spawn_group_rngs
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import separated_general
from repro.core.types import GroupOutcome, OrderingResult
from repro.needletail.engine import NeedletailEngine
from repro.needletail.index import BitmapIndex
from repro.needletail.table import Column, Table

__all__ = [
    "composite_group_column",
    "run_multi_groupby",
    "MultiAvgResult",
    "run_ifocus_multi_avg",
]


def composite_group_column(table: Table, columns: list[str], sep: str = "|") -> np.ndarray:
    """Cross-product key column for GROUP BY over several attributes."""
    if not columns:
        raise ValueError("need at least one group-by column")
    parts = [np.asarray(table.column(c)).astype(str) for c in columns]
    out = parts[0]
    for part in parts[1:]:
        out = np.char.add(np.char.add(out, sep), part)
    return out


def _run_multi_groupby(
    table: Table,
    group_columns: list[str],
    value_column: str,
    *,
    algorithm: str = "ifocus",
    c: float | None = None,
    **kwargs,
) -> tuple[OrderingResult, NeedletailEngine]:
    """GROUP BY X, Z via the cross-product key (§6.3.4).

    Builds the composite key column, indexes it, and runs the requested
    algorithm.  Returns (result, engine) so callers can map composite labels
    back to attribute pairs.
    """
    from repro.core.registry import run_algorithm

    key = composite_group_column(table, group_columns)
    augmented = Table(
        table.name,
        [Column(name, table.column(name), 8) for name in table.column_names]
        + [Column("__group_key__", key, 8)],
    )
    engine = NeedletailEngine(augmented, "__group_key__", value_column, c=c)
    result = run_algorithm(algorithm, engine, **kwargs)
    return result, engine


run_multi_groupby = deprecated_entrypoint(
    _run_multi_groupby,
    "run_multi_groupby",
    "session.table(...).group_by(X, Z).agg(avg(Y)).run()",
)


@dataclass
class MultiAvgResult:
    """Result of the two-aggregate run: one OrderingResult per aggregate."""

    y: OrderingResult
    z: OrderingResult
    samples_per_group: np.ndarray

    @property
    def total_samples(self) -> int:
        return int(self.samples_per_group.sum())


def _run_ifocus_multi_avg(
    table: Table,
    group_by: str,
    y_column: str,
    z_column: str,
    *,
    delta: float = 0.05,
    c_y: float | None = None,
    c_z: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
) -> MultiAvgResult:
    """SELECT X, AVG(Y), AVG(Z) ... GROUP BY X (Problem 8).

    Both orderings (by AVG(Y) and by AVG(Z)) are correct simultaneously with
    probability >= 1 - delta (each phase gets delta/2).  Every sampled row
    contributes to both aggregates, so phase 2 starts from the phase-1 sample
    counts instead of from scratch.
    """
    check_probability(delta, "delta")
    y_values = np.asarray(table.column(y_column), dtype=np.float64)
    z_values = np.asarray(table.column(z_column), dtype=np.float64)
    if c_y is None:
        c_y = max(float(y_values.max()), 1e-9)
    if c_z is None:
        c_z = max(float(z_values.max()), 1e-9)
    index = BitmapIndex(table, group_by)
    keys = [str(k) for k in index.keys]
    k = len(keys)
    sizes = np.array([index.count_for(key) for key in index.keys], dtype=np.int64)
    rngs = spawn_group_rngs(seed, k)
    perms = [rng.permutation(int(n)) for rng, n in zip(rngs, sizes)]

    sched_y = EpsilonSchedule(k, delta / 2.0, c=c_y)
    sched_z = EpsilonSchedule(k, delta / 2.0, c=c_z)

    counts = np.zeros(k, dtype=np.int64)
    sum_y = np.zeros(k)
    sum_z = np.zeros(k)
    samples = np.zeros(k, dtype=np.int64)

    def draw(gid: int) -> None:
        if counts[gid] >= sizes[gid]:
            raise RuntimeError(f"group {keys[gid]} exhausted")  # guarded by caller
        rank = perms[gid][counts[gid]]
        rowid = index.sample_rowids(index.keys[gid], np.array([rank]))[0]
        sum_y[gid] += y_values[rowid]
        sum_z[gid] += z_values[rowid]
        counts[gid] += 1
        samples[gid] += 1

    def run_phase(
        target_sums: np.ndarray, schedule: EpsilonSchedule
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
        """Sample active groups until their target-aggregate intervals separate."""
        active = np.ones(k, dtype=bool)
        exhausted = np.zeros(k, dtype=bool)
        half_widths = np.full(k, np.inf)
        finalized = np.zeros(k, dtype=np.int64)
        order: list[int] = []
        guard = 0
        while active.any():
            guard += 1
            if max_rounds is not None and guard > max_rounds:
                for gid in np.flatnonzero(active):
                    active[gid] = False
                    order.append(int(gid))
                break
            for gid in np.flatnonzero(active & (counts >= sizes)):
                active[gid] = False
                exhausted[gid] = True
                half_widths[gid] = 0.0
                finalized[gid] = int(counts[gid])
                order.append(int(gid))
            if not active.any():
                break
            idx = np.flatnonzero(active)
            n_max = float(sizes[idx].max())
            for gid in idx:
                draw(int(gid))
            half_widths[idx] = np.asarray(
                schedule(counts[idx].astype(np.float64), n_max)
            )
            est = target_sums / np.maximum(counts, 1)
            sep = separated_general(est[idx], half_widths[idx])
            for pos, gid in enumerate(idx):
                if sep[pos]:
                    active[gid] = False
                    finalized[gid] = int(counts[gid])
                    order.append(int(gid))
        est = target_sums / np.maximum(counts, 1)
        return est.copy(), half_widths, exhausted, order

    # Seed: one sample per group, then the two phases.
    for gid in range(k):
        draw(gid)
    est_y, hw_y, exh_y, order_y = run_phase(sum_y, sched_y)
    est_z, hw_z, exh_z, order_z = run_phase(sum_z, sched_z)
    # Phase 2 continued sampling, so refresh the Y estimates too (they only
    # get more accurate; ordering was already certified at phase-1 widths).
    est_y = sum_y / counts

    def build(est, hw, exh, order, name) -> OrderingResult:
        groups = [
            GroupOutcome(
                index=i,
                name=keys[i],
                estimate=float(est[i]),
                samples=int(counts[i]),
                half_width=float(hw[i]) if not exh[i] else 0.0,
                exhausted=bool(exh[i]),
                finalized_round=int(counts[i]),
            )
            for i in range(k)
        ]
        return OrderingResult(
            algorithm=name,
            estimates=np.asarray(est, dtype=np.float64),
            samples_per_group=counts.copy(),
            rounds=int(counts.max()),
            groups=groups,
            inactive_order=order,
            trace=None,
            params={"delta": delta / 2.0},
        )

    return MultiAvgResult(
        y=build(est_y, hw_y, exh_y, order_y, "ifocus-multi-avg-y"),
        z=build(est_z, hw_z, exh_z, order_z, "ifocus-multi-avg-z"),
        samples_per_group=samples.copy(),
    )


run_ifocus_multi_avg = deprecated_entrypoint(
    _run_ifocus_multi_avg,
    "run_ifocus_multi_avg",
    "session.table(...).group_by(X).agg(avg(Y), avg(Z)).run()",
)
