"""Top-t results (Problem 4, §6.1.2).

With many groups the analyst only inspects the t largest (or smallest), so a
group may stop sampling as soon as either

* it is clearly *outside* the top t: at least t other groups' interval lower
  bounds lie entirely above its upper bound (its exact position among the
  losers is irrelevant), or
* it is separated from every other active group (the plain IFOCUS rule,
  which settles its position among the potential top-t).

With probability >= 1 - delta the reported t groups are the true top t and
are correctly ordered among themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._compat import deprecated_entrypoint
from repro.core.reference import LoopContext, default_policy, run_ifocus_reference
from repro.core.types import OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["TopTResult", "run_ifocus_topt"]


@dataclass
class TopTResult:
    """Result wrapper: the full OrderingResult plus the reported top-t."""

    result: OrderingResult
    t: int
    largest: bool

    @property
    def top_indices(self) -> np.ndarray:
        """Group indices of the reported top-t, best first."""
        sign = -1.0 if self.largest else 1.0
        return np.argsort(sign * self.result.estimates, kind="stable")[: self.t]

    @property
    def top_names(self) -> list[str]:
        return [self.result.groups[int(i)].name for i in self.top_indices]

    @property
    def top_estimates(self) -> np.ndarray:
        return self.result.estimates[self.top_indices]


def _topt_policy(t: int, largest: bool):
    def policy(ctx: LoopContext) -> np.ndarray:
        out = default_policy(ctx)  # fully separated groups may always leave
        est, hw = ctx.estimates, ctx.half_widths
        if largest:
            lower, upper = est - hw, est + hw
        else:
            # Mirror: "above" means better (smaller); negate values.
            lower, upper = -est - hw, -est + hw
        for i in np.flatnonzero(ctx.active & ~out):
            i = int(i)
            # Groups whose entire interval lies above i's upper bound.
            clearly_above = int(np.sum(np.delete(lower, i) > upper[i]))
            if clearly_above >= t:
                out[i] = True
        return out

    return policy


def _run_ifocus_topt(
    engine: SamplingEngine,
    t: int,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    largest: bool = True,
    **kwargs,
) -> TopTResult:
    """IFOCUS specialized to the top-t property.

    Args:
        engine: sampling engine.
        t: how many top groups must be identified and internally ordered.
        largest: report the largest-t (True) or smallest-t (False) groups.
    """
    if not 1 <= t <= engine.k:
        raise ValueError(f"t must be in [1, {engine.k}], got {t}")
    result = run_ifocus_reference(
        engine,
        delta=delta,
        resolution=resolution,
        policy=_topt_policy(t, largest),
        algorithm_name="ifocus-topt",
        **kwargs,
    )
    return TopTResult(result=result, t=t, largest=largest)


run_ifocus_topt = deprecated_entrypoint(
    _run_ifocus_topt,
    "run_ifocus_topt",
    "session.table(...).group_by(X).agg(avg(Y)).top(t).run()",
)
