"""Chunked CSV source: stream a delimited file without materializing it.

The legacy ``load_csv_table`` read every row into one Python list before
building arrays - O(file) Python objects resident at once.  ``CSVSource``
replaces that with two bounded streaming passes:

1. **Schema pass** (:meth:`CSVSource.schema`, cached): reads the header,
   rejects duplicate column names, validates row widths, counts rows, and
   type-infers every column chunk-by-chunk (a column is numeric iff every
   row parses as a float; ``group_columns``/``value_columns`` pin the
   decision explicitly).  Only one chunk of raw rows is alive at a time.
2. **Scan pass** (:meth:`DataSource.scan`): re-reads the file in
   ``chunk_rows``-row chunks, converting only the requested columns with
   the types the schema pass fixed, applying any pushed-down predicate per
   chunk.

Because typing is decided over the *whole* file before any scan, a chunked
scan produces exactly the arrays the eager loader produced (same dtypes,
same parse), which the parity tests assert.

Files must be UTF-8; a decode failure surfaces as a clear ``ValueError``
naming the file and the offending byte, not a bare ``UnicodeDecodeError``
from deep inside the csv module.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Iterator

import numpy as np

from repro.catalog.schema import NUMERIC, STRING, ColumnSchema, Schema
from repro.catalog.source import Chunk, DataSource

__all__ = ["CSVSource", "DEFAULT_CHUNK_ROWS"]

#: Default rows per scan chunk - small enough to keep raw-row memory modest,
#: large enough that per-chunk numpy conversion overhead is negligible.
DEFAULT_CHUNK_ROWS = 65_536


class CSVSource(DataSource):
    """A lazily-scanned CSV file with a header row."""

    kind = "csv"

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        group_columns: Iterable[str] = (),
        value_columns: Iterable[str] = (),
        delimiter: str = ",",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self._path = os.fspath(path)
        self._group_cols = set(group_columns)
        self._value_cols = set(value_columns)
        overlap = self._group_cols & self._value_cols
        if overlap:
            raise ValueError(f"columns marked both group and value: {sorted(overlap)}")
        self._delimiter = delimiter
        self._chunk_rows = int(chunk_rows)
        self._schema: Schema | None = None
        self._num_rows: int | None = None

    @property
    def path(self) -> str:
        return self._path

    def describe(self) -> str:
        return f"csv {os.path.basename(self._path)!r}"

    def row_count_hint(self) -> int | None:
        """Exact row count once the schema pass has run, else ``None``."""
        return self._num_rows

    def refresh(self) -> None:
        """Forget the inferred schema/row count; re-infer on next use."""
        self._schema = None
        self._num_rows = None

    # -- header and raw-row streaming ---------------------------------------

    def _read_header(self, reader) -> list[str]:
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{self._path}: empty CSV (no header row)") from None
        header = [h.strip() for h in header]
        dupes = sorted({h for h in header if header.count(h) > 1})
        if dupes:
            raise ValueError(
                f"{self._path}: duplicate CSV header column(s) {dupes}; "
                "column names must be unique (an earlier column would be "
                "silently overwritten otherwise)"
            )
        unknown = (self._group_cols | self._value_cols) - set(header)
        if unknown:
            raise KeyError(f"{self._path}: no such CSV columns: {sorted(unknown)}")
        return header

    def _raw_chunks(self) -> Iterator[tuple[list[str], list[list[str]]]]:
        """Yield ``(header, row_chunk)`` pairs; one row chunk alive at a time."""
        try:
            with open(self._path, newline="", encoding="utf-8") as fh:
                reader = csv.reader(fh, delimiter=self._delimiter)
                header = self._read_header(reader)
                rows: list[list[str]] = []
                for row in reader:
                    if not row:
                        continue
                    rows.append(row)
                    if len(rows) >= self._chunk_rows:
                        yield header, rows
                        rows = []
                if rows:
                    yield header, rows
        except UnicodeDecodeError as exc:
            raise ValueError(
                f"{self._path}: not valid UTF-8 ({exc}); CSV sources require "
                "UTF-8 text - re-encode the file or convert it upstream"
            ) from None

    # -- schema inference ----------------------------------------------------

    def schema(self) -> Schema:
        """Infer (and cache) the schema with one bounded streaming pass."""
        if self._schema is not None:
            return self._schema
        header: list[str] | None = None
        numeric: dict[str, bool] = {}
        num_rows = 0
        bad_rows = 0
        bad_widths: set[int] = set()
        it = self._raw_chunks()
        while True:
            try:
                header, rows = next(it)
            except StopIteration:
                break
            for row in rows:
                if len(row) != len(header):
                    bad_rows += 1
                    bad_widths.add(len(row))
            num_rows += len(rows)
            if bad_rows:
                del rows
                continue
            for j, name in enumerate(header):
                if name in self._group_cols or numeric.get(name) is False:
                    numeric[name] = False
                    continue
                raw = np.array([row[j].strip() for row in rows], dtype=str)
                try:
                    raw.astype(np.float64)
                except ValueError:
                    if name in self._value_cols:
                        raise ValueError(
                            f"{self._path}: value column {name!r} has "
                            "non-numeric entries"
                        ) from None
                    numeric[name] = False
                else:
                    numeric[name] = numeric.get(name, True)
            del rows
        if header is None:
            # The header parsed but no data rows followed.
            with open(self._path, newline="", encoding="utf-8") as fh:
                header = self._read_header(csv.reader(fh, delimiter=self._delimiter))
            raise ValueError(f"{self._path}: CSV has a header but no data rows")
        if bad_rows:
            raise ValueError(
                f"{self._path}: {bad_rows} row(s) have {sorted(bad_widths)} "
                f"fields, expected {len(header)}"
            )
        self._schema = Schema(
            ColumnSchema(
                name,
                NUMERIC
                if name not in self._group_cols and numeric.get(name, False)
                else STRING,
            )
            for name in header
        )
        self._num_rows = num_rows
        return self._schema

    # -- scanning ------------------------------------------------------------

    def _chunks(self, columns: tuple[str, ...]) -> Iterator[Chunk]:
        schema = self.schema()
        it = self._raw_chunks()
        while True:
            try:
                header, rows = next(it)
            except StopIteration:
                return
            index = {name: header.index(name) for name in columns}
            out: dict[str, np.ndarray] = {}
            for name in columns:
                j = index[name]
                raw = np.array([row[j].strip() for row in rows], dtype=str)
                if schema.is_numeric(name):
                    out[name] = raw.astype(np.float64)
                else:
                    out[name] = raw
            del rows
            yield out
