"""``attach()`` target dispatch: one polymorphic front door for data sources.

The five legacy registration doors (``register_source``/``register_csv``/
``register_parquet``/``register_synthetic``/``register_flights``) each bound
one *kind* of target.  ``Session.attach(name, target, **opts)`` and
``Catalog.attach(...)`` replace the sprawl with a single call that dispatches
on what ``target`` *is*:

=====================================  =========================================
target                                 resolves to
=====================================  =========================================
a :class:`DataSource`                  itself (opts must be empty)
a :class:`~repro.needletail.table.Table`  :class:`TableSource`
a ``{column: ndarray}`` mapping        :class:`TableSource`
a DataFrame-like (``.columns`` +       :class:`TableSource` over its columns
``__getitem__``)
a path ending ``.csv``/``.tsv``        :class:`CSVSource` (``.tsv``: tab
                                       delimiter unless overridden)
a path ending ``.parquet``/``.pq``     :class:`ParquetSource`
a :class:`SourceSpec`                  its ``kind``'s source (``csv``,
                                       ``parquet``, ``synthetic``,
                                       ``flights``)
=====================================  =========================================

``SourceSpec`` names targets that have no natural filesystem or in-memory
form - a synthetic generator family, the paper's flights workload - and is
also how a :class:`~repro.storage.DurableCatalog` records *every* binding on
disk: each resolver here has an inverse in the durable catalog's reload path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.catalog.csv import CSVSource
from repro.catalog.parquet import ParquetSource
from repro.catalog.source import DataSource, TableSource
from repro.catalog.synthetic import SyntheticSource
from repro.needletail.table import Table

__all__ = ["SourceSpec", "resolve_target", "SUFFIX_SOURCES"]


@dataclass(frozen=True)
class SourceSpec:
    """A declarative attach target: a source kind plus its options.

    Examples::

        session.attach("bench", SourceSpec("synthetic", family="mixture", k=10))
        session.attach("flights", SourceSpec("flights", rows=50_000, seed=0))
        session.attach("t", SourceSpec("csv", path="t.data", delimiter="|"))
    """

    kind: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __init__(self, kind: str, **options) -> None:
        object.__setattr__(self, "kind", str(kind))
        object.__setattr__(self, "options", dict(options))


#: Path-suffix dispatch table: suffix -> (source kind, default extra opts).
SUFFIX_SOURCES = {
    ".csv": ("csv", {}),
    ".tsv": ("csv", {"delimiter": "\t"}),
    ".parquet": ("parquet", {}),
    ".pq": ("parquet", {}),
}


def _dataframe_columns(target) -> dict[str, np.ndarray] | None:
    """``{column: ndarray}`` for a DataFrame-like target, else ``None``.

    Duck-typed (no pandas import): anything exposing an iterable ``columns``
    of names and column access via ``__getitem__`` qualifies - which covers
    pandas/polars-style frames without depending on either.
    """
    columns = getattr(target, "columns", None)
    if columns is None or isinstance(target, (Table, Mapping)):
        return None
    try:
        names = [str(c) for c in list(columns)]
        return {name: np.asarray(target[name]) for name in names}
    except Exception:
        return None


def _from_spec(name: str, spec: SourceSpec, opts: dict) -> DataSource:
    options = {**spec.options, **opts}
    kind = spec.kind.lower()
    if kind == "csv":
        path = options.pop("path")
        source = CSVSource(path, **options)
        source.schema()  # surface file/typing errors at attach time
        return source
    if kind == "parquet":
        path = options.pop("path")
        return ParquetSource(path, **options)
    if kind == "synthetic":
        family = options.pop("family")
        return SyntheticSource(family, **options)
    if kind == "flights":
        from repro.data.flights import make_flights_table

        rows = int(options.pop("rows", 100_000))
        seed = options.pop("seed", 0)
        if options:
            raise TypeError(
                f"flights spec got unknown options {sorted(options)}; "
                "it takes rows= and seed="
            )
        return TableSource(make_flights_table(num_rows=rows, seed=seed), name=name)
    raise ValueError(
        f"unknown SourceSpec kind {spec.kind!r}; "
        "known: csv, parquet, synthetic, flights"
    )


def _from_path(path: str, opts: dict) -> DataSource:
    suffix = os.path.splitext(path)[1].lower()
    entry = SUFFIX_SOURCES.get(suffix)
    if entry is None:
        raise ValueError(
            f"cannot infer a source kind from {path!r} (suffix {suffix!r}); "
            f"known suffixes: {sorted(SUFFIX_SOURCES)}. Pass an explicit "
            "SourceSpec (e.g. SourceSpec('csv', path=...)) for other layouts"
        )
    kind, defaults = entry
    options = {**defaults, **opts}
    if kind == "csv":
        source = CSVSource(path, **options)
        source.schema()  # surface file/typing errors at attach time
        return source
    return ParquetSource(path, **options)


def resolve_target(name: str, target, opts: dict) -> DataSource:
    """Resolve one ``attach(name, target, **opts)`` call to a DataSource."""
    if isinstance(target, DataSource):
        if opts:
            raise TypeError(
                f"attach() options {sorted(opts)} cannot apply to an "
                "already-constructed DataSource; pass them to its constructor"
            )
        return target
    if isinstance(target, SourceSpec):
        return _from_spec(name, target, opts)
    if isinstance(target, Table):
        return TableSource(target, name=name, **opts)
    if isinstance(target, Mapping):
        return TableSource(target, name=name, **opts)
    if isinstance(target, (str, os.PathLike)):
        return _from_path(os.fspath(target), opts)
    frame = _dataframe_columns(target)
    if frame is not None:
        return TableSource(frame, name=name, **opts)
    raise TypeError(
        f"cannot attach a {type(target).__name__}: expected a DataSource, "
        "Table, {column: array} mapping, DataFrame-like, path, or SourceSpec"
    )
