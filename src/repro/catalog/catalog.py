"""The ``Catalog``: named sources plus lazy, cached engine-input builds.

A catalog maps table names to :class:`~repro.catalog.source.DataSource`
objects and owns the two derived artifacts engines consume:

* :meth:`Catalog.population` - the grouped value multiset a population
  engine (``memory``) samples from.  Built by scanning **only** the group
  and value columns with the WHERE predicate pushed into the scan, so
  filtering happens chunk-by-chunk *before* anything is materialized.
  Builds are cached per ``(table, group_col, value_col, predicate,
  value_bound)``; repeated queries over the same grouping reuse the build.
* :meth:`Catalog.table` - the fully materialized row-store
  :class:`~repro.needletail.table.Table` the bitmap-index engines
  (``needletail``/``noindex``) wrap.  Cached per table; predicates are not
  applied here because NEEDLETAIL evaluates them as index bitmaps (the
  paper's Section 6.3.3 form of pushdown).

Re-registering a name drops that name's cached builds.  All cache state is
lock-protected so one catalog can serve concurrent ``Session.submit``
queries; :meth:`Catalog.snapshot` gives in-flight queries an isolated view
that later registrations cannot disturb.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.catalog.schema import Schema
from repro.catalog.source import Chunk, DataSource, TableSource
from repro.data.population import MaterializedGroup, Population
from repro.needletail.table import Table
from repro.query.ast import Predicate

__all__ = ["Catalog", "SourceInfo", "PopulationBuild", "population_from_chunks"]


def population_from_chunks(
    chunks: Iterable[Chunk],
    group_col: str,
    value_col: str,
    *,
    c: float | None = None,
    name: str = "population",
    filtered: bool = False,
) -> Population:
    """Assemble a grouped population from streamed ``{column: array}`` chunks.

    Consumes one chunk at a time (releasing each before pulling the next) and
    accumulates only the two projected columns.  Grouping is one stable
    argsort over the concatenated rows - the exact code path the legacy
    post-materialization filter used, so a pushed-down scan yields a
    bit-identical population: same keys, same per-group chunk order, same
    inferred value bound.
    """
    group_parts: list[np.ndarray] = []
    value_parts: list[np.ndarray] = []
    it = iter(chunks)
    while True:
        try:
            chunk = next(it)
        except StopIteration:
            break
        group_parts.append(np.asarray(chunk[group_col]))
        value_parts.append(np.asarray(chunk[value_col], dtype=np.float64))
        del chunk
    if value_parts:
        values = value_parts[0] if len(value_parts) == 1 else np.concatenate(value_parts)
        group_vals = group_parts[0] if len(group_parts) == 1 else np.concatenate(group_parts)
    else:
        values = np.empty(0, dtype=np.float64)
        group_vals = np.empty(0, dtype=str)
    if values.size == 0:
        if filtered:
            raise ValueError("no group matches the predicate")
        raise ValueError(f"{name}: source produced no rows")
    if c is None:
        c = max(float(values.max()), 1e-9)
    # One stable argsort instead of a mask scan per key: O(n log n) for any
    # group count, and bit-identical chunks (stable sort keeps the original
    # row order within each group).  Keys come out sorted, matching the
    # BitmapIndex label order.
    order = np.argsort(group_vals, kind="stable")
    keys, starts = np.unique(group_vals[order], return_index=True)
    groups = [MaterializedGroup(str(key), chunk) for key, chunk in zip(keys, np.split(values[order], starts[1:]))]
    return Population(groups=groups, c=float(c), name=name)


#: One cached population build, as reported by :meth:`Catalog.describe`.
PopulationBuild = tuple[str, str, "Predicate | None", "float | None"]


@dataclass(frozen=True)
class SourceInfo:
    """One catalog entry's metadata, as shown by ``repro tables``/``describe``."""

    name: str
    kind: str
    description: str
    schema: Schema
    row_count_hint: int | None
    table_cached: bool
    cached_populations: tuple[PopulationBuild, ...]


class Catalog:
    """Named :class:`DataSource` objects plus cached lazy builds.

    Caches are keyed by the *source object* (identity), not the registered
    name: re-binding a name can never serve a stale build, the same source
    registered under two names shares its builds, and
    :meth:`snapshot`-holding queries (``Session.submit``) both reuse and
    contribute to the same cache - an async workload repeating one query
    scans its source exactly once.

    Bounds and freshness: population builds live in an LRU capped at
    :data:`MAX_CACHED_POPULATIONS` (long-lived sessions serving ad-hoc
    predicates - e.g. a moving ``WHERE ts > <now>`` literal - evict old
    builds instead of growing without bound); sources with
    ``cacheable = False`` (live streams) are never cached, so every query
    sees current data; and :meth:`invalidate` drops a name's builds
    explicitly (e.g. after a CSV file changed on disk).
    """

    #: Upper bound on cached population builds (LRU eviction beyond it).
    #: Each entry holds one filtered group/value copy, so this caps resident
    #: memory at ~MAX * relation-column size for pathological workloads.
    MAX_CACHED_POPULATIONS = 64

    def __init__(self) -> None:
        self._sources: dict[str, DataSource] = {}
        self._tables: dict[DataSource, Table] = {}
        self._populations: "OrderedDict[tuple, Population]" = OrderedDict()
        self._lock = threading.Lock()
        #: Callbacks fired (outside the lock) whenever a name's builds are
        #: dropped - explicit invalidate() or a rebinding register().  Shared
        #: by snapshots, like the build caches: the serving layer's result
        #: cache subscribes here so a stale table can never serve cached
        #: results, no matter which catalog view triggered the drop.
        self._invalidation_listeners: list = []

    @classmethod
    def from_tables(cls, tables: Mapping[str, Table]) -> "Catalog":
        """Wrap a legacy ``{name: Table}`` mapping (each table one source)."""
        catalog = cls()
        for name, table in tables.items():
            catalog.register(name, table)
        return catalog

    # -- registration --------------------------------------------------------

    def register(
        self, name: str, source: DataSource | Table | Mapping[str, np.ndarray]
    ) -> "Catalog":
        """Bind ``name`` to a source.

        Tables and ``{column: array}`` dicts are wrapped in a
        :class:`TableSource` for convenience.  Re-binding a name cannot
        serve stale data (caches are keyed by source, not name); builds of
        a replaced source are dropped once no name references it.
        """
        if not isinstance(source, DataSource):
            source = TableSource(source, name=name)
        with self._lock:
            old = self._sources.get(name)
            self._sources[name] = source
            if old is not None and old is not source and not any(
                s is old for s in self._sources.values()
            ):
                self._drop_builds(old)
        if old is not None and old is not source:
            self._notify_invalidation(name)
        return self

    def attach(self, name: str, target, **opts) -> "Catalog":
        """Bind ``name`` to *any* attachable target - the polymorphic door.

        Dispatches on what ``target`` is (see :mod:`repro.catalog.attach`):
        a ready :class:`DataSource`, a :class:`Table` or ``{column: array}``
        mapping, a DataFrame-like, a ``.csv``/``.tsv``/``.parquet`` path, or
        a declarative :class:`~repro.catalog.attach.SourceSpec`.  ``opts``
        go to the resolved source's constructor (e.g. ``delimiter=`` for
        CSV paths, ``chunk_rows=`` for tables).
        """
        from repro.catalog.attach import resolve_target

        return self.register(name, resolve_target(name, target, opts))

    def _drop_builds(self, source: DataSource) -> None:
        """Drop cached builds for one source (caller holds the lock)."""
        self._tables.pop(source, None)
        for key in [k for k in self._populations if k[0] is source]:
            del self._populations[key]

    def invalidate(self, name: str) -> "Catalog":
        """Drop the named source's cached builds; the next query rebuilds.

        Use when the underlying data changed behind a cacheable source - a
        CSV file rewritten on disk, an iterator registered with
        ``cache=True`` whose replayed data moved on.  The source's own
        metadata caches are refreshed too, so schemas and row counts are
        re-inferred, not just populations rebuilt.
        """
        source = self.source(name)
        with self._lock:
            self._drop_builds(source)
        source.refresh()
        self._notify_invalidation(name)
        return self

    def subscribe_invalidation(self, listener) -> "Catalog":
        """Register ``listener(name)`` to fire when a name's builds drop.

        Fired by :meth:`invalidate` and by :meth:`register` re-binding a
        name to a different source - the two ways previously-served data can
        go stale.  Listeners are shared with :meth:`snapshot` views (like
        the build caches), run outside the catalog lock, and must not raise.
        Derived caches outside the catalog (e.g. the server result cache in
        :mod:`repro.serve.cache`) subscribe here.
        """
        self._invalidation_listeners.append(listener)
        return self

    def _notify_invalidation(self, name: str) -> None:
        for listener in list(self._invalidation_listeners):
            listener(name)

    @property
    def names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._sources)

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return len(self._sources)

    def source(self, name: str) -> DataSource:
        if name not in self._sources:
            raise KeyError(f"unknown table {name!r}; catalog has {self.names}")
        return self._sources[name]

    def __getitem__(self, name: str) -> DataSource:
        """Subscript access (``catalog["flights"]``) resolves the source.

        Kept mapping-like because ``Session.catalog`` used to be a plain
        ``{name: Table}`` dict; code that subscripted it keeps working and
        gets the richer :class:`DataSource` back.
        """
        return self.source(name)

    def schema(self, name: str) -> Schema:
        """The named source's schema (no data materialized)."""
        return self.source(name).schema()

    # -- lazy builds ---------------------------------------------------------

    def table(self, name: str) -> Table:
        """Materialize the full row-store table for bitmap engines.

        Cached per source; non-cacheable (streaming) sources rebuild every
        call so queries never see a frozen first snapshot.
        """
        source = self.source(name)
        with self._lock:
            cached = self._tables.get(source)
        if cached is not None:
            return cached
        if isinstance(source, TableSource):
            table = source.table  # zero-copy: the wrapped table *is* the relation
        else:
            table = source.to_table(name)
        if not source.cacheable:
            return table
        with self._lock:
            return self._tables.setdefault(source, table)

    def population(
        self,
        name: str,
        group_col: str,
        value_col: str,
        *,
        predicate: Predicate | None = None,
        value_bound: float | None = None,
    ) -> Population:
        """The grouped population for one ``(table, group, value, predicate)``.

        The WHERE predicate is lowered into the source scan (per-chunk
        filtering, nothing non-qualifying materialized); the result is cached
        (LRU, :data:`MAX_CACHED_POPULATIONS` entries) so repeated queries
        over the same grouping skip the scan entirely.  Non-cacheable
        (streaming) sources rebuild on every query.
        """
        source = self.source(name)
        key = (source, group_col, value_col, predicate, value_bound)
        if source.cacheable:
            with self._lock:
                cached = self._populations.get(key)
                if cached is not None:
                    self._populations.move_to_end(key)
                    return cached
        population = source.population(group_col, value_col, predicate, value_bound)
        if population is None:
            population = population_from_chunks(
                source.scan(columns=(group_col, value_col), predicate=predicate),
                group_col,
                value_col,
                c=value_bound,
                name=name,
                filtered=predicate is not None,
            )
        if not source.cacheable:
            return population
        with self._lock:
            population = self._populations.setdefault(key, population)
            self._populations.move_to_end(key)
            while len(self._populations) > self.MAX_CACHED_POPULATIONS:
                self._populations.popitem(last=False)
            return population

    def seed_population(
        self,
        name: str,
        group_col: str,
        value_col: str,
        population: Population,
        *,
        predicate: Predicate | None = None,
        value_bound: float | None = None,
    ) -> "Catalog":
        """Pre-seed the population cache for one build coordinate.

        The planner's population-engine path consults the cache under the
        same key :meth:`population` uses, so a seeded entry short-circuits
        the source scan and regroup entirely.  The caller owns correctness:
        the population must be exactly what a cold
        :func:`population_from_chunks` build over the source would produce
        (the streaming warm-start path assembles one from cached panes and
        is bit-identical by construction).  Only cacheable sources can be
        seeded - a non-cacheable source rebuilds every query and would
        silently ignore the entry.
        """
        source = self.source(name)
        if not source.cacheable:
            raise ValueError(
                f"source {name!r} is not cacheable; a seeded population "
                "would never be consulted"
            )
        key = (source, group_col, value_col, predicate, value_bound)
        with self._lock:
            self._populations[key] = population
            self._populations.move_to_end(key)
            while len(self._populations) > self.MAX_CACHED_POPULATIONS:
                self._populations.popitem(last=False)
        return self

    def indexed_engine(
        self,
        name: str,
        group_col: str,
        value_column: str,
        *,
        value_bound: float | None = None,
        predicate: "Predicate | None" = None,
        group_spec=None,
        builder=None,
    ):
        """Resolve a bitmap-index engine for one build coordinate.

        The in-memory catalog has no engine persistence: it simply invokes
        ``builder`` (the planner's cold NEEDLETAIL construction) - exactly
        the pre-storage behaviour.  :class:`~repro.storage.DurableCatalog`
        overrides this to answer from memory-mapped on-disk index builds
        (and to persist cold builds), keyed by the same coordinates the
        population cache hashes: ``group_spec`` (the full GROUP BY list -
        ``group_col`` alone is ambiguous for composite keys), value column,
        predicate, and value bound.
        """
        return builder() if builder is not None else None

    def drain_resilience_events(self) -> list[str]:
        """Self-healing events since the last drain.

        The in-memory catalog has nothing that can rot, so this is always
        empty; :class:`~repro.storage.DurableCatalog` overrides it with the
        quarantine/degradation notes the planner surfaces as ``resilience:``
        caveats.
        """
        return []

    # -- introspection -------------------------------------------------------

    def describe(self, name: str) -> SourceInfo:
        """Metadata for one entry: kind, schema, caching status."""
        source = self.source(name)
        with self._lock:
            table_cached = source in self._tables
            builds = tuple(k[1:] for k in self._populations if k[0] is source)
        return SourceInfo(
            name=name,
            kind=source.kind,
            description=source.describe(),
            schema=source.schema(),
            row_count_hint=source.row_count_hint(),
            table_cached=table_cached,
            cached_populations=builds,
        )

    def snapshot(self) -> "Catalog":
        """A name-isolated view for in-flight queries.

        The *name binding* is copied: later ``register`` calls on either
        catalog never change what the other's names resolve to (the
        ``Session.submit`` isolation contract).  The build caches and their
        lock are *shared* - cache keys are source objects, so a shared entry
        can never go stale, and builds done by async queries benefit every
        later query instead of being re-scanned per snapshot.
        """
        clone = Catalog()
        with self._lock:
            clone._sources = dict(self._sources)
            clone._tables = self._tables
            clone._populations = self._populations
            clone._lock = self._lock
            clone._invalidation_listeners = self._invalidation_listeners
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(tables={self.names})"
