"""Relation schemas: the metadata layer queries validate against.

A :class:`Schema` describes a source's columns without materializing any
data, so the query layer can reject a bad column name or a type mismatch
(``AVG`` over a string column, a numeric comparison against a string
literal) *before* a single row is scanned.  Sources produce schemas from
whatever cheap metadata they have - numpy dtypes, CSV header + one streaming
inference pass, Parquet file metadata.

Only two column kinds matter to the paper's query class: ``numeric``
(aggregation targets, numeric predicates) and ``string`` (group-by keys,
equality predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.query.ast import And, Between, Comparison, InList, Not, Or, Predicate

__all__ = ["ColumnSchema", "Schema"]

NUMERIC = "numeric"
STRING = "string"


def _kind_of(dtype: np.dtype) -> str:
    return NUMERIC if np.issubdtype(dtype, np.number) or dtype == bool else STRING


@dataclass(frozen=True)
class ColumnSchema:
    """One column: a name and its kind (``numeric`` or ``string``)."""

    name: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (NUMERIC, STRING):
            raise ValueError(f"column kind must be 'numeric' or 'string', got {self.kind!r}")

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC


class Schema:
    """An ordered collection of :class:`ColumnSchema` entries."""

    def __init__(self, columns: Iterable[ColumnSchema]) -> None:
        cols = list(columns)
        names = [c.name for c in cols]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(f"duplicate schema column(s): {dupes}")
        self._columns: dict[str, ColumnSchema] = {c.name: c for c in cols}

    @classmethod
    def from_arrays(cls, data: Mapping[str, np.ndarray]) -> "Schema":
        """Infer a schema from a ``{column: ndarray}`` mapping."""
        return cls(
            ColumnSchema(name, _kind_of(np.asarray(values).dtype))
            for name, values in data.items()
        )

    @classmethod
    def from_table(cls, table) -> "Schema":
        """Infer a schema from a :class:`~repro.needletail.table.Table`."""
        return cls(
            ColumnSchema(name, _kind_of(table.column(name).dtype))
            for name in table.column_names
        )

    @property
    def names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[ColumnSchema]:
        return iter(self._columns.values())

    def __len__(self) -> int:
        return len(self._columns)

    def column(self, name: str) -> ColumnSchema:
        if name not in self._columns:
            raise KeyError(f"no such column {name!r}; schema has {self.names}")
        return self._columns[name]

    def is_numeric(self, name: str) -> bool:
        return self.column(name).is_numeric

    # -- query-layer validation ---------------------------------------------

    def check_columns(self, names: Iterable[str], what: str, table: str) -> None:
        """Raise KeyError if any of ``names`` is missing from the schema."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(
                f"{what} column {missing[0]!r} not in table {table!r}; "
                f"available: {self.names}"
            )

    def check_aggregate(self, agg, table: str) -> None:
        """Validate one SELECT aggregate: column exists, AVG/SUM is numeric.

        The single implementation behind both the builder's early check and
        the planner's defense-in-depth re-check, so the error a user sees
        does not depend on which front door they came through.
        """
        if agg.column == "*":
            return
        self.check_columns((agg.column,), "aggregate", table)
        if agg.func in ("AVG", "SUM") and not self.is_numeric(agg.column):
            raise TypeError(
                f"aggregate column {agg.column!r} is not numeric; "
                f"{agg.func} needs a numeric column"
            )

    def check_predicate(self, pred: Predicate, table: str) -> None:
        """Validate a WHERE predicate: columns exist, literal types line up.

        Mirrors the runtime coercion rules of
        :func:`repro.query.predicates.predicate_mask` so a query that would
        fail mid-scan fails here instead, before any data is read.
        """
        if isinstance(pred, (Comparison, Between, InList)):
            if pred.column not in self._columns:
                raise KeyError(
                    f"WHERE references unknown columns: {[pred.column]} "
                    f"(table {table!r} has {self.names})"
                )
            if self.is_numeric(pred.column):
                literals = (
                    (pred.value,)
                    if isinstance(pred, Comparison)
                    else (pred.lo, pred.hi)
                    if isinstance(pred, Between)
                    else tuple(pred.values)
                )
                for lit in literals:
                    if isinstance(lit, str):
                        raise TypeError(
                            f"cannot compare numeric column to string literal {lit!r}"
                        )
        elif isinstance(pred, Not):
            self.check_predicate(pred.operand, table)
        elif isinstance(pred, (And, Or)):
            for p in pred.operands:
                self.check_predicate(p, table)
        else:
            raise TypeError(f"unknown predicate node {type(pred).__name__}")
