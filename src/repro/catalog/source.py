"""The ``DataSource`` protocol: how relations enter the system.

A source is anything that can (a) describe its columns without reading data
(:meth:`DataSource.schema`), (b) stream its rows in bounded-memory chunks
with column pruning and predicate pushdown (:meth:`DataSource.scan`), and
(c) optionally report how many rows it holds (:meth:`DataSource.row_count_hint`).
The :class:`~repro.catalog.catalog.Catalog` owns named sources and builds
engine inputs (populations, materialized tables) from these three calls, so
new storage formats plug in without touching the session or the planner.

``scan`` is the heart of the contract::

    for chunk in source.scan(columns=("city", "delay"), predicate=pred):
        ...  # chunk is {"city": ndarray, "delay": ndarray}, already filtered

* ``columns`` prunes the projection: only the named columns are produced
  (predicate-only columns are read internally but not returned).
* ``predicate`` is the shared query AST (:mod:`repro.query.ast`).  The base
  class applies it chunk-by-chunk with the same kernel the legacy
  post-materialization filter used (:func:`repro.query.predicates`), so a
  pushed-down scan is bit-identical to filtering the concatenated whole.
* Chunks may be empty (a chunk whose rows all fail the predicate still
  yields, with zero-length arrays) - consumers must tolerate that.
* At most one raw chunk is alive inside the scan at any time; sources
  release each chunk before pulling the next, so memory stays bounded by
  the chunk size regardless of relation size.

Subclasses implement ``_chunks(columns)`` - yield raw ``{column: array}``
chunks restricted to ``columns`` - plus ``schema()``; everything else has
sensible defaults.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.catalog.schema import Schema
from repro.data.population import Population
from repro.needletail.table import Table
from repro.query.ast import Predicate
from repro.query.predicates import predicate_chunk_mask, predicate_columns
from repro.resilience.faults import fault_at

__all__ = ["DataSource", "TableSource", "IteratorSource", "MissingDependencyError"]

Chunk = Mapping[str, np.ndarray]


class MissingDependencyError(ImportError):
    """An optional extra (e.g. pyarrow) is needed but not installed."""


class DataSource:
    """Base class / protocol for pluggable relation sources."""

    #: Short source-kind tag shown by ``repro tables`` (csv/parquet/memory/...).
    kind = "source"

    #: Whether the catalog may cache builds (tables/populations) derived from
    #: this source.  True for sources whose repeated scans see the same rows
    #: (files, in-memory data); sources backed by live streams return False
    #: so every query observes the current data.
    cacheable = True

    # -- required interface --------------------------------------------------

    def schema(self) -> Schema:
        """Column names and kinds, without materializing any data."""
        raise NotImplementedError

    def _chunks(self, columns: tuple[str, ...]) -> Iterator[Chunk]:
        """Yield raw ``{column: array}`` chunks restricted to ``columns``."""
        raise NotImplementedError

    # -- optional interface --------------------------------------------------

    def row_count_hint(self) -> int | None:
        """Row count if cheaply known (exact or estimated), else ``None``."""
        return None

    def refresh(self) -> None:
        """Drop internally cached metadata (schemas, row counts).

        Called by :meth:`Catalog.invalidate` so "the next query re-reads
        the source" holds all the way down - a CSV rewritten on disk gets
        its types re-inferred, not just its population rebuilt.  Default:
        nothing cached, nothing to do.
        """

    def population(
        self,
        group_col: str,
        value_col: str,
        predicate: Predicate | None,
        value_bound: float | None,
    ) -> Population | None:
        """A ready-made population for this grouping, or ``None``.

        Sources that *are* populations (synthetic generator specs) override
        this so the catalog can skip the scan-based build entirely; the
        default ``None`` means "build me from :meth:`scan`".
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description for catalog listings."""
        return self.kind

    # -- derived behaviour ---------------------------------------------------

    def scan(
        self,
        columns: Sequence[str] | None = None,
        predicate: Predicate | None = None,
    ) -> Iterator[Chunk]:
        """Stream ``{column: array}`` chunks, pruned and filtered.

        Args:
            columns: projection (``None``: every schema column, in order).
            predicate: optional row filter, pushed down into the scan - each
                chunk is masked before it is yielded, so callers never see a
                non-qualifying row and never hold the unfiltered relation.
        """
        schema = self.schema()
        wanted = tuple(columns) if columns is not None else tuple(schema.names)
        schema.check_columns(dict.fromkeys(wanted), "scan", self.describe())
        needed = list(dict.fromkeys(wanted))
        if predicate is not None:
            schema.check_predicate(predicate, self.describe())
            for col in sorted(predicate_columns(predicate)):
                if col not in needed:
                    needed.append(col)
        return self._filtered(tuple(needed), wanted, predicate)

    def _filtered(
        self,
        needed: tuple[str, ...],
        wanted: tuple[str, ...],
        predicate: Predicate | None,
    ) -> Iterator[Chunk]:
        it = self._chunks(needed)
        index = 0
        while True:
            # Named injection point for the chaos suite: a planned
            # fail_scan_chunk fault surfaces here as a TransientError, which
            # the planner's retry policy absorbs by restarting the build.
            fault_at("catalog.scan_chunk", shard=None, index=index)
            index += 1
            try:
                chunk = next(it)
            except StopIteration:
                return
            if predicate is not None:
                mask = predicate_chunk_mask(predicate, chunk)
                out = {name: np.asarray(chunk[name])[mask] for name in wanted}
            else:
                out = {name: np.asarray(chunk[name]) for name in wanted}
            # Release the raw chunk before yielding: the generator then holds
            # no reference while the consumer works, so at most one raw chunk
            # is ever alive (asserted by the catalog laziness tests).
            del chunk
            yield out

    def to_table(self, name: str) -> Table:
        """Materialize the full source into an in-memory row-store table."""
        schema = self.schema()
        parts: dict[str, list[np.ndarray]] = {col: [] for col in schema.names}
        it = self.scan()
        while True:
            try:
                chunk = next(it)
            except StopIteration:
                break
            for col in schema.names:
                parts[col].append(chunk[col])
            del chunk
        if not any(parts.values()) or not next(iter(parts.values())):
            raise ValueError(f"{self.describe()}: source produced no rows")
        data = {
            col: arrs[0] if len(arrs) == 1 else np.concatenate(arrs)
            for col, arrs in parts.items()
        }
        return Table.from_dict(name, data)


class TableSource(DataSource):
    """An in-memory source: wraps a :class:`Table` or a ``{col: array}`` dict.

    The eager door every legacy ``Session.register(...)`` call lands on.
    ``chunk_rows`` optionally slices scans into bounded chunks (useful to
    exercise chunked consumers); the default is one chunk for the whole
    relation, which is also the zero-copy fast path.
    """

    kind = "memory"

    def __init__(
        self,
        data: Table | Mapping[str, np.ndarray],
        *,
        name: str = "table",
        chunk_rows: int | None = None,
    ) -> None:
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self._table = data if isinstance(data, Table) else Table.from_dict(name, dict(data))
        self._chunk_rows = chunk_rows

    @property
    def table(self) -> Table:
        """The wrapped table (shared, not a copy)."""
        return self._table

    def schema(self) -> Schema:
        return Schema.from_table(self._table)

    def row_count_hint(self) -> int | None:
        return self._table.num_rows

    def describe(self) -> str:
        return f"memory table {self._table.name!r}"

    def to_table(self, name: str) -> Table:
        if name == self._table.name:
            return self._table
        return super().to_table(name)

    def _chunks(self, columns: tuple[str, ...]) -> Iterator[Chunk]:
        n = self._table.num_rows
        step = self._chunk_rows if self._chunk_rows is not None else n
        for lo in range(0, n, max(step, 1)):
            yield {c: self._table.column(c)[lo : lo + step] for c in columns}


class IteratorSource(DataSource):
    """A streaming-ingest source fed by a re-invocable chunk factory.

    ``chunks`` is a zero-argument callable returning an iterator of
    ``{column: array}`` chunks (a generator function, ``lambda: iter(...)``
    over a stored list, a socket reader, ...).  Every scan calls the factory
    afresh, so the factory must be re-invocable; chunks are consumed one at
    a time and never accumulated by the source itself.

    Chunk arrays are coerced to the declared schema kind per chunk (a
    string-typed chunk in a numeric column is parsed, not compared
    lexicographically by predicates; unparseable values raise).

    Caching: by default ``cacheable`` is False - a *streaming* source's
    successive scans may see new data, so every query re-reads the factory
    rather than freezing the first query's snapshot forever.  Pass
    ``cache=True`` when the factory replays fixed data and builds should be
    reused across queries.

    Replay vs tail: the factory contract *is* the replay seam - every scan
    re-invokes it, so one-shot queries, multi-window re-scans and repeated
    subscriptions all observe the stream from its start.  For a genuinely
    non-replayable feed (a socket, a log tail) use
    :meth:`IteratorSource.single_use`, which admits exactly one scan and
    rejects the second loudly instead of tripping the factory-reuse guard
    with a confusing "same iterator twice" error.
    """

    kind = "iterator"

    def __init__(
        self,
        chunks: Callable[[], Iterable[Chunk]],
        *,
        schema: Schema | None = None,
        row_count_hint: int | None = None,
        cache: bool = False,
    ) -> None:
        if not callable(chunks):
            raise TypeError(
                "IteratorSource needs a zero-argument chunk *factory* (scans "
                "must be repeatable); got a non-callable - wrap your chunks "
                "in `lambda: iter(chunk_list)`"
            )
        self._factory = chunks
        self._schema = schema
        self._schema_supplied = schema is not None
        self._hint = row_count_hint
        self.cacheable = bool(cache)
        self._last_iter: object | None = None

    def refresh(self) -> None:
        """Forget the inferred schema (a supplied one is kept)."""
        if not self._schema_supplied:
            self._schema = None

    @classmethod
    def single_use(
        cls,
        chunks: Iterable[Chunk],
        *,
        schema: Schema,
        row_count_hint: int | None = None,
    ) -> "IteratorSource":
        """A one-shot *tail* over a live, non-replayable chunk stream.

        This is the documented seam for feeding a continuous query from a
        feed that cannot be rewound (a socket reader, a log tail, a queue
        drain): the returned source supports **exactly one** :meth:`scan` -
        which is all a streaming subscription
        (:class:`~repro.streaming.runner.WindowRunner`) performs - and a
        second scan raises a ``RuntimeError`` naming the problem, instead
        of the factory-reuse guard's "same iterator twice" ``TypeError``
        (aimed at a different mistake) or, worse, a silent resume that
        drops already-consumed chunks.

        ``schema`` is required: inferring it would consume the stream's
        first chunk before the scan ever runs.
        """
        if not isinstance(schema, Schema):
            raise TypeError(
                f"single_use needs an explicit Schema (inference would "
                f"consume the stream), got {schema!r}"
            )
        stream = iter(chunks)
        consumed: list[bool] = []

        def tail() -> Iterator[Chunk]:
            if consumed:
                raise RuntimeError(
                    "this IteratorSource.single_use stream was already "
                    "scanned once and cannot be replayed; wrap replayable "
                    "data in a fresh-iterator factory (IteratorSource("
                    "lambda: ...)) if you need repeated scans"
                )
            consumed.append(True)
            return stream

        return cls(tail, schema=schema, row_count_hint=row_count_hint, cache=False)

    def _fresh_iter(self):
        """A new iterator from the factory, refusing half-consumed reuse.

        ``lambda: g`` over one generator passes the callable guard but would
        make the second scan silently resume where the first stopped -
        groups whose rows lived in already-consumed chunks would vanish from
        results with no error.  Detect it: a *re-invocable* factory returns
        a distinct iterator every call.
        """
        it = iter(self._factory())
        if it is self._last_iter:
            raise TypeError(
                "IteratorSource factory returned the same iterator twice; "
                "it must build a fresh iterator per call (wrap a generator "
                "in its function, not `lambda: gen_instance`) - reusing one "
                "iterator would silently drop already-consumed chunks"
            )
        self._last_iter = it
        return it

    def schema(self) -> Schema:
        if self._schema is None:
            it = self._fresh_iter()
            try:
                first = next(it)
            except StopIteration:
                raise ValueError(
                    "iterator source produced no chunks; pass schema= to "
                    "register an empty stream"
                ) from None
            self._schema = Schema.from_arrays(first)
        return self._schema

    def row_count_hint(self) -> int | None:
        return self._hint

    def _coerce(self, name: str, values: np.ndarray) -> np.ndarray:
        """Align one chunk column with the declared schema kind.

        Without this, a feed that stops pre-parsing (string digits in a
        numeric column) would be predicate-filtered *lexicographically* -
        silently wrong rows - because the schema said numeric but the chunk
        dtype said string.
        """
        if self._schema is None:
            return values
        if self._schema.is_numeric(name):
            if not np.issubdtype(values.dtype, np.number) and values.dtype != bool:
                try:
                    return values.astype(np.float64)
                except ValueError:
                    raise ValueError(
                        f"iterator source chunk column {name!r} is declared "
                        f"numeric but holds unparseable values "
                        f"(dtype {values.dtype})"
                    ) from None
        elif values.dtype.kind not in ("U", "S", "O"):
            return values.astype(str)
        return values

    def _chunks(self, columns: tuple[str, ...]) -> Iterator[Chunk]:
        it = self._fresh_iter()
        while True:
            try:
                chunk = next(it)
            except StopIteration:
                return
            missing = [c for c in columns if c not in chunk]
            if missing:
                raise KeyError(
                    f"iterator source chunk is missing columns {missing}; "
                    f"chunk has {sorted(chunk)}"
                )
            out = {c: self._coerce(c, np.asarray(chunk[c])) for c in columns}
            del chunk
            yield out
