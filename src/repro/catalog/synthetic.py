"""Synthetic-spec sources: a generator family as a catalog relation.

The paper's synthetic workloads (:mod:`repro.data.synthetic`) build
:class:`~repro.data.population.Population` objects - usually *virtual*
(distribution-backed groups, no rows in memory, sizes up to 1e10).  A
:class:`SyntheticSource` wraps one generator spec so those workloads sit in
the same catalog as CSV and Parquet relations::

    session.attach("bench", SyntheticSource("mixture", k=10, seed=0))
    session.table("bench").group_by("g").agg(avg("value")).on_engine("memory").run()

Population-based engines (``memory``) consume the generated population
directly - :meth:`SyntheticSource.population` bypasses the scan-based build
entirely, which is the only sound route for virtual groups.  ``scan`` (and
therefore the bitmap-index engines and WHERE pushdown) works only when the
spec materializes its rows (``materialize=True``); on a virtual spec both
raise a clear error instead of silently drawing unbounded samples.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.catalog.schema import NUMERIC, STRING, ColumnSchema, Schema
from repro.catalog.source import Chunk, DataSource
from repro.data.population import MaterializedGroup, Population
from repro.data.synthetic import SYNTHETIC_FAMILIES
from repro.query.ast import Predicate

__all__ = ["SyntheticSource"]


class SyntheticSource(DataSource):
    """A catalog relation defined by a synthetic population generator.

    Args:
        family: a :data:`~repro.data.synthetic.SYNTHETIC_FAMILIES` key
            (``"mixture"``, ``"truncnorm"``, ...) or any callable returning a
            :class:`Population`.
        group_column / value_column: the two column names the pseudo-relation
            exposes (group label, aggregated value).
        **params: forwarded to the generator (``k``, ``total_size``,
            ``seed``, ``materialize``, ...).
    """

    kind = "synthetic"

    def __init__(
        self,
        family: str | Callable[..., Population],
        *,
        group_column: str = "g",
        value_column: str = "value",
        **params,
    ) -> None:
        if callable(family):
            self._factory = family
            self._family = getattr(family, "__name__", "custom")
        else:
            if family not in SYNTHETIC_FAMILIES:
                raise KeyError(
                    f"unknown synthetic family {family!r}; known: "
                    f"{sorted(SYNTHETIC_FAMILIES)}"
                )
            self._factory = SYNTHETIC_FAMILIES[family]
            self._family = family
        if group_column == value_column:
            raise ValueError("group_column and value_column must differ")
        self._group_column = group_column
        self._value_column = value_column
        self._params = dict(params)
        self._population: Population | None = None

    def describe(self) -> str:
        return f"synthetic {self._family!r}"

    def build(self) -> Population:
        """The generated population (built once, cached)."""
        if self._population is None:
            self._population = self._factory(**self._params)
        return self._population

    def refresh(self) -> None:
        """Drop the cached population; the next use regenerates it."""
        self._population = None

    @property
    def materialized(self) -> bool:
        """Whether every group's rows exist in memory (scannable)."""
        return all(isinstance(g, MaterializedGroup) for g in self.build().groups)

    def schema(self) -> Schema:
        return Schema(
            [
                ColumnSchema(self._group_column, STRING),
                ColumnSchema(self._value_column, NUMERIC),
            ]
        )

    def row_count_hint(self) -> int | None:
        """Nominal size, without generating the dataset.

        Answered from the already-built population or the spec's own
        ``total_size`` parameter; building 1e8 rows just to print a row
        count in ``repro describe`` would violate the hint contract.
        """
        if self._population is not None:
            return self._population.total_size
        if "total_size" in self._params:
            return int(self._params["total_size"])
        return None

    def population(
        self,
        group_col: str,
        value_col: str,
        predicate: Predicate | None,
        value_bound: float | None,
    ) -> Population | None:
        if (group_col, value_col) != (self._group_column, self._value_column):
            raise KeyError(
                f"synthetic source exposes columns "
                f"({self._group_column!r}, {self._value_column!r}); "
                f"requested ({group_col!r}, {value_col!r})"
            )
        if predicate is not None:
            if self.materialized:
                return None  # fall back to the scan-based (pushdown) build
            raise ValueError(
                "WHERE is not supported on a virtual synthetic source (there "
                "are no rows to filter); generate with materialize=True to "
                "enable predicates"
            )
        pop = self.build()
        if value_bound is not None and value_bound != pop.c:
            pop = Population(groups=pop.groups, c=float(value_bound), name=pop.name)
        return pop

    def _virtual_error(self, what: str) -> ValueError:
        return ValueError(
            f"cannot {what} a virtual synthetic source ({self.build().name}): "
            "its groups are distributions, not rows; generate with "
            "materialize=True, or query it on a population engine "
            "(.on_engine('memory'))"
        )

    def _chunks(self, columns: tuple[str, ...]) -> Iterator[Chunk]:
        pop = self.build()
        if not self.materialized:
            raise self._virtual_error("scan")
        # One common string dtype so chunk concatenation never narrows labels.
        label_dtype = np.array([g.name for g in pop.groups]).dtype
        for group in pop.groups:
            values = np.asarray(group.values, dtype=np.float64)  # type: ignore[attr-defined]
            chunk = {
                self._group_column: np.full(values.shape[0], group.name, dtype=label_dtype),
                self._value_column: values,
            }
            yield {c: chunk[c] for c in columns}

    def to_table(self, name: str):
        if not self.materialized:
            raise self._virtual_error("materialize")
        return super().to_table(name)
