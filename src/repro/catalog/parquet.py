"""Parquet/Arrow source - optional ``pyarrow`` extra, degrading gracefully.

This module always imports cleanly; only *constructing* a
:class:`ParquetSource` requires pyarrow, and a missing install raises a
:class:`~repro.catalog.source.MissingDependencyError` that names the extra
(``pip install repro-ordering-guarantees[arrow]``) instead of an opaque
``ModuleNotFoundError`` from the middle of a query.

Scans stream Arrow record batches (``ParquetFile.iter_batches``) with column
pruning pushed into the reader, so only the projected columns of one batch
are resident at a time; predicates are applied per batch by the shared
:class:`~repro.catalog.source.DataSource` machinery.  The schema and the row
count come from Parquet file metadata - no data pages are read to answer
``repro describe``.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as pa
    import pyarrow.parquet as pq
except ImportError:  # pragma: no cover - the common offline case
    pa = None
    pq = None

from repro.catalog.schema import NUMERIC, STRING, ColumnSchema, Schema
from repro.catalog.source import Chunk, DataSource, MissingDependencyError

__all__ = ["ParquetSource", "HAVE_PYARROW", "require_pyarrow"]

HAVE_PYARROW = pq is not None

#: Default record-batch size for scans; matches the CSV source's chunking.
DEFAULT_BATCH_ROWS = 65_536


def require_pyarrow() -> None:
    """Raise a clear error if the optional pyarrow extra is missing."""
    if not HAVE_PYARROW:
        raise MissingDependencyError(
            "Parquet sources need the optional 'pyarrow' extra; install it "
            "with `pip install repro-ordering-guarantees[arrow]` (or plain "
            "`pip install pyarrow`)"
        )


class ParquetSource(DataSource):
    """A lazily-scanned Parquet file."""

    kind = "parquet"

    def __init__(self, path: str | os.PathLike, *, batch_rows: int = DEFAULT_BATCH_ROWS) -> None:
        require_pyarrow()
        if batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        self._path = os.fspath(path)
        self._batch_rows = int(batch_rows)
        self._schema: Schema | None = None
        self._num_rows: int | None = None

    @property
    def path(self) -> str:
        return self._path

    def describe(self) -> str:
        return f"parquet {os.path.basename(self._path)!r}"

    def _metadata(self):
        pf = pq.ParquetFile(self._path)
        if self._num_rows is None:
            self._num_rows = int(pf.metadata.num_rows)
        return pf

    def schema(self) -> Schema:
        if self._schema is None:
            arrow_schema = self._metadata().schema_arrow
            self._schema = Schema(
                ColumnSchema(
                    field.name,
                    NUMERIC
                    if (
                        pa.types.is_integer(field.type)
                        or pa.types.is_floating(field.type)
                        or pa.types.is_decimal(field.type)
                        or pa.types.is_boolean(field.type)
                    )
                    else STRING,
                )
                for field in arrow_schema
            )
        return self._schema

    def row_count_hint(self) -> int | None:
        if self._num_rows is None:
            self._metadata()
        return self._num_rows

    def refresh(self) -> None:
        """Forget cached file metadata; re-read on next use."""
        self._schema = None
        self._num_rows = None

    def _chunks(self, columns: tuple[str, ...]) -> Iterator[Chunk]:
        schema = self.schema()
        pf = self._metadata()
        it = pf.iter_batches(batch_size=self._batch_rows, columns=list(columns))
        while True:
            try:
                batch = next(it)
            except StopIteration:
                return
            out: dict[str, np.ndarray] = {}
            for name in columns:
                arr = batch.column(batch.schema.get_field_index(name)).to_numpy(
                    zero_copy_only=False
                )
                if schema.is_numeric(name):
                    out[name] = np.asarray(arr, dtype=np.float64)
                else:
                    out[name] = np.asarray(arr, dtype=str)
            del batch
            yield out
