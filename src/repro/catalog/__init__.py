"""Pluggable data layer: schemas, sources, and the session catalog.

This package is the data-side counterpart of :mod:`repro.session`'s query
side: one abstraction (:class:`DataSource`) behind the front door, with the
:class:`Catalog` owning named sources and the lazy, cached builds engines
consume.  See the module docstrings for the contract details:

* :mod:`repro.catalog.schema` - column metadata and early validation;
* :mod:`repro.catalog.source` - the ``DataSource`` protocol, in-memory and
  iterator sources;
* :mod:`repro.catalog.csv` - chunked CSV scans;
* :mod:`repro.catalog.parquet` - Parquet/Arrow (optional ``pyarrow`` extra);
* :mod:`repro.catalog.synthetic` - generator-spec sources;
* :mod:`repro.catalog.catalog` - the catalog with predicate-pushdown
  population builds.
"""

from repro.catalog.attach import SourceSpec
from repro.catalog.catalog import (
    Catalog,
    PopulationBuild,
    SourceInfo,
    population_from_chunks,
)
from repro.catalog.csv import CSVSource
from repro.catalog.parquet import HAVE_PYARROW, ParquetSource
from repro.catalog.schema import ColumnSchema, Schema
from repro.catalog.source import (
    DataSource,
    IteratorSource,
    MissingDependencyError,
    TableSource,
)
from repro.catalog.synthetic import SyntheticSource

__all__ = [
    "Catalog",
    "SourceSpec",
    "SourceInfo",
    "PopulationBuild",
    "population_from_chunks",
    "Schema",
    "ColumnSchema",
    "DataSource",
    "TableSource",
    "IteratorSource",
    "CSVSource",
    "ParquetSource",
    "HAVE_PYARROW",
    "SyntheticSource",
    "MissingDependencyError",
]
