"""Per-query time budgets and cooperative cancellation.

A :class:`Deadline` is created once per query (by the planner from
``QuerySpec.deadline_ms``, or by ``Session.submit`` so its future can
cancel) and threaded into every sampling loop as the ``deadline=`` runner
kwarg.  Loops poll :meth:`Deadline.check` once per round:

* returns ``True`` when the time budget is spent - the loop finalizes every
  still-active group at its current estimate/half-width (the paper's
  incremental estimators make this anytime behaviour free) and tags the
  result ``deadline_exceeded``;
* raises :class:`~repro.errors.QueryCancelled` when the cancel token fired -
  a cancelled query has no consumer, so no partial result is assembled.

Polling happens between rounds, never inside a draw, so a deadline can lag
by at most one sampling round - and results stay deterministic functions of
the seed *given* the round at which the deadline struck.
"""

from __future__ import annotations

import time

from repro.errors import QueryCancelled

__all__ = ["Deadline"]


class Deadline:
    """A monotonic time budget doubling as a cooperative cancel token.

    Args:
        seconds: time budget from construction; ``None`` means no time
            limit (a pure cancel token, e.g. for ``Session.submit``).
        clock: monotonic time source, injectable for tests.
    """

    __slots__ = ("_clock", "_expires_at", "_cancelled")

    def __init__(self, seconds: float | None = None, *, clock=time.monotonic) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + float(seconds)
        self._cancelled = False

    @classmethod
    def after_ms(cls, ms: float | None, *, clock=time.monotonic) -> "Deadline":
        """A deadline ``ms`` milliseconds from now (``None``: no limit)."""
        return cls(None if ms is None else float(ms) / 1000.0, clock=clock)

    def cancel(self) -> None:
        """Fire the cancel token; the next :meth:`check` raises.

        Safe from any thread (a bare flag write), so a ``Future.cancel()``
        on the caller's thread stops a query running on a worker thread.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> float | None:
        """Seconds left in the budget (``None``: unlimited; floor 0.0)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """True once the time budget is spent (cancellation aside)."""
        return self._expires_at is not None and self._clock() >= self._expires_at

    def check(self) -> bool:
        """Poll point for sampling loops: raise on cancel, True on expiry."""
        if self._cancelled:
            raise QueryCancelled("query cancelled before completion")
        return self.expired()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._cancelled:
            state = "cancelled"
        elif self._expires_at is None:
            state = "no time limit"
        else:
            state = f"remaining={self.remaining():.3f}s"
        return f"Deadline({state})"
