"""Fault tolerance for the execution stack.

Four building blocks, shared by engines, planner, session, and CLI:

* :class:`~repro.resilience.deadline.Deadline` - a per-query time budget
  that doubles as a cooperative cancel token.  IFOCUS-family runs poll it
  each round and finalize early (anytime behaviour) instead of raising.
* :class:`~repro.resilience.retry.RetryPolicy` /
  :func:`~repro.resilience.retry.call_with_retry` - bounded exponential
  backoff for :class:`~repro.errors.TransientError` failures (flaky scans).
* :class:`~repro.resilience.breaker.CircuitBreaker` - counts worker-process
  crashes; past the threshold the sharded engine degrades process -> thread
  execution for the rest of its life (surfaced in ``Result.caveats``).
* :mod:`~repro.resilience.faults` - a seeded, deterministic fault plan
  wired through named injection points in the engines and catalog, driving
  the chaos test suite (and the CI ``chaos`` leg via ``REPRO_FAULT_PLAN``).
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.faults import Fault, FaultPlan, fault_at, inject
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "Fault",
    "FaultPlan",
    "RetryPolicy",
    "call_with_retry",
    "fault_at",
    "inject",
]
