"""Deterministic fault injection for the chaos test suite.

A :class:`FaultPlan` is a small, seeded list of :class:`Fault` records, each
naming one *injection site* plus trigger coordinates.  Production code calls
:func:`fault_at` at its named sites; with no active plan that is one global
read and a ``None`` check, so the harness costs nothing when disabled.

Sites (kind -> site is fixed; see ``_SITE_OF``):

* ``procpool.command`` - fired parent-side before each *fresh* (non-replay)
  command to a shard worker, with ``shard`` and the worker's monotonically
  increasing command index.  Kinds: ``kill_worker`` (SIGKILL the worker
  before the command is sent), ``kill_mid_command`` (send the command, then
  SIGKILL while the parent blocks on the result pipe), ``delay_shard``
  (sleep ``delay_s`` before sending).  Kill faults are injected by the
  *parent*, so a respawned worker replaying its log can never re-trigger
  them - the fire budget (``times``) lives parent-side.
* ``procpool.handshake`` - fired worker-side before the build handshake,
  with ``shard`` and the worker's spawn index (0 for the first spawn, 1 for
  the first respawn, ...).  Kind ``corrupt_handshake`` makes the worker send
  a malformed handshake and exit; ``at`` matching the spawn index means the
  respawned replacement handshakes cleanly.
* ``catalog.scan_chunk`` - fired per chunk of a ``DataSource`` scan with the
  chunk index.  Kind ``fail_scan_chunk`` raises a
  :class:`~repro.errors.TransientError` (``times`` times), closing the loop
  for the retry-with-backoff tests.
* ``storage.write_segment`` - fired per segment written by
  :func:`repro.storage.segment.write_segment` with a per-store write index.
  Kind ``fail_segment_write`` raises a
  :class:`~repro.errors.TransientError` before any byte reaches the final
  path, so an interrupted durable-build leaves no partial build behind
  (the temp-file + atomic-rename discipline the crash tests assert).
* ``storage.segment_write`` - fired at the same spot with the same write
  index.  Kind ``enospc_segment_write`` raises ``OSError(ENOSPC)`` - the
  disk-full shape - which the durable catalog's write breaker absorbs by
  degrading to memory-only write-through instead of failing the query.
* ``storage.segment_read`` - fired per segment opened by
  :func:`repro.storage.segment.read_segment` with a per-store read index.
  Kind ``flip_segment_bit`` flips one payload byte *on disk* before the
  map, so the corruption persists exactly like real store rot until the
  self-healing load path quarantines and re-persists the build.

Activation: :func:`inject` (a context manager) installs a plan in-process
*and* in ``os.environ[REPRO_FAULT_PLAN]`` as JSON, so spawn-context worker
processes see the same plan (each with its own fire budgets - parent-side
kill budgets are never consulted by workers and vice versa).  The CI chaos
leg sets ``REPRO_FAULT_PLAN`` to a bare integer instead: that is *not* an
active plan (the suite must not fire faults in arbitrary tests) but the
seed the chaos tests feed to :meth:`FaultPlan.seeded`.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import random
import threading
from dataclasses import asdict, dataclass

from repro.errors import TransientError

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "active_plan",
    "fault_at",
    "inject",
    "seed_from_env",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: kind -> injection site.  Fixed: a fault's site is implied by its kind.
_SITE_OF = {
    "kill_worker": "procpool.command",
    "kill_mid_command": "procpool.command",
    "delay_shard": "procpool.command",
    "corrupt_handshake": "procpool.handshake",
    "fail_scan_chunk": "catalog.scan_chunk",
    "fail_segment_write": "storage.write_segment",
    "enospc_segment_write": "storage.segment_write",
    "flip_segment_bit": "storage.segment_read",
}

FAULT_KINDS = tuple(_SITE_OF)


@dataclass(frozen=True)
class Fault:
    """One planned fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        shard: shard index the fault targets (``None``: any shard).
        at: trigger index at the site - command index, spawn index, or
            chunk index depending on the kind (``None``: every index).
        times: how many times the fault may fire before it is spent.
        delay_s: sleep length (``delay_shard`` only).
    """

    kind: str
    shard: int | None = None
    at: int | None = None
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _SITE_OF:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if int(self.times) < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    @property
    def site(self) -> str:
        return _SITE_OF[self.kind]


class FaultPlan:
    """An ordered set of faults with per-fault fire budgets (thread-safe)."""

    def __init__(self, faults: list[Fault] | tuple[Fault, ...]) -> None:
        self.faults = tuple(faults)
        self._lock = threading.Lock()
        self._remaining = [int(f.times) for f in self.faults]
        self._fired: list[tuple[str, int | None, int | None]] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        kind: str = "kill_worker",
        shards: int = 1,
        max_at: int = 6,
        times: int = 1,
        delay_s: float = 0.0,
    ) -> "FaultPlan":
        """One fault whose (shard, at) coordinates derive from ``seed``.

        Deterministic: the same seed always plans the same fault, so a chaos
        run is exactly reproducible from the ``REPRO_FAULT_PLAN`` seed.
        """
        rng = random.Random(int(seed))
        return cls(
            [
                Fault(
                    kind=kind,
                    shard=rng.randrange(max(1, int(shards))),
                    at=rng.randrange(max(1, int(max_at))),
                    times=times,
                    delay_s=delay_s,
                )
            ]
        )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([asdict(f) for f in self.faults])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls([Fault(**record) for record in json.loads(text)])

    # -- firing -------------------------------------------------------------

    def match(
        self, site: str, *, shard: int | None = None, index: int | None = None
    ) -> Fault | None:
        """The first unspent fault matching the coordinates (budget -1)."""
        with self._lock:
            for i, fault in enumerate(self.faults):
                if self._remaining[i] <= 0 or fault.site != site:
                    continue
                if fault.shard is not None and shard is not None and fault.shard != shard:
                    continue
                if fault.at is not None and index is not None and fault.at != index:
                    continue
                self._remaining[i] -= 1
                self._fired.append((fault.kind, shard, index))
                return fault
        return None

    def fired(self) -> list[tuple[str, int | None, int | None]]:
        """``(kind, shard, index)`` of every firing, in order."""
        with self._lock:
            return list(self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.faults)!r})"


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None
#: Env-derived plan cache: (env text) -> plan, so fire budgets persist
#: across active_plan() calls within one process.
_env_cache: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The plan in effect for this process, or None.

    In-process activation (:func:`inject`) wins; otherwise a JSON
    ``REPRO_FAULT_PLAN`` env value is parsed once and cached (this is how
    spawn-context workers inherit the plan).  A non-JSON value - e.g. the
    bare seed integer the CI chaos leg exports - activates nothing.
    """
    global _env_cache
    if _active is not None:
        return _active
    text = os.environ.get(ENV_VAR, "").strip()
    if not text.startswith("["):
        return None
    if _env_cache is not None and _env_cache[0] == text:
        return _env_cache[1]
    try:
        plan = FaultPlan.from_json(text)
    except (ValueError, TypeError):
        return None
    _env_cache = (text, plan)
    return plan


def fault_at(
    site: str, *, shard: int | None = None, index: int | None = None
) -> Fault | None:
    """Injection-point probe: the fault to apply here, or None.

    Near-zero cost when no plan is active (one global + one env read).
    """
    plan = active_plan()
    if plan is None:
        return None
    fault = plan.match(site, shard=shard, index=index)
    if fault is not None and fault.kind == "fail_scan_chunk":
        raise TransientError(
            f"injected fault: scan chunk {index} failed (site {site})"
        )
    if fault is not None and fault.kind == "fail_segment_write":
        raise TransientError(
            f"injected fault: segment write {index} failed (site {site})"
        )
    if fault is not None and fault.kind == "enospc_segment_write":
        raise OSError(
            errno.ENOSPC,
            f"injected fault: no space left on device (segment write {index}, "
            f"site {site})",
        )
    return fault


def seed_from_env(default: int = 0) -> int:
    """The chaos seed from ``REPRO_FAULT_PLAN`` when it is a bare integer."""
    text = os.environ.get(ENV_VAR, "").strip()
    try:
        return int(text)
    except ValueError:
        return default


@contextlib.contextmanager
def inject(plan: FaultPlan):
    """Activate ``plan`` for this process and (via env) its spawn children."""
    global _active
    previous, previous_env = _active, os.environ.get(ENV_VAR)
    _active = plan
    os.environ[ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        _active = previous
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env
