"""Bounded retry with exponential backoff + decorrelated jitter.

Only :class:`~repro.errors.TransientError` (and subclasses, e.g.
``WorkerCrashed``) is ever retried - everything else propagates on the
first raise.  The planner uses this to re-run whole source-scan population
builds (``QuerySpec.max_retries``): a scan that failed mid-stream cannot be
resumed chunk-exactly, but restarting it is idempotent because population
builds are pure functions of the source.

Backoff is jittered by default.  Pure exponential backoff synchronizes
retry storms: when one shared dependency blips (the single-flight result
cache, a store write), every waiter sleeps the *same* schedule and re-hits
the dependency in lockstep.  The jittered schedule blends the exponential
curve toward a decorrelated walk (``base + U[0,1) * (prev * multiplier -
base)``, capped) seeded by ``RetryPolicy.seed`` - deterministic under a
fixed seed for tests, spread-out in production.  ``jitter=0.0`` opts back
into the exact legacy schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import TransientError

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base_delay * multiplier**attempt``,
    capped at ``max_delay``, for at most ``max_retries`` retries.

    ``jitter`` in [0, 1] blends each sleep from the pure exponential value
    (0.0) toward a fully decorrelated one (1.0, the default); ``seed``
    makes the jitter stream deterministic (None draws fresh entropy).
    """

    max_retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 1.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if not 0.0 <= float(self.jitter) <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """The un-jittered backoff before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * self.multiplier ** attempt, self.max_delay)

    def delays(self):
        """The jittered backoff stream: an infinite iterator of sleeps.

        With ``jitter=0.0`` this yields exactly ``delay(0), delay(1), ...``;
        otherwise each value interpolates between that curve and a seeded
        decorrelated walk, never exceeding ``max_delay``.
        """
        rng = random.Random(self.seed)
        prev = self.base_delay
        attempt = 0
        while True:
            pure = self.delay(attempt)
            if self.jitter <= 0.0:
                yield pure
            else:
                decor = min(
                    self.max_delay,
                    self.base_delay
                    + rng.random() * max(0.0, prev * self.multiplier - self.base_delay),
                )
                prev = decor
                yield (1.0 - self.jitter) * pure + self.jitter * decor
            attempt += 1


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    on_retry: Callable[[int, TransientError], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` until it succeeds, a non-transient error escapes, or the
    retry budget runs out (the last ``TransientError`` is re-raised).

    Args:
        fn: zero-argument callable; must be idempotent (it restarts whole).
        policy: backoff schedule (default :class:`RetryPolicy`()).
        on_retry: observer invoked as ``on_retry(attempt, exc)`` before each
            backoff sleep - the planner collects these into Result caveats.
        sleep: injectable for tests.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    attempt = 0
    while True:
        try:
            return fn()
        except TransientError as exc:
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(next(delays))
            attempt += 1
