"""Bounded retry with exponential backoff for transient failures.

Only :class:`~repro.errors.TransientError` (and subclasses, e.g.
``WorkerCrashed``) is ever retried - everything else propagates on the
first raise.  The planner uses this to re-run whole source-scan population
builds (``QuerySpec.max_retries``): a scan that failed mid-stream cannot be
resumed chunk-exactly, but restarting it is idempotent because population
builds are pure functions of the source.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import TransientError

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base_delay * multiplier**attempt``,
    capped at ``max_delay``, for at most ``max_retries`` retries."""

    max_retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * self.multiplier ** attempt, self.max_delay)


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    on_retry: Callable[[int, TransientError], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` until it succeeds, a non-transient error escapes, or the
    retry budget runs out (the last ``TransientError`` is re-raised).

    Args:
        fn: zero-argument callable; must be idempotent (it restarts whole).
        policy: backoff schedule (default :class:`RetryPolicy`()).
        on_retry: observer invoked as ``on_retry(attempt, exc)`` before each
            backoff sleep - the planner collects these into Result caveats.
        sleep: injectable for tests.
    """
    policy = policy if policy is not None else RetryPolicy()
    attempt = 0
    while True:
        try:
            return fn()
        except TransientError as exc:
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
            attempt += 1
