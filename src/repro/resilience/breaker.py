"""A minimal two-state (closed/open) circuit breaker.

The sharded engine owns one per process pool: every worker crash (even a
recovered one) records a failure, and once the threshold is reached the
breaker opens - subsequent runs are built on the thread executor instead of
respawning workers against whatever keeps killing them.  Opening is sticky
for the breaker's lifetime unless :meth:`reset` is called; the degradation
is surfaced to users through ``Result.caveats``.
"""

from __future__ import annotations

import threading

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Counts failures; opens at ``threshold`` (or on an explicit trip)."""

    def __init__(self, threshold: int = 3) -> None:
        if int(threshold) < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self._lock = threading.Lock()
        self._failures = 0
        self._open = False
        self._reason: str | None = None

    @property
    def open(self) -> bool:
        return self._open

    @property
    def closed(self) -> bool:
        return not self._open

    @property
    def failures(self) -> int:
        return self._failures

    @property
    def reason(self) -> str | None:
        """Why the breaker opened (None while closed)."""
        return self._reason

    def record_failure(self, reason: str | None = None) -> bool:
        """Count one failure; returns True iff this one opened the breaker."""
        with self._lock:
            self._failures += 1
            if self._open or self._failures < self.threshold:
                return False
            self._open = True
            self._reason = reason or (
                f"{self._failures} failures reached the threshold "
                f"({self.threshold})"
            )
            return True

    def trip(self, reason: str) -> bool:
        """Force the breaker open; returns True iff it was closed before."""
        with self._lock:
            if self._open:
                return False
            self._open = True
            self._reason = reason
            return True

    def reset(self) -> None:
        with self._lock:
            self._failures = 0
            self._open = False
            self._reason = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self._open else "closed"
        return f"CircuitBreaker({state}, failures={self._failures}/{self.threshold})"
