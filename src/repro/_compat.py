"""Deprecation machinery for the pre-Session entrypoints.

Before the :mod:`repro.session` facade existed, every workload had its own
front door (``run_ifocus``, ``run_ifocus_sum``, ``execute_query``, ...) with
divergent signatures and result types.  Those entrypoints keep working
throughout 1.x, but each one is now a thin shim over the same implementation
the Session planner dispatches to, and calling it emits a
:class:`DeprecationWarning` naming the Session-API replacement.

Internal code (the planner, the experiment harness, the registry) calls the
underscore-prefixed implementations directly, so library-internal use never
warns - only *external* calls to the legacy names do.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

__all__ = ["deprecated_entrypoint"]

_F = TypeVar("_F", bound=Callable)


def deprecated_entrypoint(impl: _F, name: str, replacement: str) -> _F:
    """Wrap ``impl`` so calling it by its legacy ``name`` warns once per call.

    Args:
        impl: the real implementation (also used internally, never warns).
        name: the public legacy name being shimmed.
        replacement: a short Session-API snippet shown in the warning.

    Returns:
        A wrapper with the legacy name, forwarding everything to ``impl``.
        ``wrapper.__wrapped__`` exposes the implementation for introspection.
    """

    @functools.wraps(impl)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"{name}() is deprecated; use the Session API instead: {replacement} "
            "(see README.md for the full migration table). "
            "The legacy entrypoint keeps working throughout 1.x.",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    wrapper.__name__ = name
    wrapper.__qualname__ = name
    wrapper.__deprecated__ = replacement  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
