"""Unified result hierarchy for the Session API.

Every workload - AVG, SUM, COUNT, multi-AVG, top-t, trends, values, mistakes,
no-index, streaming - returns the same shapes:

* :class:`GroupEstimate` - one bar: estimate, confidence half-width, sample
  and finalization accounting;
* :class:`AggregateResult` - one aggregate's bars plus its raw
  :class:`~repro.core.types.OrderingResult` (the algorithm-layer record);
* :class:`Result` - the whole answer: per-aggregate results, HAVING drops,
  guarantee metadata, *caveats*, and engine accounting;
* :class:`PartialUpdate` / :class:`ResultStream` - the incremental form every
  workload supports through ``.stream()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.types import GroupOutcome, OrderingResult
from repro.session.spec import GuaranteeSpec, QuerySpec

__all__ = [
    "GroupEstimate",
    "AggregateResult",
    "Result",
    "PartialUpdate",
    "ResultStream",
]


@dataclass(frozen=True)
class GroupEstimate:
    """One group's (bar's) final state.

    Attributes:
        label: group label (e.g. carrier code, or "x|z" composite key).
        estimate: the returned estimate of the group's aggregate.
        half_width: confidence-interval half-width at finalization
            (0.0 when the value is exact).
        samples: number of samples charged to this group.
        exhausted: True if the group was fully read (estimate is exact).
        finalized_round: round at which the group left the active set.
    """

    label: str
    estimate: float
    half_width: float
    samples: int
    exhausted: bool
    finalized_round: int

    @property
    def interval(self) -> tuple[float, float]:
        """The confidence interval [estimate - hw, estimate + hw]."""
        return (self.estimate - self.half_width, self.estimate + self.half_width)

    @property
    def exact(self) -> bool:
        return self.exhausted or self.half_width == 0.0

    @classmethod
    def from_outcome(cls, outcome: GroupOutcome) -> "GroupEstimate":
        return cls(
            label=outcome.name,
            estimate=float(outcome.estimate),
            half_width=float(outcome.half_width),
            samples=int(outcome.samples),
            exhausted=bool(outcome.exhausted),
            finalized_round=int(outcome.finalized_round),
        )

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "estimate": self.estimate,
            "half_width": self.half_width,
            "samples": self.samples,
            "exhausted": self.exhausted,
            "finalized_round": self.finalized_round,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroupEstimate":
        return cls(
            label=data["label"],
            estimate=float(data["estimate"]),
            half_width=float(data["half_width"]),
            samples=int(data["samples"]),
            exhausted=bool(data["exhausted"]),
            finalized_round=int(data["finalized_round"]),
        )


@dataclass
class AggregateResult:
    """One aggregate's answer: labelled estimates plus the raw algorithm run."""

    key: str
    algorithm: str
    labels: list[str]
    groups: list[GroupEstimate]
    raw: OrderingResult
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_ordering(
        cls, key: str, raw: OrderingResult, meta: dict[str, Any] | None = None
    ) -> "AggregateResult":
        groups = [GroupEstimate.from_outcome(g) for g in raw.groups]
        return cls(
            key=key,
            algorithm=raw.algorithm,
            labels=[g.label for g in groups],
            groups=groups,
            raw=raw,
            meta=dict(meta or {}),
        )

    def estimates(self) -> dict[str, float]:
        """{label: estimate} in input group order."""
        return {g.label: g.estimate for g in self.groups}

    def __getitem__(self, label: str) -> GroupEstimate:
        for g in self.groups:
            if g.label == label:
                return g
        raise KeyError(f"no group labelled {label!r} in {self.key}")

    def __iter__(self) -> Iterator[GroupEstimate]:
        return iter(self.groups)

    @property
    def total_samples(self) -> int:
        return int(self.raw.samples_per_group.sum())

    def order(self, descending: bool = False) -> list[str]:
        """Labels sorted by estimate (the certified display order)."""
        idx = np.argsort(self.raw.estimates, kind="stable")
        if descending:
            idx = idx[::-1]
        return [self.labels[int(i)] for i in idx]

    def finalization_order(self) -> list[str]:
        """Labels in the order the algorithm finalized them (Problem 7)."""
        return [self.labels[int(i)] for i in self.raw.inactive_order]

    def to_dict(self) -> dict:
        """JSON-safe dict form (the server wire format)."""
        from repro.core.types import jsonify_value

        return {
            "key": self.key,
            "algorithm": self.algorithm,
            "labels": list(self.labels),
            "groups": [g.to_dict() for g in self.groups],
            "raw": self.raw.to_dict(),
            "meta": jsonify_value(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateResult":
        return cls(
            key=data["key"],
            algorithm=data["algorithm"],
            labels=list(data["labels"]),
            groups=[GroupEstimate.from_dict(g) for g in data["groups"]],
            raw=OrderingResult.from_dict(data["raw"]),
            meta=dict(data.get("meta", {})),
        )


@dataclass
class Result:
    """The unified answer every Session query returns.

    Attributes:
        spec: the :class:`QuerySpec` that produced this result.
        labels: group labels in input order (shared by all aggregates).
        aggregates: one :class:`AggregateResult` per SELECT aggregate,
            keyed "AVG(delay)"-style.
        guarantee: the promise this result carries (delta, mode, ...).
        caveats: human-readable warnings the display layer should surface
            (e.g. HAVING filtering estimates, truncated runs).
        dropped_by_having: labels removed by the HAVING post-filter.
        engine: the sampling engine that served the query (None for pure
            multi-AVG queries, whose two-phase schedule drives its own index,
            and for hand-built results).
        total_samples: tuples actually sampled for the whole query - runs
            shared between aggregates (multi-AVG) count once, independent
            runs (e.g. AVG + SUM) sum.
    """

    spec: QuerySpec
    labels: list[str]
    aggregates: dict[str, AggregateResult]
    guarantee: GuaranteeSpec
    caveats: list[str] = field(default_factory=list)
    dropped_by_having: list[str] = field(default_factory=list)
    engine: Any = None
    total_samples: int = 0

    def __getitem__(self, key: str) -> AggregateResult:
        return self.aggregates[key]

    def __iter__(self) -> Iterator[AggregateResult]:
        return iter(self.aggregates.values())

    @property
    def first(self) -> AggregateResult:
        """The first (usually only) aggregate's result."""
        return next(iter(self.aggregates.values()))

    def estimates(self, key: str | None = None) -> dict[str, float]:
        """{label: estimate} for one aggregate (default: the first)."""
        agg = self.aggregates[key] if key is not None else self.first
        return agg.estimates()

    @property
    def kept_labels(self) -> list[str]:
        """Labels surviving the HAVING post-filter (input order)."""
        dropped = set(self.dropped_by_having)
        return [lbl for lbl in self.labels if lbl not in dropped]

    @property
    def deadline_exceeded(self) -> bool:
        """True when any aggregate's run stopped at its deadline.

        The estimates are still valid anytime estimates - intervals are just
        wider than the guarantee would have required (see the matching
        ``deadline_exceeded`` caveat).
        """
        return any(
            bool(a.raw.params.get("deadline_exceeded"))
            for a in self.aggregates.values()
        )

    @property
    def io_seconds(self) -> float:
        return sum(
            a.raw.stats.io_seconds for a in self.aggregates.values() if a.raw.stats
        )

    @property
    def cpu_seconds(self) -> float:
        return sum(
            a.raw.stats.cpu_seconds for a in self.aggregates.values() if a.raw.stats
        )

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds

    def finalization_order(self, key: str | None = None) -> list[str]:
        agg = self.aggregates[key] if key is not None else self.first
        return agg.finalization_order()

    def summary(self) -> str:
        parts = [
            f"{k}: {a.algorithm}, {a.total_samples:,} samples"
            for k, a in self.aggregates.items()
        ]
        return f"Result({'; '.join(parts)}; {self.guarantee.describe()})"

    def to_dict(self) -> dict:
        """JSON-safe dict form: the ``repro.serve`` wire format.

        Everything a dashboard needs crosses the wire: per-group estimates
        with intervals and accounting, guarantee metadata, caveats
        (``resilience:``/``deadline_exceeded:`` events included), HAVING
        drops, and the full spec.  The live engine object does not (it is
        process-local); ``from_dict`` results carry ``engine=None`` and the
        spec's ``engine`` name identifies the substrate.
        """
        return {
            "spec": self.spec.to_dict(),
            "labels": list(self.labels),
            "aggregates": {k: a.to_dict() for k, a in self.aggregates.items()},
            "guarantee": self.guarantee.to_dict(),
            "caveats": list(self.caveats),
            "dropped_by_having": list(self.dropped_by_having),
            "total_samples": int(self.total_samples),
            "deadline_exceeded": self.deadline_exceeded,
            "io_seconds": self.io_seconds,
            "cpu_seconds": self.cpu_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Result":
        return cls(
            spec=QuerySpec.from_dict(data["spec"]),
            labels=list(data["labels"]),
            aggregates={
                k: AggregateResult.from_dict(a)
                for k, a in data["aggregates"].items()
            },
            guarantee=GuaranteeSpec.from_dict(data["guarantee"]),
            caveats=list(data.get("caveats", [])),
            dropped_by_having=list(data.get("dropped_by_having", [])),
            engine=None,
            total_samples=int(data.get("total_samples", 0)),
        )


@dataclass(frozen=True)
class PartialUpdate:
    """One emission of a streaming query: a group just became trustworthy.

    ``live`` distinguishes true incremental emission (the group finalized
    while others are still sampling) from post-hoc replay in finalization
    order (workloads whose executor has no incremental hook).
    """

    aggregate: str
    group: GroupEstimate
    emitted_so_far: int
    total_groups: int
    live: bool = True

    @property
    def done(self) -> bool:
        return self.emitted_so_far == self.total_groups

    def to_dict(self) -> dict:
        return {
            "aggregate": self.aggregate,
            "group": self.group.to_dict(),
            "emitted_so_far": self.emitted_so_far,
            "total_groups": self.total_groups,
            "live": self.live,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartialUpdate":
        return cls(
            aggregate=data["aggregate"],
            group=GroupEstimate.from_dict(data["group"]),
            emitted_so_far=int(data["emitted_so_far"]),
            total_groups=int(data["total_groups"]),
            live=bool(data.get("live", True)),
        )


class ResultStream:
    """Iterator of :class:`PartialUpdate` with the final :class:`Result`.

    Reading ``.result`` drains any remaining updates first, so it is always
    available - including when the consumer stopped at ``update.done``
    instead of exhausting the iterator.
    """

    def __init__(self, updates: Iterator[PartialUpdate]) -> None:
        self._updates = updates
        self._result: Result | None = None

    def __iter__(self) -> Iterator[PartialUpdate]:
        return self

    def __next__(self) -> PartialUpdate:
        return next(self._updates)

    @property
    def result(self) -> Result:
        """The unified result (drains remaining updates if necessary)."""
        if self._result is None:
            for _ in self:
                pass
        if self._result is None:
            raise RuntimeError(
                "the stream terminated without producing a result "
                "(the underlying run raised before completing)"
            )
        return self._result

    @result.setter
    def result(self, value: Result) -> None:
        self._result = value

    def drain(self) -> Result:
        """Consume all remaining updates and return the final result."""
        return self.result
