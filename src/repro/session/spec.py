"""The declarative query IR both front doors lower to.

A :class:`QuerySpec` is an immutable, fully-validated description of one
visualization query: what to aggregate, how to group, which rows qualify, and
what guarantee the answer must carry.  SQL text (via :mod:`repro.query`) and
the fluent builder (:mod:`repro.session.builder`) both compile to this type,
and :mod:`repro.session.planner` is the single component that turns a spec
into algorithm runs - so the two front doors cannot drift apart.

Specs are plain frozen dataclasses: two logically identical queries compare
equal regardless of which front door produced them (the parity test suite
relies on this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro._util import check_nonnegative, check_probability
from repro.query.ast import (
    COMPARISON_OPS,
    Aggregate,
    Predicate,
    Query,
    predicate_from_dict,
    predicate_to_dict,
)
from repro.streaming.window import WindowSpec

__all__ = [
    "Aggregate",
    "HavingSpec",
    "GuaranteeSpec",
    "QuerySpec",
    "GUARANTEE_MODES",
    "SHARD_EXECUTORS",
    "lower_query",
]

#: Shard fan-out executors (mirrors repro.engines.sharded.SHARD_EXECUTORS;
#: kept literal here so the spec layer stays import-light).
SHARD_EXECUTORS = ("thread", "process")

#: Guarantee modes the planner can dispatch (paper section in parentheses):
#: ordering (§3), top (§6.1.2), trends (§6.1.1), values (§6.2.1),
#: mistakes (§6.1.3).
GUARANTEE_MODES = ("ordering", "top", "trends", "values", "mistakes")


@dataclass(frozen=True)
class HavingSpec:
    """HAVING AGG(col) op literal - a post-filter on the estimated aggregate."""

    agg: Aggregate
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown HAVING operator {self.op!r}")
        object.__setattr__(self, "value", float(self.value))

    def to_dict(self) -> dict:
        return {
            "agg": {"func": self.agg.func, "column": self.agg.column},
            "op": self.op,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HavingSpec":
        return cls(
            agg=Aggregate(data["agg"]["func"], data["agg"]["column"]),
            op=data["op"],
            value=float(data["value"]),
        )


@dataclass(frozen=True)
class GuaranteeSpec:
    """The probabilistic promise attached to a query's answer.

    Attributes:
        delta: failure probability; the guarantee holds with prob >= 1-delta.
        resolution: Problem-2 visual resolution r (0 disables the relaxation).
        mode: which property must hold (see :data:`GUARANTEE_MODES`).
        top_t / top_largest: ``mode="top"`` - report the t best groups,
            correctly identified and internally ordered.
        neighbors: ``mode="trends"`` - adjacency list (tuple of tuples) for
            the neighbor-only ordering; ``None`` means the ordinal chain.
        value_tolerance: ``mode="values"`` - every displayed estimate is
            within this of its true value.
        min_correct_fraction: ``mode="mistakes"`` - the fraction of pairwise
            orderings that must be correct.
    """

    delta: float = 0.05
    resolution: float = 0.0
    mode: str = "ordering"
    top_t: int | None = None
    top_largest: bool = True
    neighbors: tuple[tuple[int, ...], ...] | None = None
    value_tolerance: float | None = None
    min_correct_fraction: float | None = None

    def __post_init__(self) -> None:
        check_probability(self.delta, "delta")
        check_nonnegative(self.resolution, "resolution")
        if self.mode not in GUARANTEE_MODES:
            raise ValueError(
                f"unknown guarantee mode {self.mode!r}; known: {GUARANTEE_MODES}"
            )
        if self.mode == "top" and (self.top_t is None or self.top_t < 1):
            raise ValueError("mode='top' requires top_t >= 1")
        if self.mode == "values":
            if self.value_tolerance is None or self.value_tolerance <= 0:
                raise ValueError("mode='values' requires value_tolerance > 0")
        if self.mode == "mistakes":
            if self.min_correct_fraction is None:
                raise ValueError("mode='mistakes' requires min_correct_fraction")
            if not 0.0 < self.min_correct_fraction <= 1.0:
                raise ValueError("min_correct_fraction must be in (0, 1]")

    def describe(self) -> str:
        """One-line human-readable statement of the promise."""
        p = f"with probability >= {1.0 - self.delta:g}"
        if self.mode == "ordering":
            return f"displayed order is correct {p}"
        if self.mode == "top":
            side = "largest" if self.top_largest else "smallest"
            return (
                f"the {self.top_t} {side} groups are correctly identified "
                f"and internally ordered {p}"
            )
        if self.mode == "trends":
            return f"all neighboring groups are correctly ordered {p}"
        if self.mode == "values":
            return (
                f"order is correct and every estimate is within "
                f"{self.value_tolerance:g} of its true value {p}"
            )
        return (
            f"at least {self.min_correct_fraction:.0%} of pairwise orderings "
            f"are correct {p}"
        )

    def to_dict(self) -> dict:
        """JSON-safe dict form (the server wire format)."""
        return {
            "delta": self.delta,
            "resolution": self.resolution,
            "mode": self.mode,
            "top_t": self.top_t,
            "top_largest": self.top_largest,
            "neighbors": (
                [list(adj) for adj in self.neighbors]
                if self.neighbors is not None
                else None
            ),
            "value_tolerance": self.value_tolerance,
            "min_correct_fraction": self.min_correct_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GuaranteeSpec":
        neighbors = data.get("neighbors")
        return cls(
            delta=float(data.get("delta", 0.05)),
            resolution=float(data.get("resolution", 0.0)),
            mode=data.get("mode", "ordering"),
            top_t=data.get("top_t"),
            top_largest=bool(data.get("top_largest", True)),
            neighbors=(
                tuple(tuple(int(i) for i in adj) for adj in neighbors)
                if neighbors is not None
                else None
            ),
            value_tolerance=data.get("value_tolerance"),
            min_correct_fraction=data.get("min_correct_fraction"),
        )


@dataclass(frozen=True)
class QuerySpec:
    """A fully-lowered visualization query, ready for the planner.

    Attributes:
        table: catalog name of the relation.
        group_by: one or more grouping attributes (multiple columns become
            the §6.3.4 cross-product composite key at planning time).
        aggregates: SELECT-list aggregates, in SELECT order.
        where: optional row predicate (shared AST with the SQL parser).
        having: optional post-filter on one estimated aggregate.
        guarantee: the probabilistic promise (delta, resolution, mode).
        algorithm: which core algorithm answers AVG aggregates
            (``ifocus``, ``ifocusr``, ``irefine``, ``roundrobin``, ...).
        engine: registered execution substrate (``needletail``, ``memory``,
            ``noindex``; see :func:`repro.session.planner.register_engine`).
        value_bound: optional value upper bound c; inferred when omitted.
        shards: partition the engine into this many parallel shards
            (:class:`~repro.engines.sharded.ShardedEngine`); 1 (the default)
            runs the engine unwrapped, bit-identical to previous releases.
        max_workers: thread-pool width for the shard fan-out; ``None`` means
            one worker per shard, ``1`` forces a sequential fan-out.
        executor: shard fan-out executor - ``"thread"`` (in-process, default)
            or ``"process"`` (one worker process per shard over shared
            memory; the planner falls back to threads, with a caveat, when
            the population cannot cross the process boundary).
        deadline_ms: optional per-query time budget in milliseconds.  On
            expiry the sampling loops finalize every still-active group at
            its current estimate (anytime behaviour: valid, wider
            intervals) and the result carries a ``deadline_exceeded``
            caveat instead of an exception.
        max_retries: transient-failure retry budget for source-scan
            population builds (exponential backoff; see
            :mod:`repro.resilience.retry`).
        window: optional :class:`~repro.streaming.window.WindowSpec` turning
            the query continuous - the stream is carved into windows and
            every other field is evaluated once per window.  Windowed specs
            run through ``Session.subscribe(...)`` / the streaming runner;
            the one-shot ``execute``/``submit`` paths reject them loudly.
    """

    table: str
    group_by: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]
    where: Predicate | None = None
    having: HavingSpec | None = None
    guarantee: GuaranteeSpec = field(default_factory=GuaranteeSpec)
    algorithm: str = "ifocus"
    engine: str = "needletail"
    value_bound: float | None = None
    shards: int = 1
    max_workers: int | None = None
    executor: str = "thread"
    deadline_ms: float | None = None
    max_retries: int = 2
    window: WindowSpec | None = None

    def __post_init__(self) -> None:
        if self.window is not None and not isinstance(self.window, WindowSpec):
            raise TypeError(
                f"window must be a WindowSpec (or None), got {self.window!r}"
            )
        if not self.table:
            raise ValueError("a query needs a table name")
        if int(self.shards) < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.max_workers is not None and int(self.max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; known: {SHARD_EXECUTORS}"
            )
        if self.deadline_ms is not None and float(self.deadline_ms) <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not self.group_by:
            raise ValueError("a visualization query requires at least one GROUP BY")
        if not self.aggregates:
            raise ValueError("need at least one aggregate in SELECT")
        seen: set[Aggregate] = set()
        for agg in self.aggregates:
            if agg in seen:
                raise ValueError(
                    f"duplicate aggregate {agg.func}({agg.column}) in SELECT"
                )
            seen.add(agg)
        avgs = [a for a in self.aggregates if a.func == "AVG"]
        if len(avgs) > 2:
            raise ValueError("at most two AVG aggregates are supported (Problem 8)")
        if self.having is not None and self.having.agg not in self.aggregates:
            key = f"{self.having.agg.func}({self.having.agg.column})"
            raise ValueError(f"HAVING references {key}, which is not in SELECT")
        if self.guarantee.mode != "ordering" and len(avgs) != 1:
            raise ValueError(
                f"guarantee mode {self.guarantee.mode!r} applies to queries "
                "with exactly one AVG aggregate"
            )

    @property
    def avg_aggregates(self) -> tuple[Aggregate, ...]:
        return tuple(a for a in self.aggregates if a.func == "AVG")

    def scan_columns(self) -> tuple[str, ...]:
        """Every source column this query touches, in first-use order.

        Group-by keys, aggregate targets (``COUNT(*)`` touches none), and
        WHERE columns - the projection a :class:`~repro.catalog.source.DataSource`
        scan needs to answer the query.  Used by the planner's population
        builds (scan only these, never the full relation) and surfaced by
        ``explain()``.
        """
        from repro.query.predicates import predicate_columns

        cols = list(self.group_by)
        cols += [a.column for a in self.aggregates if a.column != "*"]
        if self.where is not None:
            cols += sorted(predicate_columns(self.where))
        return tuple(dict.fromkeys(cols))

    def agg_key(self, agg: Aggregate) -> str:
        """Canonical result key for one aggregate, e.g. ``"AVG(delay)"``."""
        return f"{agg.func}({agg.column})"

    def with_guarantee(self, **changes) -> "QuerySpec":
        """A copy of the spec with guarantee fields replaced."""
        return replace(self, guarantee=replace(self.guarantee, **changes))

    def to_dict(self) -> dict:
        """JSON-safe dict form - the server wire format for specs.

        ``from_dict(to_dict())`` equals the original spec (frozen dataclass
        equality), so a spec can cross the HTTP boundary losslessly.
        """
        return {
            "table": self.table,
            "group_by": list(self.group_by),
            "aggregates": [
                {"func": a.func, "column": a.column} for a in self.aggregates
            ],
            "where": predicate_to_dict(self.where) if self.where is not None else None,
            "having": self.having.to_dict() if self.having is not None else None,
            "guarantee": self.guarantee.to_dict(),
            "algorithm": self.algorithm,
            "engine": self.engine,
            "value_bound": self.value_bound,
            "shards": self.shards,
            "max_workers": self.max_workers,
            "executor": self.executor,
            "deadline_ms": self.deadline_ms,
            "max_retries": self.max_retries,
            "window": self.window.to_dict() if self.window is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuerySpec":
        """Rebuild (and re-validate) a spec from its :meth:`to_dict` form."""
        where = data.get("where")
        having = data.get("having")
        guarantee = data.get("guarantee")
        window = data.get("window")
        return cls(
            table=data["table"],
            group_by=tuple(data["group_by"]),
            aggregates=tuple(
                Aggregate(a["func"], a["column"]) for a in data["aggregates"]
            ),
            where=predicate_from_dict(where) if where is not None else None,
            having=HavingSpec.from_dict(having) if having is not None else None,
            guarantee=(
                GuaranteeSpec.from_dict(guarantee)
                if guarantee is not None
                else GuaranteeSpec()
            ),
            algorithm=data.get("algorithm", "ifocus"),
            engine=data.get("engine", "needletail"),
            value_bound=data.get("value_bound"),
            shards=int(data.get("shards", 1)),
            max_workers=data.get("max_workers"),
            executor=data.get("executor", "thread"),
            deadline_ms=data.get("deadline_ms"),
            max_retries=int(data.get("max_retries", 2)),
            window=WindowSpec.from_dict(window) if window is not None else None,
        )

    def canonical_key(self) -> str:
        """A stable string identifying this exact query.

        Two specs compare equal iff their canonical keys match: the key is
        the sorted, separator-normalized JSON of :meth:`to_dict`, so it is
        independent of which front door (SQL text, builder, wire JSON)
        produced the spec.  The serving layer's result cache keys on
        ``(canonical_key, seed)``.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def lower_query(
    query: Query,
    *,
    guarantee: GuaranteeSpec | None = None,
    algorithm: str = "ifocus",
    engine: str = "needletail",
    value_bound: float | None = None,
    shards: int = 1,
    max_workers: int | None = None,
    executor: str = "thread",
    deadline_ms: float | None = None,
    max_retries: int = 2,
    window: WindowSpec | None = None,
) -> QuerySpec:
    """Lower a parsed SQL :class:`~repro.query.ast.Query` to a :class:`QuerySpec`.

    This is the SQL front door's half of the "both paths meet in the same IR"
    contract; the fluent builder's ``spec()`` is the other half.
    """
    having = None
    if query.having is not None:
        agg, op, value = query.having
        having = HavingSpec(agg=agg, op=op, value=float(value))
    return QuerySpec(
        table=query.table,
        group_by=tuple(query.group_by),
        aggregates=tuple(query.aggregates),
        where=query.where,
        having=having,
        guarantee=guarantee if guarantee is not None else GuaranteeSpec(),
        algorithm=algorithm,
        engine=engine,
        value_bound=value_bound,
        shards=shards,
        max_workers=max_workers,
        executor=executor,
        deadline_ms=deadline_ms,
        max_retries=max_retries,
        window=window,
    )
