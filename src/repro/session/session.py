"""``Session``/``connect()`` - the one front door for every workload.

A session owns a table catalog and default knobs (delta, algorithm, engine,
seed) and hands out :class:`~repro.session.builder.QueryBuilder` objects from
either front door::

    import repro

    session = repro.connect(delta=0.05)
    session.register_flights("flights", rows=100_000, seed=0)

    # programmatic front door
    result = (
        session.table("flights")
        .group_by("carrier")
        .agg(repro.avg("arrival_delay"))
        .run(seed=42)
    )

    # SQL front door - lowers to the *same* QuerySpec
    result = session.sql(
        "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
    ).run(seed=42)

Tables can be registered from :class:`~repro.needletail.table.Table` objects,
``{column: ndarray}`` dicts, or CSV files (:meth:`Session.register_csv`).
"""

from __future__ import annotations

import csv
import dataclasses
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Mapping

import numpy as np

from repro.needletail.table import Table
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.session.builder import QueryBuilder
from repro.session.planner import execute_spec, stream_spec
from repro.session.result import Result, ResultStream
from repro.session.spec import GuaranteeSpec, QuerySpec, lower_query

__all__ = ["Session", "connect", "load_csv_table"]


def load_csv_table(
    path: str | os.PathLike,
    name: str | None = None,
    *,
    group_columns: Iterable[str] = (),
    value_columns: Iterable[str] = (),
    delimiter: str = ",",
) -> Table:
    """Load a CSV file into a :class:`~repro.needletail.table.Table`.

    Column typing: columns named in ``group_columns`` stay strings (group-by
    keys), columns in ``value_columns`` must parse as floats (aggregation
    targets), and everything else is auto-detected (float if every row
    parses, string otherwise).

    Args:
        path: CSV file with a header row.
        name: table name; defaults to the file's stem.
        group_columns / value_columns: explicit typing overrides.
        delimiter: field separator.
    """
    group_cols = set(group_columns)
    value_cols = set(value_columns)
    overlap = group_cols & value_cols
    if overlap:
        raise ValueError(f"columns marked both group and value: {sorted(overlap)}")
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV (no header row)") from None
        header = [h.strip() for h in header]
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path}: CSV has a header but no data rows")
    unknown = (group_cols | value_cols) - set(header)
    if unknown:
        raise KeyError(f"{path}: no such CSV columns: {sorted(unknown)}")
    bad_widths = sorted({len(row) for row in rows if len(row) != len(header)})
    if bad_widths:
        count = sum(1 for row in rows if len(row) != len(header))
        raise ValueError(
            f"{path}: {count} row(s) have {bad_widths} fields, "
            f"expected {len(header)}"
        )

    columns: dict[str, np.ndarray] = {}
    for j, col_name in enumerate(header):
        raw = np.array([row[j].strip() for row in rows], dtype=str)
        if col_name in group_cols:
            columns[col_name] = raw
            continue
        try:
            as_float = raw.astype(np.float64)
        except ValueError:
            if col_name in value_cols:
                raise ValueError(
                    f"{path}: value column {col_name!r} has non-numeric entries"
                ) from None
            columns[col_name] = raw
        else:
            columns[col_name] = as_float
    table_name = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    return Table.from_dict(table_name, columns)


class Session:
    """A table catalog plus default query knobs.

    All registration methods return the session, so setup chains::

        session = connect().register("t", table).register_csv("u", "u.csv")
    """

    #: Submit-pool width when ``max_workers`` is left unset: enough to keep a
    #: handful of concurrent queries in flight without oversubscribing CI boxes.
    DEFAULT_SUBMIT_WORKERS = 8

    def __init__(
        self,
        *,
        delta: float = 0.05,
        resolution: float = 0.0,
        algorithm: str = "ifocus",
        engine: str = "needletail",
        seed: int | None = None,
        shards: int = 1,
        max_workers: int | None = None,
        submit_workers: int | None = None,
    ) -> None:
        if submit_workers is not None and int(submit_workers) < 1:
            raise ValueError(f"submit_workers must be >= 1, got {submit_workers}")
        self._catalog: dict[str, Table] = {}
        self.delta = delta
        self.resolution = resolution
        self.algorithm = algorithm
        self.engine = engine
        self.seed = seed
        self.shards = int(shards)
        self.max_workers = max_workers
        self.submit_workers = submit_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- catalog ------------------------------------------------------------

    @property
    def tables(self) -> list[str]:
        """Registered table names."""
        return sorted(self._catalog)

    @property
    def catalog(self) -> dict[str, Table]:
        """The live name -> Table mapping (shared, not a copy)."""
        return self._catalog

    def register(
        self, name: str, data: Table | Mapping[str, np.ndarray]
    ) -> "Session":
        """Register a table under ``name`` (Table or {column: array} dict)."""
        if isinstance(data, Table):
            table = data
        else:
            table = Table.from_dict(name, dict(data))
        self._catalog[name] = table
        return self

    def register_csv(
        self,
        name: str,
        path: str | os.PathLike,
        *,
        group_columns: Iterable[str] = (),
        value_columns: Iterable[str] = (),
        delimiter: str = ",",
    ) -> "Session":
        """Load a CSV file and register it (see :func:`load_csv_table`)."""
        table = load_csv_table(
            path,
            name,
            group_columns=group_columns,
            value_columns=value_columns,
            delimiter=delimiter,
        )
        return self.register(name, table)

    def register_flights(
        self, name: str = "flights", *, rows: int = 100_000, seed: int | None = 0
    ) -> "Session":
        """Register the synthetic flights table (the paper's workload)."""
        from repro.data.flights import make_flights_table

        return self.register(name, make_flights_table(num_rows=rows, seed=seed))

    # -- front doors --------------------------------------------------------

    def _builder(self, table: str) -> QueryBuilder:
        return QueryBuilder(
            _session=self,
            _table=table,
            _guarantee=GuaranteeSpec(delta=self.delta, resolution=self.resolution),
            _algorithm=self.algorithm,
            _engine=self.engine,
            _shards=self.shards,
            _max_workers=self.max_workers,
        )

    def table(self, name: str) -> QueryBuilder:
        """Start a fluent query over a registered table."""
        if name not in self._catalog:
            raise KeyError(f"unknown table {name!r}; registered: {self.tables}")
        return self._builder(name)

    def sql(self, text: str | Query) -> QueryBuilder:
        """Start a query from SQL text (or a pre-parsed Query).

        Returns a builder seeded from the parsed query, so Session-only
        features chain onto SQL: ``session.sql("SELECT ...").top(3).run()``.
        """
        query = parse_query(text) if isinstance(text, str) else text
        spec = lower_query(query)
        return dataclasses.replace(
            self._builder(spec.table),
            _group_by=spec.group_by,
            _aggregates=spec.aggregates,
            _where=(spec.where,) if spec.where is not None else (),
            _having=spec.having,
        )

    # -- execution ----------------------------------------------------------

    def _lower(self, what: str | Query | QuerySpec | QueryBuilder) -> QuerySpec:
        if isinstance(what, QuerySpec):
            return what
        if isinstance(what, QueryBuilder):
            return what.spec()
        if isinstance(what, (str, Query)):
            return self.sql(what).spec()
        raise TypeError(f"cannot execute {type(what).__name__}")

    def execute(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        **runner_kwargs,
    ) -> Result:
        """Execute SQL text, a Query, a QuerySpec, or a builder."""
        spec = self._lower(what)
        return execute_spec(
            spec,
            self._catalog,
            seed=seed if seed is not None else self.seed,
            runner_kwargs=runner_kwargs,
        )

    def stream(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        **runner_kwargs,
    ) -> ResultStream:
        """Incremental execution: PartialUpdates as groups finalize."""
        spec = self._lower(what)
        return stream_spec(
            spec,
            self._catalog,
            seed=seed if seed is not None else self.seed,
            runner_kwargs=runner_kwargs,
        )

    def submit(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        **runner_kwargs,
    ) -> "Future[Result]":
        """Execute asynchronously; returns a ``concurrent.futures.Future``.

        One session can serve many concurrent queries safely: the query is
        lowered and validated on the calling thread (shape errors raise
        here, not inside the future), the catalog is snapshotted so later
        ``register(...)`` calls never affect queries already in flight, and
        each worker builds its own engine and :class:`EngineRun` - all run
        state (sampling streams, accounting) is per query by construction,
        so concurrent queries cannot observe each other's samples or stats.

        ::

            futures = [session.submit(q, seed=s) for s in range(8)]
            results = [f.result() for f in futures]
        """
        spec = self._lower(what)
        if spec.table not in self._catalog:
            raise KeyError(f"unknown table {spec.table!r}; registered: {self.tables}")
        catalog = dict(self._catalog)
        resolved_seed = seed if seed is not None else self.seed
        return self._submit_pool().submit(
            execute_spec,
            spec,
            catalog,
            seed=resolved_seed,
            runner_kwargs=runner_kwargs,
        )

    def _submit_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("Session is closed")
            if self._pool is None:
                # Deliberately independent of max_workers: that knob sizes the
                # per-query *shard* fan-out (max_workers=1 means "sequential
                # fan-out"), and must not silently serialize submit().
                workers = (
                    self.submit_workers
                    if self.submit_workers is not None
                    else self.DEFAULT_SUBMIT_WORKERS
                )
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-session"
                )
        return self._pool

    def close(self) -> None:
        """Shut down the submit pool; in-flight futures finish first."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(tables={self.tables}, delta={self.delta}, "
            f"algorithm={self.algorithm!r}, engine={self.engine!r})"
        )


def connect(
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    algorithm: str = "ifocus",
    engine: str = "needletail",
    seed: int | None = None,
    shards: int = 1,
    max_workers: int | None = None,
    submit_workers: int | None = None,
) -> Session:
    """Open a session - the Session API's entrypoint.

    Args:
        delta: default failure probability for every query.
        resolution: default Problem-2 visual resolution.
        algorithm: default AVG algorithm (ifocus/ifocusr/irefine/...).
        engine: default execution substrate (needletail/memory/noindex).
        seed: default RNG seed when ``run()``/``stream()`` omit one.
        shards: default shard count for every query (1 = unsharded,
            bit-identical to previous releases; see DESIGN_PERF.md).
        max_workers: per-query shard fan-out pool width (``None``: one
            worker per shard; ``1``: sequential fan-out).
        submit_workers: size of the :meth:`Session.submit` pool
            (``None``: ``Session.DEFAULT_SUBMIT_WORKERS``).
    """
    return Session(
        delta=delta,
        resolution=resolution,
        algorithm=algorithm,
        engine=engine,
        seed=seed,
        shards=shards,
        max_workers=max_workers,
        submit_workers=submit_workers,
    )
