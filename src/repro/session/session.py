"""``Session``/``connect()`` - the one front door for every workload.

A session owns a :class:`~repro.catalog.Catalog` of named data sources and
default knobs (delta, algorithm, engine, seed) and hands out
:class:`~repro.session.builder.QueryBuilder` objects from either front
door::

    import repro

    session = repro.connect(delta=0.05)
    session.attach("flights", repro.SourceSpec("flights", rows=100_000, seed=0))

    # programmatic front door
    result = (
        session.table("flights")
        .group_by("carrier")
        .agg(repro.avg("arrival_delay"))
        .run(seed=42)
    )

    # SQL front door - lowers to the *same* QuerySpec
    result = session.sql(
        "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier"
    ).run(seed=42)

Data enters through :meth:`Session.attach` - one polymorphic call that
dispatches on the target: in-memory tables/dicts/DataFrame-likes, paths to
CSV/Parquet files, declarative :class:`~repro.catalog.SourceSpec` targets
(synthetic generator families, the flights workload), or any
already-constructed :class:`~repro.catalog.source.DataSource`.  Sources are
*lazy*: attaching records metadata, the first query triggers the (cached)
scan or population build, and WHERE predicates are pushed into the source
scan so non-qualifying rows are filtered before they are materialized.
``connect(store=DIR)`` makes the catalog durable: attached sources and
their cached builds persist and re-open warm (see :mod:`repro.storage`).
The legacy ``register_csv``/``register_parquet``/``register_flights``/
``register_synthetic``/``register_source`` doors still work throughout 1.x,
each emitting a :class:`DeprecationWarning` pointing at its ``attach`` form.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Mapping

import numpy as np

from repro._compat import deprecated_entrypoint
from repro.catalog import (
    Catalog,
    CSVSource,
    DataSource,
    ParquetSource,
    SourceInfo,
    SourceSpec,
    SyntheticSource,
    TableSource,
)
from repro.needletail.table import Table
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.resilience.deadline import Deadline
from repro.session.builder import QueryBuilder
from repro.session.planner import execute_spec, stream_spec
from repro.session.result import Result, ResultStream
from repro.session.spec import GuaranteeSpec, QuerySpec, lower_query

__all__ = ["Session", "QueryFuture", "connect", "load_csv_table"]


class QueryFuture:
    """A ``concurrent.futures.Future`` wrapper with cooperative cancellation.

    A plain Future can only cancel work that has not started; a query
    already sampling would run to completion.  :meth:`cancel` additionally
    fires the query's :class:`~repro.resilience.Deadline` cancel token, so
    an in-flight IFOCUS-family run stops at its next round boundary and the
    future resolves with :class:`~repro.errors.QueryCancelled`.
    """

    def __init__(self, inner: "Future[Result]", deadline: Deadline) -> None:
        self._inner = inner
        self._deadline = deadline

    def cancel(self) -> bool:
        """Cancel the query; True unless it already finished.

        Not-yet-started queries are cancelled outright (the Future never
        runs); in-flight queries are cancelled *cooperatively* - their
        ``result()`` raises :class:`~repro.errors.QueryCancelled` once the
        run observes the token at a round boundary.
        """
        if self._inner.cancel():
            return True
        if self._inner.done():
            return False
        self._deadline.cancel()
        return True

    def cancelled(self) -> bool:
        return self._inner.cancelled() or self._deadline.cancelled

    def result(self, timeout: float | None = None) -> Result:
        return self._inner.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._inner.exception(timeout)

    def done(self) -> bool:
        return self._inner.done()

    def running(self) -> bool:
        return self._inner.running()

    def add_done_callback(self, fn) -> None:
        self._inner.add_done_callback(lambda _inner: fn(self))

    @property
    def inner(self) -> "Future[Result]":
        """The wrapped ``concurrent.futures.Future``.

        Exposed so async front ends (``repro.serve``) can bridge with
        ``asyncio.wrap_future`` while still cancelling through
        :meth:`cancel` (which additionally fires the cooperative token).
        """
        return self._inner


def load_csv_table(
    path: str | os.PathLike,
    name: str | None = None,
    *,
    group_columns: Iterable[str] = (),
    value_columns: Iterable[str] = (),
    delimiter: str = ",",
) -> Table:
    """Load a CSV file eagerly into a :class:`~repro.needletail.table.Table`.

    A convenience over :class:`~repro.catalog.CSVSource` (which is what
    ``Session.register_csv`` uses - prefer that: it stays lazy and supports
    predicate pushdown).  Column typing: columns named in ``group_columns``
    stay strings (group-by keys), columns in ``value_columns`` must parse as
    floats (aggregation targets), and everything else is auto-detected
    (float if every row parses, string otherwise).  Duplicate header names
    are rejected - the legacy loader silently let the last duplicate win.

    Args:
        path: CSV file with a header row (UTF-8).
        name: table name; defaults to the file's stem.
        group_columns / value_columns: explicit typing overrides.
        delimiter: field separator.
    """
    source = CSVSource(
        path,
        group_columns=group_columns,
        value_columns=value_columns,
        delimiter=delimiter,
    )
    table_name = (
        name if name is not None else os.path.splitext(os.path.basename(path))[0]
    )
    return source.to_table(table_name)


class Session:
    """A data-source catalog plus default query knobs.

    All attachment methods return the session, so setup chains::

        session = connect().register("t", table).attach("u", "u.csv")
    """

    #: Submit-pool width when ``max_workers`` is left unset: enough to keep a
    #: handful of concurrent queries in flight without oversubscribing CI boxes.
    DEFAULT_SUBMIT_WORKERS = 8

    def __init__(
        self,
        *,
        delta: float = 0.05,
        resolution: float = 0.0,
        algorithm: str = "ifocus",
        engine: str = "needletail",
        seed: int | None = None,
        shards: int = 1,
        max_workers: int | None = None,
        executor: str = "thread",
        submit_workers: int | None = None,
        deadline_ms: float | None = None,
        max_retries: int = 2,
        catalog: Catalog | None = None,
    ) -> None:
        if submit_workers is not None and int(submit_workers) < 1:
            raise ValueError(f"submit_workers must be >= 1, got {submit_workers}")
        # An injected catalog lets several sessions share one set of sources
        # and build caches (the repro.serve session pool); default sessions
        # stay fully isolated.
        self._catalog = catalog if catalog is not None else Catalog()
        self.delta = delta
        self.resolution = resolution
        self.algorithm = algorithm
        self.engine = engine
        self.seed = seed
        self.shards = int(shards)
        self.max_workers = max_workers
        self.executor = executor.lower()
        self.submit_workers = submit_workers
        self.deadline_ms = deadline_ms
        self.max_retries = int(max_retries)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- catalog ------------------------------------------------------------

    @property
    def tables(self) -> list[str]:
        """Registered table names."""
        return self._catalog.names

    @property
    def catalog(self) -> Catalog:
        """The live :class:`~repro.catalog.Catalog` (shared, not a copy)."""
        return self._catalog

    def attach(self, name: str, target, **opts) -> "Session":
        """Bind ``name`` to *any* attachable target - the one front door.

        Dispatches on what ``target`` is (see :mod:`repro.catalog.attach`):

        * a ready :class:`DataSource` - attached as-is;
        * a :class:`Table` or ``{column: array}`` mapping - an in-memory
          source (durable under ``connect(store=...)``: the columns persist
          as segments);
        * a DataFrame-like object (``.columns`` + ``__getitem__``);
        * a ``.csv``/``.tsv``/``.parquet``/``.pq`` path - the lazy chunked
          file source for that suffix;
        * a :class:`~repro.catalog.SourceSpec` - a declarative kind + opts
          (``SourceSpec("synthetic", family="mixture", k=10)``,
          ``SourceSpec("flights", rows=50_000)``).

        ``opts`` go to the resolved source's constructor (``delimiter=``,
        ``group_columns=``, ``chunk_rows=``, ``batch_rows=``, ...).  This
        replaces the five ``register_*`` doors, which remain as deprecated
        shims throughout 1.x::

            session.attach("flights", SourceSpec("flights", rows=100_000))
            session.attach("trips", "data/trips.csv", group_columns=("city",))
        """
        self._catalog.attach(name, target, **opts)
        return self

    def register(
        self, name: str, data: DataSource | Table | Mapping[str, np.ndarray]
    ) -> "Session":
        """Register a table (Table, {column: array} dict, or any DataSource)."""
        if not isinstance(data, (DataSource, Table, Mapping)):
            raise TypeError(
                f"register needs a DataSource, Table, or mapping; got "
                f"{type(data).__name__} - use attach() for paths and specs"
            )
        self._catalog.register(name, data)
        return self

    # -- deprecated registration doors (1.x compat; use attach()) ------------

    def _register_source(self, name: str, source: DataSource) -> "Session":
        if not isinstance(source, DataSource):
            raise TypeError(
                f"register_source needs a DataSource, got {type(source).__name__}; "
                "use register() for tables and {column: array} dicts"
            )
        self._catalog.register(name, source)
        return self

    def _register_csv(
        self,
        name: str,
        path: str | os.PathLike,
        *,
        group_columns: Iterable[str] = (),
        value_columns: Iterable[str] = (),
        delimiter: str = ",",
        chunk_rows: int | None = None,
    ) -> "Session":
        kwargs = {} if chunk_rows is None else {"chunk_rows": chunk_rows}
        source = CSVSource(
            path,
            group_columns=group_columns,
            value_columns=value_columns,
            delimiter=delimiter,
            **kwargs,
        )
        source.schema()  # surface file/typing errors at registration time
        return self._register_source(name, source)

    def _register_parquet(
        self, name: str, path: str | os.PathLike, *, batch_rows: int | None = None
    ) -> "Session":
        kwargs = {} if batch_rows is None else {"batch_rows": batch_rows}
        return self._register_source(name, ParquetSource(path, **kwargs))

    def _register_flights(
        self, name: str = "flights", *, rows: int = 100_000, seed: int | None = 0
    ) -> "Session":
        from repro.data.flights import make_flights_table

        return self.register(name, make_flights_table(num_rows=rows, seed=seed))

    def _register_synthetic(
        self,
        name: str,
        family: str,
        *,
        group_column: str = "g",
        value_column: str = "value",
        **params,
    ) -> "Session":
        return self._register_source(
            name,
            SyntheticSource(
                family, group_column=group_column, value_column=value_column, **params
            ),
        )

    register_source = deprecated_entrypoint(
        _register_source,
        "Session.register_source",
        "session.attach(name, source)",
    )
    register_csv = deprecated_entrypoint(
        _register_csv,
        "Session.register_csv",
        'session.attach(name, "file.csv", group_columns=..., value_columns=...)',
    )
    register_parquet = deprecated_entrypoint(
        _register_parquet,
        "Session.register_parquet",
        'session.attach(name, "file.parquet")',
    )
    register_flights = deprecated_entrypoint(
        _register_flights,
        "Session.register_flights",
        'session.attach(name, SourceSpec("flights", rows=..., seed=...))',
    )
    register_synthetic = deprecated_entrypoint(
        _register_synthetic,
        "Session.register_synthetic",
        'session.attach(name, SourceSpec("synthetic", family=..., **params))',
    )

    def describe_table(self, name: str) -> SourceInfo:
        """Schema, source kind, and cached-build status for one table."""
        return self._catalog.describe(name)

    def invalidate(self, name: str) -> "Session":
        """Drop a table's cached builds; the next query re-reads the source.

        Use after the data behind a cacheable source changed (a CSV file
        rewritten on disk, a replayable iterator whose data moved on).
        """
        self._catalog.invalidate(name)
        return self

    # -- front doors --------------------------------------------------------

    def _builder(self, table: str) -> QueryBuilder:
        return QueryBuilder(
            _session=self,
            _table=table,
            _schema=self._catalog.schema(table) if table in self._catalog else None,
            _guarantee=GuaranteeSpec(delta=self.delta, resolution=self.resolution),
            _algorithm=self.algorithm,
            _engine=self.engine,
            _shards=self.shards,
            _max_workers=self.max_workers,
            _executor=self.executor,
            _deadline_ms=self.deadline_ms,
            _max_retries=self.max_retries,
        )

    def table(self, name: str) -> QueryBuilder:
        """Start a fluent query over a registered table.

        The builder carries the table's schema, so bad column names and type
        mismatches raise right where you type them, not deep in the planner.
        """
        if name not in self._catalog:
            raise KeyError(f"unknown table {name!r}; registered: {self.tables}")
        return self._builder(name)

    def sql(self, text: str | Query) -> QueryBuilder:
        """Start a query from SQL text (or a pre-parsed Query).

        Returns a builder seeded from the parsed query, so Session-only
        features chain onto SQL: ``session.sql("SELECT ...").top(3).run()``.
        """
        query = parse_query(text) if isinstance(text, str) else text
        spec = lower_query(query)
        return dataclasses.replace(
            self._builder(spec.table),
            _group_by=spec.group_by,
            _aggregates=spec.aggregates,
            _where=(spec.where,) if spec.where is not None else (),
            _having=spec.having,
        )

    # -- execution ----------------------------------------------------------

    def _lower(self, what: str | Query | QuerySpec | QueryBuilder) -> QuerySpec:
        if isinstance(what, QuerySpec):
            return what
        if isinstance(what, QueryBuilder):
            return what.spec()
        if isinstance(what, (str, Query)):
            return self.sql(what).spec()
        raise TypeError(f"cannot execute {type(what).__name__}")

    def execute(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        **runner_kwargs,
    ) -> Result:
        """Execute SQL text, a Query, a QuerySpec, or a builder."""
        spec = self._lower(what)
        return execute_spec(
            spec,
            self._catalog,
            seed=seed if seed is not None else self.seed,
            runner_kwargs=runner_kwargs,
        )

    def stream(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        **runner_kwargs,
    ) -> ResultStream:
        """Incremental execution: PartialUpdates as groups finalize."""
        spec = self._lower(what)
        return stream_spec(
            spec,
            self._catalog,
            seed=seed if seed is not None else self.seed,
            runner_kwargs=runner_kwargs,
        )

    def submit(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        **runner_kwargs,
    ) -> QueryFuture:
        """Execute asynchronously; returns a :class:`QueryFuture`.

        One session can serve many concurrent queries safely: the query is
        lowered and validated on the calling thread (shape errors raise
        here, not inside the future), the catalog is snapshotted so later
        ``register(...)`` calls never affect queries already in flight, and
        each worker builds its own engine and :class:`EngineRun` - all run
        state (sampling streams, accounting) is per query by construction,
        so concurrent queries cannot observe each other's samples or stats.

        The returned future supports *cooperative* cancellation: every
        submitted query carries a :class:`~repro.resilience.Deadline` token
        (also enforcing ``spec.deadline_ms`` when set), and
        :meth:`QueryFuture.cancel` fires it even after sampling started.

        ::

            futures = [session.submit(q, seed=s) for s in range(8)]
            results = [f.result() for f in futures]
        """
        spec = self._lower(what)
        if spec.table not in self._catalog:
            raise KeyError(f"unknown table {spec.table!r}; registered: {self.tables}")
        catalog = self._catalog.snapshot()
        resolved_seed = seed if seed is not None else self.seed
        # Built here (not in the worker) so cancel() can fire it while the
        # query is still queued or mid-run.  With no deadline_ms this is a
        # pure cancel token - no time limit.
        deadline = Deadline.after_ms(spec.deadline_ms)
        inner = self._submit_pool().submit(
            execute_spec,
            spec,
            catalog,
            seed=resolved_seed,
            runner_kwargs=runner_kwargs,
            deadline=deadline,
        )
        return QueryFuture(inner, deadline)

    def subscribe(
        self,
        what: str | Query | QuerySpec | QueryBuilder,
        *,
        seed=None,
        max_windows: int | None = None,
        warm_start: bool = True,
        emit_updates: bool = True,
        checkpoint: str | None = None,
        resume: bool = False,
        **runner_kwargs,
    ):
        """Run a *windowed* query continuously; returns a
        :class:`~repro.streaming.ContinuousQuery`.

        The spec must carry a window (``QueryBuilder.window(...)`` or
        ``QuerySpec(window=...)``).  The source is scanned once on a
        background thread; each closed window re-runs the full guarantee
        machinery over exactly its rows with seed ``seed + window index``,
        so a tumbling window's result is bit-identical to the one-shot
        query over the same rows.  Iterate ``.updates()`` (or the handle
        itself) for live per-group :class:`WindowUpdate` events and
        :class:`WindowResult` closes; ``.cancel()`` stops it.

        Catalog isolation matches :meth:`submit`: the catalog is
        snapshotted, so re-registering a name never swaps the stream out
        from under a live subscription.

        Args:
            seed: base seed (session default when None).
            max_windows: stop after this many closed windows (bounds
                subscriptions over unbounded sources).
            warm_start: let sliding windows reuse cached pane groupings
                from overlapping predecessors (bit-identical; population
                engines only).
            emit_updates: False skips per-group updates (results only,
                and each window runs the ``execute`` code path).
            checkpoint: id of a durable checkpoint for this subscription
                (needs a store-backed session, ``connect(store=...)``).
                The window cursor persists at every emission, so a later
                session can pick up where this one stopped.
            resume: with ``checkpoint``, continue from the persisted
                cursor: the source replays deterministically and the
                already-delivered emissions are suppressed, so the
                remaining window results are bit-identical to an
                uninterrupted run.  Without an existing checkpoint the
                subscription simply starts fresh.
        """
        from repro.streaming.continuous import ContinuousQuery

        spec = self._lower(what)
        if spec.window is None:
            raise ValueError(
                "subscribe() needs a windowed query - add "
                ".window(size=..., every=...) to the builder or set "
                "QuerySpec.window; for one-shot queries use execute()/submit()"
            )
        if spec.table not in self._catalog:
            raise KeyError(f"unknown table {spec.table!r}; registered: {self.tables}")
        resolved_seed = seed if seed is not None else self.seed
        sink = None
        resume_emissions = 0
        if checkpoint is not None:
            catalog = self._catalog
            if not hasattr(catalog, "save_checkpoint"):
                raise ValueError(
                    "checkpoint= needs a durable session - open one with "
                    "connect(store=...)"
                )
            payload = {
                "spec": spec.canonical_key(),
                "seed": resolved_seed,
                "max_windows": max_windows,
                "emit_updates": emit_updates,
            }
            if resume:
                loaded = catalog.load_checkpoint(checkpoint)
                if loaded is not None:
                    saved_payload, state = loaded
                    if saved_payload != payload:
                        raise ValueError(
                            f"checkpoint {checkpoint!r} belongs to a different "
                            "subscription (spec, seed, or knobs differ); "
                            "resume must replay the identical query, or start "
                            "fresh without resume"
                        )
                    resume_emissions = int(state.get("emissions", 0))
            else:
                # A fresh run resets the cursor so a stale checkpoint from a
                # previous life cannot leak into a later --resume.
                catalog.save_checkpoint(
                    checkpoint,
                    kind="subscription",
                    payload=payload,
                    state={"emissions": 0},
                )
            sink = lambda state: catalog.save_checkpoint(  # noqa: E731
                checkpoint, kind="subscription", payload=payload, state=state
            )
        return ContinuousQuery.start(
            spec,
            self._catalog.snapshot(),
            seed=resolved_seed,
            warm_start=warm_start,
            max_windows=max_windows,
            emit_updates=emit_updates,
            runner_kwargs=runner_kwargs,
            checkpoint=sink,
            resume_emissions=resume_emissions,
        )

    def _submit_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("Session is closed")
            if self._pool is None:
                # Deliberately independent of max_workers: that knob sizes the
                # per-query *shard* fan-out (max_workers=1 means "sequential
                # fan-out"), and must not silently serialize submit().
                workers = (
                    self.submit_workers
                    if self.submit_workers is not None
                    else self.DEFAULT_SUBMIT_WORKERS
                )
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-session"
                )
        return self._pool

    def close(self) -> None:
        """Shut down the submit pool; in-flight futures finish first."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(tables={self.tables}, delta={self.delta}, "
            f"algorithm={self.algorithm!r}, engine={self.engine!r})"
        )


def connect(
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    algorithm: str = "ifocus",
    engine: str = "needletail",
    seed: int | None = None,
    shards: int = 1,
    max_workers: int | None = None,
    executor: str = "thread",
    submit_workers: int | None = None,
    deadline_ms: float | None = None,
    max_retries: int = 2,
    catalog: Catalog | None = None,
    store: "str | os.PathLike | None" = None,
) -> Session:
    """Open a session - the Session API's entrypoint.

    Args:
        delta: default failure probability for every query.
        resolution: default Problem-2 visual resolution.
        algorithm: default AVG algorithm (ifocus/ifocusr/irefine/...).
        engine: default execution substrate (needletail/memory/noindex).
        seed: default RNG seed when ``run()``/``stream()`` omit one.
        shards: default shard count for every query (1 = unsharded,
            bit-identical to previous releases; see DESIGN_PERF.md).
        max_workers: per-query shard fan-out pool width (``None``: one
            worker per shard; ``1``: sequential fan-out).
        executor: default shard fan-out executor - ``"thread"``
            (in-process) or ``"process"`` (one worker process per shard
            over shared memory, true multicore elapsed-time scaling; the
            planner falls back to threads, with a caveat, when the
            population cannot cross the process boundary).
        submit_workers: size of the :meth:`Session.submit` pool
            (``None``: ``Session.DEFAULT_SUBMIT_WORKERS``).
        deadline_ms: default per-query time budget in milliseconds
            (``None``: unlimited).  Expiry is an *anytime* stop, not an
            error: the run finalizes remaining groups at their current
            estimates with wider intervals and a ``deadline_exceeded``
            caveat on the Result.
        max_retries: default retry budget for transient source-scan IO
            failures (each retried with exponential backoff; surfaced as a
            caveat when it happens).
        catalog: share an existing :class:`~repro.catalog.Catalog` (sources
            *and* build caches) instead of creating a fresh one - how the
            ``repro.serve`` session pool makes N sessions serve one set of
            registered tables.
        store: open (or create) a durable store at this directory and back
            the session with a :class:`~repro.storage.DurableCatalog`:
            attached sources and their index/population builds persist, and
            a later ``connect(store=...)`` in a fresh process re-opens them
            in O(1) - no rebuild, bit-identical results.  Mutually
            exclusive with ``catalog``.
    """
    if store is not None:
        if catalog is not None:
            raise ValueError(
                "connect() takes either store= (opens a DurableCatalog) or "
                "catalog= (an existing catalog), not both"
            )
        from repro.storage import DurableCatalog

        catalog = DurableCatalog(store)
    return Session(
        delta=delta,
        resolution=resolution,
        algorithm=algorithm,
        engine=engine,
        seed=seed,
        shards=shards,
        max_workers=max_workers,
        executor=executor,
        submit_workers=submit_workers,
        deadline_ms=deadline_ms,
        max_retries=max_retries,
        catalog=catalog,
    )
