"""Fluent, immutable query builder - the programmatic front door.

Every method returns a *new* builder (the receiver is never mutated), so
partially-built queries can be shared and forked freely::

    base = session.table("flights").where("year >= 1995").group_by("carrier")
    by_delay = base.agg(avg("arrival_delay")).guarantee(delta=0.05)
    result = by_delay.run(seed=42)          # unified Result
    for update in by_delay.stream():        # incremental PartialUpdates
        print(update.group.label, update.group.estimate)

``spec()`` lowers the builder to the same declarative
:class:`~repro.session.spec.QuerySpec` the SQL parser produces, so the two
front doors are interchangeable and verified equal by the parity tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.catalog.schema import Schema
from repro.query.ast import Aggregate, And, Predicate
from repro.query.parser import parse_aggregate, parse_having, parse_predicate
from repro.session.result import Result, ResultStream
from repro.session.spec import GuaranteeSpec, HavingSpec, QuerySpec
from repro.streaming.window import WindowSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.session.session import Session
    from repro.streaming.continuous import ContinuousQuery

__all__ = ["QueryBuilder", "avg", "total", "sum_", "count"]


def avg(column: str) -> Aggregate:
    """``AVG(column)`` - the paper's canonical aggregate."""
    return Aggregate("AVG", column)


def total(column: str) -> Aggregate:
    """``SUM(column)`` (Algorithm 4)."""
    return Aggregate("SUM", column)


#: Alias for :func:`total`, for callers who prefer the SQL name.
sum_ = total


def count(column: str = "*") -> Aggregate:
    """``COUNT(column)`` / ``COUNT(*)`` - exact from engine metadata."""
    return Aggregate("COUNT", column)


def _as_aggregate(agg: Aggregate | str) -> Aggregate:
    return parse_aggregate(agg) if isinstance(agg, str) else agg


def _as_predicate(pred: Predicate | str) -> Predicate:
    return parse_predicate(pred) if isinstance(pred, str) else pred


@dataclass(frozen=True)
class QueryBuilder:
    """An immutable, chainable query under construction.

    Builders are created by :meth:`Session.table` / :meth:`Session.sql`;
    they carry their session so ``run()``/``stream()`` resolve against its
    catalog and defaults, plus the table's :class:`~repro.catalog.Schema`
    so column-existence and type errors raise at the call that introduced
    them (``.group_by("typo")`` raises there, not deep in the planner).
    """

    _session: "Session"
    _table: str
    _group_by: tuple[str, ...] = ()
    _aggregates: tuple[Aggregate, ...] = ()
    _where: tuple[Predicate, ...] = ()
    _having: HavingSpec | None = None
    _guarantee: GuaranteeSpec = dataclasses.field(default_factory=GuaranteeSpec)
    _algorithm: str = "ifocus"
    _engine: str = "needletail"
    _value_bound: float | None = None
    _shards: int = 1
    _max_workers: int | None = None
    _executor: str = "thread"
    _deadline_ms: float | None = None
    _max_retries: int = 2
    _window: WindowSpec | None = None
    _schema: Schema | None = None

    def _clone(self, **changes) -> "QueryBuilder":
        return dataclasses.replace(self, **changes)

    # -- query shape --------------------------------------------------------

    def group_by(self, *columns: str) -> "QueryBuilder":
        """Append grouping attributes (multiple columns form the §6.3.4
        cross-product composite key)."""
        if not columns:
            raise ValueError("group_by() needs at least one column")
        if self._schema is not None:
            self._schema.check_columns(columns, "GROUP BY", self._table)
        return self._clone(_group_by=self._group_by + tuple(columns))

    def agg(self, *aggregates: Aggregate | str) -> "QueryBuilder":
        """Append SELECT aggregates (:func:`avg` / :func:`total` /
        :func:`count` constructors, or strings like ``"AVG(delay)"``)."""
        if not aggregates:
            raise ValueError("agg() needs at least one aggregate")
        parsed = tuple(_as_aggregate(a) for a in aggregates)
        if self._schema is not None:
            for agg in parsed:
                self._schema.check_aggregate(agg, self._table)
        return self._clone(_aggregates=self._aggregates + parsed)

    def where(self, predicate: Predicate | str) -> "QueryBuilder":
        """Restrict rows; multiple calls AND together (§6.3.3).

        Accepts the shared predicate AST or SQL text like
        ``"year >= 1995 AND dist BETWEEN 300 AND 1500"``.  The predicate is
        pushed down into the source scan (population engines) or the bitmap
        index (NEEDLETAIL), so filtering happens before materialization.
        """
        pred = _as_predicate(predicate)
        if self._schema is not None:
            self._schema.check_predicate(pred, self._table)
        return self._clone(_where=self._where + (pred,))

    def having(
        self,
        condition: str | HavingSpec | tuple[Aggregate | str, str, float],
    ) -> "QueryBuilder":
        """Post-filter groups on an *estimated* aggregate (adds a caveat).

        Accepts ``"AVG(delay) > 20"``, a ``(aggregate, op, value)`` triple,
        or a ready :class:`HavingSpec`.
        """
        if isinstance(condition, HavingSpec):
            having = condition
        elif isinstance(condition, str):
            agg, op, value = parse_having(condition)
            having = HavingSpec(agg=agg, op=op, value=value)
        else:
            agg, op, value = condition
            having = HavingSpec(agg=_as_aggregate(agg), op=op, value=float(value))
        return self._clone(_having=having)

    # -- guarantee ----------------------------------------------------------

    def guarantee(
        self, delta: float | None = None, resolution: float | None = None
    ) -> "QueryBuilder":
        """Set the failure probability and/or the Problem-2 resolution."""
        changes = {}
        if delta is not None:
            changes["delta"] = delta
        if resolution is not None:
            changes["resolution"] = resolution
        return self._clone(
            _guarantee=dataclasses.replace(self._guarantee, **changes)
        )

    def top(self, t: int, largest: bool = True) -> "QueryBuilder":
        """Only the top-t groups must be identified and ordered (§6.1.2)."""
        return self._clone(
            _guarantee=dataclasses.replace(
                self._guarantee, mode="top", top_t=t, top_largest=largest
            )
        )

    def trends(
        self, neighbors: Sequence[Sequence[int]] | None = None
    ) -> "QueryBuilder":
        """Neighbor-only ordering for trend-lines/choropleths (§6.1.1)."""
        frozen = (
            tuple(tuple(int(j) for j in adj) for adj in neighbors)
            if neighbors is not None
            else None
        )
        return self._clone(
            _guarantee=dataclasses.replace(
                self._guarantee, mode="trends", neighbors=frozen
            )
        )

    def values(self, within: float) -> "QueryBuilder":
        """Every displayed estimate within ``within`` of its true value
        (§6.2.1)."""
        return self._clone(
            _guarantee=dataclasses.replace(
                self._guarantee, mode="values", value_tolerance=within
            )
        )

    def mistakes(self, min_correct_fraction: float) -> "QueryBuilder":
        """Tolerate misordering a fraction of group pairs (§6.1.3)."""
        return self._clone(
            _guarantee=dataclasses.replace(
                self._guarantee,
                mode="mistakes",
                min_correct_fraction=min_correct_fraction,
            )
        )

    # -- execution knobs ----------------------------------------------------

    def using(self, algorithm: str) -> "QueryBuilder":
        """Which core algorithm answers AVG aggregates (default ifocus)."""
        return self._clone(_algorithm=algorithm.lower())

    def on_engine(self, engine: str) -> "QueryBuilder":
        """Which registered execution substrate serves the query."""
        return self._clone(_engine=engine.lower())

    def bound(self, c: float) -> "QueryBuilder":
        """Declare the value upper bound c instead of inferring it."""
        return self._clone(_value_bound=float(c))

    def sharded(
        self,
        shards: int,
        max_workers: int | None = None,
        executor: str | None = None,
    ) -> "QueryBuilder":
        """Partition the engine into ``shards`` parallel shards.

        ``shards=1`` (the default everywhere) is bit-identical to the
        unsharded engine; higher counts fan ``draw_block`` out to per-shard
        workers and merge deterministically (see DESIGN_PERF.md).
        ``max_workers`` bounds the fan-out pool (``None``: one per shard).
        ``executor="process"`` runs one worker *process* per shard over
        shared memory - true multicore elapsed-time scaling; the planner
        falls back to threads (with a caveat) for populations that cannot
        cross the process boundary.  ``None`` keeps the session default.
        """
        changes = {"_shards": int(shards), "_max_workers": max_workers}
        if executor is not None:
            changes["_executor"] = executor.lower()
        return self._clone(**changes)

    def deadline(self, ms: float | None) -> "QueryBuilder":
        """Give the query a time budget of ``ms`` milliseconds.

        On expiry the run does not fail: every still-active group is
        finalized at its current estimate - the incremental estimators make
        this anytime behaviour free - and the :class:`Result` carries a
        ``deadline_exceeded`` caveat plus (typically) wider intervals.
        ``None`` removes a previously set budget.
        """
        return self._clone(_deadline_ms=None if ms is None else float(ms))

    def retries(self, max_retries: int) -> "QueryBuilder":
        """Retry budget for transient source-scan failures (default 2)."""
        return self._clone(_max_retries=int(max_retries))

    def window(
        self,
        size: float,
        *,
        every: float | None = None,
        on: str | None = None,
        late: str = "drop",
        allowed_lateness: float = 0.0,
        origin: float = 0.0,
    ) -> "QueryBuilder":
        """Make the query continuous: evaluate once per window of the stream.

        ``size``/``every`` count rows (default) or units of the numeric
        ``on`` column; ``every=None`` tumbles, ``every < size`` slides.
        Time windows track completeness with a watermark (``max(t seen) -
        allowed_lateness``) and apply ``late`` (``"drop"`` / ``"recompute"``
        / ``"error"``) to rows arriving after their windows closed.  Run a
        windowed query with :meth:`subscribe` / ``Session.subscribe`` - the
        one-shot ``run()``/``stream()`` paths reject it.  ``window(None)``
        is not a thing; to un-window, build a fresh query.
        """
        if on is not None and self._schema is not None:
            self._schema.check_columns((on,), "WINDOW ON", self._table)
        return self._clone(
            _window=WindowSpec(
                size=size,
                every=every,
                on=on,
                late=late,
                allowed_lateness=allowed_lateness,
                origin=origin,
            )
        )

    # -- lowering and execution ---------------------------------------------

    def spec(self) -> QuerySpec:
        """Lower to the declarative IR (validates the query shape)."""
        if len(self._where) == 0:
            where: Predicate | None = None
        elif len(self._where) == 1:
            where = self._where[0]
        else:
            where = And(self._where)
        return QuerySpec(
            table=self._table,
            group_by=self._group_by,
            aggregates=self._aggregates,
            where=where,
            having=self._having,
            guarantee=self._guarantee,
            algorithm=self._algorithm,
            engine=self._engine,
            value_bound=self._value_bound,
            shards=self._shards,
            max_workers=self._max_workers,
            executor=self._executor,
            deadline_ms=self._deadline_ms,
            max_retries=self._max_retries,
            window=self._window,
        )

    def explain(self) -> str:
        """The planner's dispatch description for this query."""
        from repro.session.planner import describe_spec

        return describe_spec(self.spec())

    def run(self, seed=None, **runner_kwargs) -> Result:
        """Execute and return the unified :class:`Result`."""
        return self._session.execute(self.spec(), seed=seed, **runner_kwargs)

    def stream(self, seed=None, **runner_kwargs) -> ResultStream:
        """Execute incrementally: PartialUpdates as groups finalize."""
        return self._session.stream(self.spec(), seed=seed, **runner_kwargs)

    def subscribe(self, seed=None, **kwargs) -> "ContinuousQuery":
        """Run the windowed query continuously (requires :meth:`window`).

        Sugar for ``session.subscribe(builder, ...)``; see
        :meth:`Session.subscribe` for ``max_windows`` / ``warm_start`` /
        ``emit_updates``.
        """
        return self._session.subscribe(self.spec(), seed=seed, **kwargs)
