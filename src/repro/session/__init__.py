"""The Session API: one front door for every ordering-guarantee workload.

Layering (top to bottom):

* **Front doors** - :func:`connect` / :class:`Session` hand out fluent
  :class:`~repro.session.builder.QueryBuilder` objects (``session.table(...)``)
  and SQL builders (``session.sql(...)``).
* **IR** - both front doors lower to the declarative
  :class:`~repro.session.spec.QuerySpec`.
* **Planner** - :func:`~repro.session.planner.execute_spec` /
  :func:`~repro.session.planner.stream_spec` dispatch one spec across the
  core algorithms, every Section-6 extension, and any registered engine.
* **Results** - every path returns the unified
  :class:`~repro.session.result.Result`; ``.stream()`` yields
  :class:`~repro.session.result.PartialUpdate` objects for every workload.

The data side mirrors this layering in :mod:`repro.catalog`: sessions own a
:class:`~repro.catalog.Catalog` of pluggable
:class:`~repro.catalog.DataSource` objects (in-memory, chunked CSV, Parquet,
synthetic specs, iterators) with lazy, cached builds and WHERE pushdown into
the source scan.
"""

from repro.catalog import (
    Catalog,
    CSVSource,
    DataSource,
    IteratorSource,
    ParquetSource,
    Schema,
    SyntheticSource,
    TableSource,
)
from repro.session.builder import QueryBuilder, avg, count, sum_, total
from repro.session.planner import (
    EngineDef,
    describe_spec,
    engine_names,
    execute_spec,
    register_engine,
    stream_spec,
)
from repro.session.result import (
    AggregateResult,
    GroupEstimate,
    PartialUpdate,
    Result,
    ResultStream,
)
from repro.session.session import QueryFuture, Session, connect, load_csv_table
from repro.session.spec import (
    Aggregate,
    GuaranteeSpec,
    HavingSpec,
    QuerySpec,
    lower_query,
)
from repro.streaming import WindowSpec

__all__ = [
    "connect",
    "Session",
    "QueryFuture",
    "QueryBuilder",
    "avg",
    "total",
    "sum_",
    "count",
    "QuerySpec",
    "GuaranteeSpec",
    "HavingSpec",
    "Aggregate",
    "lower_query",
    "WindowSpec",
    "Result",
    "AggregateResult",
    "GroupEstimate",
    "PartialUpdate",
    "ResultStream",
    "execute_spec",
    "stream_spec",
    "describe_spec",
    "register_engine",
    "engine_names",
    "EngineDef",
    "load_csv_table",
    # data layer (re-exported from repro.catalog)
    "Catalog",
    "DataSource",
    "Schema",
    "TableSource",
    "CSVSource",
    "ParquetSource",
    "SyntheticSource",
    "IteratorSource",
]
