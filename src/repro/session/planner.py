"""The single planner every front door dispatches through.

``execute_spec`` turns a :class:`~repro.session.spec.QuerySpec` into algorithm
runs over a registered execution substrate and returns the unified
:class:`~repro.session.result.Result`; ``stream_spec`` is the incremental
form.  Dispatch rules (superset of the legacy ``execute_query`` planner):

* ``AVG(Y)`` - the core algorithms (ifocus/ifocusr/irefine/...), specialized
  by the guarantee mode: top-t (§6.1.2), trends (§6.1.1), values (§6.2.1),
  mistakes (§6.1.3);
* ``SUM(Y)`` - Algorithm 4 (group sizes are engine metadata);
* ``COUNT(*)``/``COUNT(Y)`` - exact from engine metadata;
* two AVG aggregates - the two-phase Problem 8 schedule;
* multiple GROUP BY columns - the cross-product composite key (§6.3.4);
* WHERE - lowered into the :class:`~repro.catalog.Catalog` source scan for
  population engines (rows filtered chunk-by-chunk before anything is
  materialized), or evaluated as index bitmaps restricting every group for
  the bitmap engines (§6.3.3) - the two forms are bit-identical in effect;
* HAVING - post-filter on the *estimated* aggregate (surfaced as a caveat).

Plans run against a :class:`~repro.catalog.Catalog` of named
:class:`~repro.catalog.source.DataSource` objects (legacy ``{name: Table}``
dicts are wrapped transparently): validation uses source *schemas* only, and
tables/populations materialize lazily, cached by the catalog.

Execution substrates are pluggable through :func:`register_engine`; the
built-ins are ``needletail`` (bitmap-index sampling), ``memory`` (the paper's
idealized in-memory setting), and ``noindex`` (§6.3.6: uniform whole-table
tuples only).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro.catalog.catalog import Catalog, population_from_chunks
from repro.catalog.schema import Schema
from repro.catalog.source import TableSource
from repro.core.reference import run_ifocus_reference
from repro.core.registry import RESOLUTION_VARIANTS, run_algorithm
from repro.core.types import OrderingResult
from repro.engines.base import SamplingEngine
from repro.engines.memory import InMemoryEngine
from repro.engines.sharded import ShardedEngine
from repro.extensions.counts import _run_count_known
from repro.extensions.mistakes import _run_ifocus_mistakes
from repro.extensions.multi import _run_ifocus_multi_avg, composite_group_column
from repro.extensions.noindex import _run_noindex
from repro.extensions.sums import _run_ifocus_sum
from repro.extensions.topt import _run_ifocus_topt
from repro.extensions.trends import _run_ifocus_trends
from repro.extensions.values import _run_ifocus_values
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Column, Table
from repro.query.predicates import (
    _OP_FUNCS as _COMPARE,
    predicate_bitvector,
)
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.session.result import (
    AggregateResult,
    GroupEstimate,
    PartialUpdate,
    Result,
    ResultStream,
)
from repro.session.spec import QuerySpec

__all__ = [
    "EngineDef",
    "register_engine",
    "engine_names",
    "execute_spec",
    "stream_spec",
    "describe_spec",
    "HAVING_CAVEAT",
]

HAVING_CAVEAT = (
    "HAVING filters *estimated* aggregates, not true values: a group whose "
    "true {key} lies on the other side of the threshold may be kept or "
    "dropped incorrectly (the ordering guarantee does not cover the filter)."
)

_NOINDEX_CAVEAT = (
    "no-index execution draws uniform whole-table tuples, so samples land in "
    "groups proportionally to group size; small contentious groups converge "
    "slowly (round-robin behaviour at best, §6.3.6)."
)

_TRUNCATED_CAVEAT = (
    "{key} run was truncated before every interval separated; remaining "
    "groups were finalized at their current estimates and the guarantee is "
    "void for them."
)

_MISTAKES_CAVEAT = (
    "allowing-mistakes mode: up to {pct:.0%} of pairwise orderings may be "
    "incorrect by design."
)

_PROCESS_FALLBACK_CAVEAT = (
    "executor='process' fell back to the thread fan-out: {reason}. Results "
    "are identical; only elapsed-time scaling differs."
)

_DEADLINE_CAVEAT = (
    "deadline_exceeded: the {key} run hit its deadline before every interval "
    "separated; remaining groups were finalized at their current estimates "
    "(wider intervals) and the guarantee is void for them."
)

_RESILIENCE_CAVEAT = "resilience: {event}"

_RETRY_CAVEAT = "resilience: source scan retried after {note}"


# --------------------------------------------------------------------------
# Engine registry
# --------------------------------------------------------------------------


@dataclass
class _PlanContext:
    """Resolved, validated query context shared by all engine builds.

    Validation runs against the catalog *schema* only; the row-store table
    is materialized lazily (:attr:`table`), so population engines whose
    builds go through :meth:`population` - a pruned, predicate-pushed-down
    source scan - never materialize columns the query does not touch.
    """

    spec: QuerySpec
    catalog: Catalog
    schema: Schema
    group_col: str
    engine_def: "EngineDef"

    def __post_init__(self) -> None:
        self._table: Table | None = None
        self._bitvector = None
        self._built_engines: list[SamplingEngine] = []
        #: Reasons the process executor was downgraded to threads (one per
        #: affected engine build); surfaced as Result caveats.
        self.executor_fallbacks: list[str] = []
        #: Transient scan failures that were retried; surfaced as caveats.
        self.scan_retries: list[str] = []

    @property
    def table(self) -> Table:
        """The materialized (possibly composite-key-augmented) table.

        Touching this property is what triggers full materialization; the
        bitmap-index engines need it, population engines do not.
        """
        if self._table is None:
            self._table = _prepare_table(self.spec, self.catalog.table(self.spec.table))[0]
        return self._table

    def population(self, value_column: str):
        """The grouped population with WHERE pushed into the source scan.

        Single-column group-by goes through the catalog's cached build
        (scanning only the group/value/predicate columns).  Composite keys
        need the augmented table, so they build from its scan instead -
        chunk semantics are identical, results bit-match either way.
        """
        spec = self.spec

        def build():
            if len(spec.group_by) == 1:
                return self.catalog.population(
                    spec.table,
                    self.group_col,
                    value_column,
                    predicate=spec.where,
                    value_bound=spec.value_bound,
                )
            return population_from_chunks(
                TableSource(self.table).scan(
                    columns=(self.group_col, value_column), predicate=spec.where
                ),
                self.group_col,
                value_column,
                c=spec.value_bound,
                name=spec.table,
                filtered=spec.where is not None,
            )

        # A scan that failed mid-stream cannot resume chunk-exactly, but the
        # whole build is a pure function of the source - restart it.  The
        # default decorrelated jitter keeps concurrent rebuilds of one
        # shared source from re-hitting it in lockstep.
        return call_with_retry(
            build,
            policy=RetryPolicy(max_retries=spec.max_retries),
            on_retry=lambda attempt, exc: self.scan_retries.append(
                f"a transient scan failure (attempt {attempt + 1}: {exc})"
            ),
        )

    def bitvector(self):
        """The WHERE predicate as a bitmap (NEEDLETAIL form), or None.

        Touching this materializes the table; population engines must use
        :meth:`population` (scan-level pushdown) instead of a row mask.
        """
        if self.spec.where is None:
            return None
        if self._bitvector is None:
            self._bitvector = predicate_bitvector(self.spec.where, self.table)
        return self._bitvector

    def build_engine(self, value_column: str) -> SamplingEngine:
        engine = self.engine_def.factory(self, value_column)
        if self.spec.shards > 1 and self.engine_def.shardable:
            executor = self.spec.executor
            if executor == "process":
                from repro.engines.shm import shareable

                reason = shareable(engine.population)
                if reason is not None:
                    executor = "thread"
                    self.executor_fallbacks.append(reason)
            engine = ShardedEngine(
                engine,
                self.spec.shards,
                max_workers=self.spec.max_workers,
                executor=executor,
            )
        self._built_engines.append(engine)
        return engine

    def release_engines(self) -> None:
        """Release per-query fan-out pools once the query is done.

        ``Result.engine`` keeps engines reachable for metadata, so without
        this a session retaining many sharded Results would also retain
        their idle pool threads.  Releasing is non-terminal - a later draw
        on the same engine lazily recreates its pool.
        """
        for engine in self._built_engines:
            if isinstance(engine, ShardedEngine):
                engine.release_pool()


EngineFactory = Callable[[_PlanContext, str], SamplingEngine]


@dataclass(frozen=True)
class EngineDef:
    """One registered execution substrate.

    Attributes:
        name: registry key (the value of ``QuerySpec.engine``).
        factory: builds a :class:`SamplingEngine` for one value column.
        avg_runner: optional override for how AVG aggregates are executed
            ("noindex" routes them through §6.3.6 whole-table sampling).
        supports_metadata: whether group sizes are engine metadata (required
            by SUM's Algorithm 4 and exact COUNT).
        shardable: whether ``QuerySpec.shards > 1`` wraps the factory's
            engine in a :class:`~repro.engines.sharded.ShardedEngine`;
            backends that manage their own parallelism register False.
        predicate_form: how WHERE reaches the data - ``"scan"`` (lowered
            into the source scan, rows filtered before materialization) or
            ``"bitmap"`` (evaluated as index bitmaps the engine ANDs with
            every group, §6.3.3).  Informational: shown by ``explain()``.
    """

    name: str
    factory: EngineFactory
    avg_runner: str | None = None
    supports_metadata: bool = True
    shardable: bool = True
    predicate_form: str = "scan"


_ENGINES: dict[str, EngineDef] = {}


def register_engine(
    name: str,
    factory: EngineFactory,
    *,
    avg_runner: str | None = None,
    supports_metadata: bool = True,
    shardable: bool = True,
    predicate_form: str = "scan",
    overwrite: bool = False,
) -> EngineDef:
    """Register an execution substrate under ``name``.

    The factory receives the plan context (catalog + schema with the
    resolved group column, lazily-materialized table, lazily-evaluated
    WHERE forms, the full spec) and the value column, and returns a
    :class:`~repro.engines.base.SamplingEngine`.  Third-party backends plug
    in here and become reachable via ``Session.table(...).on_engine(name)``
    with zero planner changes.
    """
    key = name.lower()
    if key in _ENGINES and not overwrite:
        raise ValueError(f"engine {name!r} is already registered")
    engine_def = EngineDef(
        name=key,
        factory=factory,
        avg_runner=avg_runner,
        supports_metadata=supports_metadata,
        shardable=shardable,
        predicate_form=predicate_form,
    )
    _ENGINES[key] = engine_def
    return engine_def


def engine_names() -> list[str]:
    """Registered engine names."""
    return sorted(_ENGINES)


def _needletail_factory(ctx: _PlanContext, value_column: str) -> SamplingEngine:
    def build() -> SamplingEngine:
        return NeedletailEngine(
            ctx.table,
            ctx.group_col,
            value_column,
            c=ctx.spec.value_bound,
            predicate=ctx.bitvector(),
        )

    # The catalog owns index persistence: a DurableCatalog answers this from
    # memory-mapped segments (bit-identical, no BitmapIndex rebuild) and
    # falls back to `build`; the in-memory Catalog just calls `build`.
    return ctx.catalog.indexed_engine(
        ctx.spec.table,
        ctx.group_col,
        value_column,
        value_bound=ctx.spec.value_bound,
        predicate=ctx.spec.where,
        group_spec=list(ctx.spec.group_by),
        builder=build,
    )


def _memory_factory(ctx: _PlanContext, value_column: str) -> SamplingEngine:
    """Population engine: WHERE is pushed into the source scan.

    The catalog scans only the group/value/predicate columns, filters each
    chunk as it streams by, and caches the resulting population per
    ``(table, group, value, predicate)`` - bit-identical to the legacy
    materialize-then-mask path (asserted by the pushdown parity tests), but
    nothing non-qualifying is ever resident.
    """
    return InMemoryEngine(ctx.population(value_column))


register_engine("needletail", _needletail_factory, predicate_form="bitmap")
register_engine("memory", _memory_factory)
# noindex stays shardable: partitioning is correct (per-group streams are
# shard-independent), but its runner draws group-sequentially, so shards
# buy layout compatibility rather than fan-out parallelism (see
# DESIGN_PERF.md).
register_engine(
    "noindex",
    _needletail_factory,
    avg_runner="noindex",
    supports_metadata=False,
    predicate_form="bitmap",
)


# --------------------------------------------------------------------------
# Planning
# --------------------------------------------------------------------------


def _prepare_table(spec: QuerySpec, table: Table) -> tuple[Table, str]:
    """Resolve (possibly composite) group-by into a single indexed column."""
    for col in spec.group_by:
        if col not in table:
            raise KeyError(f"GROUP BY column {col!r} not in table {table.name!r}")
    if len(spec.group_by) == 1:
        return table, spec.group_by[0]
    key = composite_group_column(table, list(spec.group_by))
    augmented = Table(
        table.name,
        [Column(name, table.column(name), 8) for name in table.column_names]
        + [Column("__group_key__", key, 8)],
    )
    return augmented, "__group_key__"


def _as_catalog(catalog: Catalog | Mapping[str, Table]) -> Catalog:
    """Accept either a real Catalog or a legacy ``{name: Table}`` mapping."""
    if isinstance(catalog, Catalog):
        return catalog
    return Catalog.from_tables(catalog)


def _plan(spec: QuerySpec, catalog: Catalog) -> _PlanContext:
    """Validate the spec against the catalog schema; materialize nothing.

    Every shape error - unknown table/engine, missing group/aggregate/WHERE
    columns, a non-numeric AVG/SUM target, a numeric-vs-string predicate
    literal - surfaces here, before a single row is scanned.
    """
    if spec.window is not None:
        raise ValueError(
            "spec carries a window - windowed queries run continuously, one "
            "result per window, and do not fit the one-shot execute/submit "
            "paths.  Use Session.subscribe(...) (or repro.streaming."
            "WindowRunner directly) instead."
        )
    if spec.table not in catalog:
        raise KeyError(
            f"unknown table {spec.table!r}; catalog has {sorted(catalog.names)}"
        )
    if spec.engine not in _ENGINES:
        raise KeyError(
            f"unknown engine {spec.engine!r}; registered: {engine_names()}"
        )
    schema = catalog.schema(spec.table)
    schema.check_columns(spec.group_by, "GROUP BY", spec.table)
    for agg in spec.aggregates:
        schema.check_aggregate(agg, spec.table)
    if spec.where is not None:
        schema.check_predicate(spec.where, spec.table)
    group_col = (
        spec.group_by[0] if len(spec.group_by) == 1 else "__group_key__"
    )
    engine_def = _ENGINES[spec.engine]
    if not engine_def.supports_metadata:
        bad = [a.func for a in spec.aggregates if a.func != "AVG"]
        if bad or len(spec.avg_aggregates) != 1:
            raise ValueError(
                f"engine {spec.engine!r} has no group-size metadata; it "
                "supports exactly one AVG aggregate (no SUM/COUNT/multi-AVG)"
            )
        if spec.guarantee.mode != "ordering":
            raise ValueError(
                f"engine {spec.engine!r} only supports the plain ordering "
                f"guarantee, not mode {spec.guarantee.mode!r}"
            )
    return _PlanContext(
        spec=spec,
        catalog=catalog,
        schema=schema,
        group_col=group_col,
        engine_def=engine_def,
    )


def _numeric_column(schema: Schema, preferred: str) -> str:
    """A numeric column usable as the engine's value column."""
    if preferred in schema and schema.is_numeric(preferred):
        return preferred
    for name in schema.names:
        if schema.is_numeric(name):
            return name
    raise ValueError("table has no numeric column to anchor the engine")


def _run_avg(
    spec: QuerySpec,
    ctx: _PlanContext,
    engine: SamplingEngine,
    seed,
    runner_kwargs: dict,
    on_finalize: Callable | None = None,
    deadline: Deadline | None = None,
) -> tuple[OrderingResult, dict[str, Any]]:
    """Execute the single-AVG aggregate according to the guarantee mode.

    When ``on_finalize`` is given the run goes through the reference loop so
    each group's outcome is emitted the moment it finalizes (Problem 7); the
    default path uses the batched executors via the registry.
    """
    g = spec.guarantee
    if g.mode != "ordering":
        if spec.algorithm not in ("ifocus", "ifocusr"):
            raise ValueError(
                f"guarantee mode {g.mode!r} is implemented by the IFOCUS "
                f"reference loop; algorithm {spec.algorithm!r} is not "
                "supported with it (drop .using() or use 'ifocus')"
            )
        if spec.algorithm in RESOLUTION_VARIANTS and g.resolution <= 0:
            raise ValueError(f"{spec.algorithm} requires resolution > 0")
    common = dict(delta=g.delta, resolution=g.resolution, seed=seed, **runner_kwargs)
    if deadline is not None:
        common["deadline"] = deadline
    if g.mode == "top":
        topt = _run_ifocus_topt(
            engine, g.top_t, largest=g.top_largest, on_finalize=on_finalize, **common
        )
        return topt.result, {
            "t": topt.t,
            "largest": topt.largest,
            "top_labels": topt.top_names,
        }
    if g.mode == "trends":
        neighbors = (
            [list(adj) for adj in g.neighbors] if g.neighbors is not None else None
        )
        raw = _run_ifocus_trends(
            engine, neighbors=neighbors, on_finalize=on_finalize, **common
        )
        return raw, {}
    if g.mode == "values":
        raw = _run_ifocus_values(
            engine, d=g.value_tolerance, on_finalize=on_finalize, **common
        )
        return raw, {"value_tolerance": g.value_tolerance}
    if g.mode == "mistakes":
        raw = _run_ifocus_mistakes(
            engine,
            min_correct_fraction=g.min_correct_fraction,
            on_finalize=on_finalize,
            **common,
        )
        return raw, {}
    # mode == "ordering"
    if ctx.engine_def.avg_runner == "noindex":
        raw = _run_noindex(
            engine,
            delta=g.delta,
            resolution=g.resolution,
            seed=seed,
            deadline=deadline,
            **runner_kwargs,
        )
        return raw, {}
    if on_finalize is not None:
        if spec.algorithm in RESOLUTION_VARIANTS and g.resolution <= 0:
            raise ValueError(f"{spec.algorithm} requires resolution > 0")
        raw = run_ifocus_reference(
            engine,
            on_finalize=on_finalize,
            algorithm_name="ifocus-partial",
            **common,
        )
        return raw, {}
    raw = run_algorithm(spec.algorithm, engine, **common)
    return raw, {}


def _execute_planned(
    spec: QuerySpec,
    ctx: _PlanContext,
    seed,
    runner_kwargs: dict,
    deadline: Deadline | None = None,
) -> Result:
    results: dict[str, tuple[OrderingResult, dict[str, Any]]] = {}
    engine: SamplingEngine | None = None
    avgs = spec.avg_aggregates
    charged = 0  # tuples actually sampled; shared multi-AVG run counted once

    if len(avgs) == 2:
        if spec.where is not None:
            raise ValueError("two-aggregate queries do not support WHERE yet")
        if spec.engine != "needletail":
            raise ValueError(
                "two-aggregate queries run on the bitmap-index substrate; "
                f"engine {spec.engine!r} is not supported with them yet"
            )
        if spec.guarantee.resolution > 0:
            raise ValueError("two-aggregate queries do not support resolution yet")
        if spec.shards > 1:
            raise ValueError(
                "two-aggregate queries drive their own bitmap-index schedule "
                "and do not support sharding yet (drop .sharded())"
            )
        multi = _run_ifocus_multi_avg(
            ctx.table,
            ctx.group_col,
            avgs[0].column,
            avgs[1].column,
            delta=spec.guarantee.delta,
            c_y=spec.value_bound,
            c_z=spec.value_bound,
            seed=seed,
            **runner_kwargs,
        )
        results[spec.agg_key(avgs[0])] = (multi.y, {})
        results[spec.agg_key(avgs[1])] = (multi.z, {})
        charged += multi.total_samples
    elif len(avgs) == 1:
        engine = ctx.build_engine(avgs[0].column)
        raw, meta = _run_avg(spec, ctx, engine, seed, runner_kwargs, deadline=deadline)
        results[spec.agg_key(avgs[0])] = (raw, meta)
        charged += raw.total_samples

    for agg in spec.aggregates:
        if agg.func == "SUM":
            sum_engine = ctx.build_engine(agg.column)
            raw = _run_ifocus_sum(
                sum_engine, delta=spec.guarantee.delta, seed=seed, deadline=deadline
            )
            results[spec.agg_key(agg)] = (raw, {})
            charged += raw.total_samples
            engine = engine or sum_engine
        elif agg.func == "COUNT":
            count_col = spec.group_by[0] if agg.column == "*" else agg.column
            # COUNT needs any engine over the same groups; sizes are metadata.
            count_engine = engine or ctx.build_engine(
                avgs[0].column if avgs else _numeric_column(ctx.schema, count_col)
            )
            results[spec.agg_key(agg)] = (_run_count_known(count_engine), {})
            engine = engine or count_engine

    if not results:
        raise ValueError("query produced no executable aggregate")
    # Pure multi-AVG queries leave engine None: the two-phase schedule drives
    # its own bitmap index, there is no per-aggregate engine to expose.
    return _assemble_result(spec, ctx, results, engine, charged)


def _assemble_result(
    spec: QuerySpec,
    ctx: _PlanContext,
    results: dict[str, tuple[OrderingResult, dict[str, Any]]],
    engine: SamplingEngine | None,
    total_samples: int,
) -> Result:
    aggregates = {
        key: AggregateResult.from_ordering(key, raw, meta)
        for key, (raw, meta) in results.items()
    }
    labels = next(iter(aggregates.values())).labels

    caveats: list[str] = []
    dropped: list[str] = []
    if spec.having is not None:
        key = spec.agg_key(spec.having.agg)
        if key not in aggregates:
            raise ValueError(f"HAVING references {key}, which is not in SELECT")
        keep = _COMPARE[spec.having.op](aggregates[key].raw.estimates, spec.having.value)
        dropped = [lbl for lbl, ok in zip(labels, keep) if not ok]
        caveats.append(HAVING_CAVEAT.format(key=key))
    if ctx.engine_def.avg_runner == "noindex":
        caveats.append(_NOINDEX_CAVEAT)
    # dict.fromkeys: one caveat per distinct reason, even when several
    # engine builds (multi-aggregate queries) fell back the same way.
    for reason in dict.fromkeys(ctx.executor_fallbacks):
        caveats.append(_PROCESS_FALLBACK_CAVEAT.format(reason=reason))
    if spec.guarantee.mode == "mistakes":
        caveats.append(
            _MISTAKES_CAVEAT.format(pct=1.0 - spec.guarantee.min_correct_fraction)
        )
    for key, agg in aggregates.items():
        if agg.raw.params.get("truncated"):
            caveats.append(_TRUNCATED_CAVEAT.format(key=key))
        if agg.raw.params.get("deadline_exceeded"):
            caveats.append(_DEADLINE_CAVEAT.format(key=key))
    for note in dict.fromkeys(ctx.scan_retries):
        caveats.append(_RETRY_CAVEAT.format(note=note))
    events: list[str] = []
    for built in ctx._built_engines:
        if isinstance(built, ShardedEngine):
            events.extend(built.resilience_events())
    # Catalog-level self-healing (storage quarantines, write degradation)
    # rides the same caveat surface as worker recovery.
    events.extend(ctx.catalog.drain_resilience_events())
    for event in dict.fromkeys(events):
        caveats.append(_RESILIENCE_CAVEAT.format(event=event))

    return Result(
        spec=spec,
        labels=list(labels),
        aggregates=aggregates,
        guarantee=spec.guarantee,
        caveats=caveats,
        dropped_by_having=dropped,
        engine=engine,
        total_samples=total_samples,
    )


def execute_spec(
    spec: QuerySpec,
    catalog: Catalog | Mapping[str, Table],
    *,
    seed=None,
    runner_kwargs: dict | None = None,
    deadline: Deadline | None = None,
) -> Result:
    """Plan and execute a spec against a catalog.

    Args:
        spec: the lowered query.
        catalog: a :class:`~repro.catalog.Catalog` of named sources, or a
            legacy ``{table name: Table}`` mapping (wrapped on the fly).
        seed: RNG seed for the sampling streams.
        runner_kwargs: extra knobs forwarded to the AVG runner
            (``trace_every``, ``max_rounds``, ``batch`` for noindex, ...).
        deadline: optional pre-built :class:`~repro.resilience.Deadline`
            (a cancel token shared with :meth:`Session.submit`); when None,
            one is derived from ``spec.deadline_ms``.  IFOCUS-family runs
            treat expiry as an *anytime* stop: current estimates come back
            with wider intervals and a ``deadline_exceeded`` caveat.
    """
    if deadline is None and spec.deadline_ms is not None:
        deadline = Deadline.after_ms(spec.deadline_ms)
    ctx = _plan(spec, _as_catalog(catalog))
    try:
        return _execute_planned(
            spec, ctx, seed, dict(runner_kwargs or {}), deadline=deadline
        )
    finally:
        ctx.release_engines()


# --------------------------------------------------------------------------
# Streaming
# --------------------------------------------------------------------------


def _live_streamable(spec: QuerySpec, ctx: _PlanContext) -> bool:
    """Whether the spec can emit finalizations while sampling continues."""
    if len(spec.aggregates) != 1 or spec.aggregates[0].func != "AVG":
        return False
    if ctx.engine_def.avg_runner is not None:
        return False
    if spec.guarantee.mode != "ordering":
        return True  # all guarantee variants run through the reference loop
    return spec.algorithm in ("ifocus", "ifocusr")


def _stream_live(
    spec: QuerySpec,
    ctx: _PlanContext,
    seed,
    runner_kwargs: dict,
    deadline: Deadline | None = None,
) -> ResultStream:
    agg = spec.avg_aggregates[0]
    key = spec.agg_key(agg)
    engine = ctx.build_engine(agg.column)
    k = engine.k
    out: "queue.Queue[object]" = queue.Queue()
    emitted = {"n": 0}

    def on_finalize(gid: int, outcome) -> None:
        emitted["n"] += 1
        out.put(
            PartialUpdate(
                aggregate=key,
                group=GroupEstimate.from_outcome(outcome),
                emitted_so_far=emitted["n"],
                total_groups=k,
                live=True,
            )
        )

    def worker() -> None:
        try:
            out.put(
                _run_avg(
                    spec, ctx, engine, seed, runner_kwargs, on_finalize, deadline
                )
            )
        except BaseException as exc:
            out.put(exc)
        finally:
            # Sampling is over on every exit path (success, error, abandoned
            # consumer), so the fan-out pool can release its threads here.
            ctx.release_engines()

    thread = threading.Thread(target=worker, daemon=True, name="session-stream")

    def updates() -> Iterator[PartialUpdate]:
        thread.start()
        while True:
            item = out.get()
            if isinstance(item, BaseException):
                raise item
            if isinstance(item, tuple):
                raw, meta = item
                break
            yield item
        thread.join()
        stream.result = _assemble_result(
            spec, ctx, {key: (raw, meta)}, engine, raw.total_samples
        )

    stream = ResultStream(updates())
    return stream


def _replay_updates(result: Result) -> list[PartialUpdate]:
    """Post-hoc PartialUpdates in true finalization order, per aggregate.

    Counters are global across the whole stream (not per aggregate) so that
    ``PartialUpdate.done`` is True only on the very last update - the
    stop-at-done consumer pattern must not drop later aggregates' groups.
    """
    pending: list[tuple[str, Any]] = []
    for key, agg in result.aggregates.items():
        order = [int(i) for i in agg.raw.inactive_order]
        if len(order) != len(agg.groups):  # defensive: fall back to input order
            order = list(range(len(agg.groups)))
        pending.extend((key, agg.groups[gid]) for gid in order)
    return [
        PartialUpdate(
            aggregate=key,
            group=group,
            emitted_so_far=n,
            total_groups=len(pending),
            live=False,
        )
        for n, (key, group) in enumerate(pending, start=1)
    ]


def stream_spec(
    spec: QuerySpec,
    catalog: Catalog | Mapping[str, Table],
    *,
    seed=None,
    runner_kwargs: dict | None = None,
    deadline: Deadline | None = None,
) -> ResultStream:
    """Incremental execution: yields one PartialUpdate per finalized group.

    Every workload streams.  Single-AVG queries (all guarantee modes) emit
    *live*: each group surfaces the moment it leaves the active set, while
    contentious groups keep sampling on a background thread.  Other workloads
    (SUM, COUNT, multi-AVG, no-index, non-IFOCUS algorithms) compute the full
    answer first and then replay it in true finalization order
    (``PartialUpdate.live`` is False).  In both cases ``stream.result`` holds
    the unified :class:`Result` once the stream is exhausted.
    """
    if deadline is None and spec.deadline_ms is not None:
        deadline = Deadline.after_ms(spec.deadline_ms)
    ctx = _plan(spec, _as_catalog(catalog))
    kwargs = dict(runner_kwargs or {})
    if _live_streamable(spec, ctx):
        return _stream_live(spec, ctx, seed, kwargs, deadline)
    try:
        result = _execute_planned(spec, ctx, seed, kwargs, deadline=deadline)
    finally:
        ctx.release_engines()
    stream = ResultStream(iter(_replay_updates(result)))
    stream.result = result
    return stream


# --------------------------------------------------------------------------
# Explain
# --------------------------------------------------------------------------


def describe_spec(spec: QuerySpec) -> str:
    """A short textual plan: how the planner will dispatch this spec."""
    lines = [f"table: {spec.table}  group by: {', '.join(spec.group_by)}"]
    if spec.window is not None:
        w = spec.window
        shape = "sliding" if w.sliding else "tumbling"
        domain = f"on {w.on}" if w.by_time else "by row count"
        lines.append(
            f"window: {shape} size={w.size:g} every={w.stride:g} {domain} "
            f"(late={w.late}); continuous - run via Session.subscribe(...)"
        )
    lines.append(f"scan columns: {', '.join(spec.scan_columns())}")
    if spec.where is not None:
        form = _ENGINES.get(spec.engine)
        how = (
            "bitmap-index pushdown (§6.3.3)"
            if form is not None and form.predicate_form == "bitmap"
            else "pushed into the source scan"
        )
        lines.append(f"where: {spec.where!r}  [{how}]")
    avgs = spec.avg_aggregates
    for agg in spec.aggregates:
        key = spec.agg_key(agg)
        if agg.func == "AVG" and len(avgs) == 2:
            lines.append(f"{key}: two-phase multi-AVG schedule (Problem 8)")
        elif agg.func == "AVG":
            mode = spec.guarantee.mode
            runner = (
                "noindex whole-table sampling"
                if _ENGINES[spec.engine].avg_runner == "noindex"
                else spec.algorithm
            )
            lines.append(f"{key}: {runner} (guarantee mode: {mode})")
        elif agg.func == "SUM":
            lines.append(f"{key}: IFOCUS-Sum, known group sizes (Algorithm 4)")
        else:
            lines.append(f"{key}: exact from engine metadata")
    if spec.having is not None:
        h = spec.having
        lines.append(
            f"having: {spec.agg_key(h.agg)} {h.op} {h.value:g} (filters estimates)"
        )
    engine_line = f"engine: {spec.engine}"
    if spec.shards > 1 and _ENGINES[spec.engine].shardable:
        workers = spec.max_workers if spec.max_workers is not None else spec.shards
        engine_line += f" (sharded x{spec.shards}, {workers} workers"
        if spec.executor != "thread":
            engine_line += f", {spec.executor} executor"
        engine_line += ")"
    lines.append(f"{engine_line}   guarantee: {spec.guarantee.describe()}")
    if (
        spec.shards > 1
        and spec.executor == "process"
        and _ENGINES[spec.engine].shardable
    ):
        lines.append(
            "executor: one worker process per shard over shared memory; "
            "falls back to the thread fan-out (with a caveat on the Result) "
            "when the population cannot cross the process boundary "
            "(e.g. rejection-sampled virtual groups)"
        )
    return "\n".join(lines)
