"""Figure 6 reproductions: incorrect pairs, group-count sweep, difficulty.

* Fig 6(a): number of incorrectly ordered pairs in the *current* estimates
  as sampling proceeds (same traces as Fig 5(c)) - small but nonzero until
  late, which is why partial results carry small risk.
* Fig 6(b): percentage sampled vs number of groups k in {5, 10, 20, 50}.
* Fig 6(c): the difficulty proxy c^2/eta^2 vs k (box-plot summary) -
  the generation process makes more groups intrinsically harder.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import algorithm_names
from repro.data.synthetic import make_mixture_dataset
from repro.experiments.config import Scale, current_scale
from repro.experiments.fig5 import _interp_series, collect_traces
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    mean_percentage_sampled,
    run_trials,
    should_materialize,
)
from repro.viz.properties import incorrect_pairs

__all__ = [
    "fig6a_incorrect_pairs",
    "fig6b_percentage_vs_groups",
    "fig6c_difficulty_vs_groups",
]


def fig6a_incorrect_pairs(scale: Scale | None = None) -> FigureResult:
    """Average number of incorrectly ordered pairs vs samples taken."""
    scale = scale or current_scale()
    traces = collect_traces(scale, scale.seed + 60)  # same seeds as fig5c
    threshold = 0.3 * scale.default_size
    hard = [(p, r) for p, r in traces if r.total_samples >= threshold]

    def wrong_pairs(population, snap):
        return incorrect_pairs(snap.estimates, population.true_means())

    grid, all_series = _interp_series(traces, wrong_pairs)
    hard_series = _interp_series(hard, wrong_pairs)[1] if hard else None
    rows = []
    for i, g in enumerate(grid):
        rows.append(
            [
                int(g),
                float(all_series[i]),
                float(hard_series[i]) if hard_series is not None else float("nan"),
            ]
        )
    return FigureResult(
        figure="fig6a",
        title="Incorrectly ordered pairs vs samples taken",
        headers=["samples", "incorrect_all", "incorrect_hard"],
        rows=rows,
        notes=["counts approach 0 well before termination, enabling partial results"],
    )


def fig6b_percentage_vs_groups(scale: Scale | None = None) -> FigureResult:
    """Percentage sampled vs number of groups (1M records per group)."""
    scale = scale or current_scale()
    algorithms = algorithm_names()
    rows = []
    for k in scale.group_counts:
        def factory(seed: int, k=k):
            total = k * scale.groups_size_each
            return make_mixture_dataset(
                k=k, total_size=total, seed=seed,
                materialize=should_materialize(total),
            )

        row: list[object] = [k]
        for alg in algorithms:
            results = run_trials(
                factory,
                alg,
                scale.trials,
                delta=scale.delta,
                resolution=scale.resolution,
                seed=scale.seed + 70,
            )
            row.append(mean_percentage_sampled(results))
        rows.append(row)
    return FigureResult(
        figure="fig6b",
        title="Percentage sampled vs number of groups",
        headers=["k"] + algorithms,
        rows=rows,
        notes=[f"{scale.groups_size_each} records per group"],
    )


def _difficulty_summary(difficulties: list[float]) -> list[float]:
    arr = np.array(difficulties)
    return [float(np.percentile(arr, q)) for q in (0, 25, 50, 75, 100)]


def fig6c_difficulty_vs_groups(scale: Scale | None = None) -> FigureResult:
    """c^2/eta^2 distribution vs number of groups (box-plot summary rows)."""
    scale = scale or current_scale()
    rows = []
    trials = max(scale.trials * 4, 20)  # difficulty needs no sampling - cheap
    for k in scale.group_counts:
        diffs = []
        for t in range(trials):
            population = make_mixture_dataset(
                k=k, total_size=k * 100, seed=scale.seed + 80 + t
            )
            diffs.append(population.difficulty())
        rows.append([k] + _difficulty_summary(diffs))
    return FigureResult(
        figure="fig6c",
        title="Difficulty c^2/eta^2 vs number of groups",
        headers=["k", "min", "q1", "median", "q3", "max"],
        rows=rows,
        notes=["more random means pack closer together: difficulty grows with k"],
    )
