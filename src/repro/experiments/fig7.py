"""Figure 7 reproductions: skew and standard-deviation sweeps.

* Fig 7(a): percentage sampled vs the fraction of the dataset held by the
  first group (remaining groups share the rest equally).
* Fig 7(b): percentage sampled by IFOCUS-R vs delta, one series per
  truncated-normal standard deviation in {2, 5, 8, 10}.
* Fig 7(c): difficulty c^2/eta^2 vs standard deviation (box-plot summary).
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import algorithm_names
from repro.data.synthetic import make_skewed_mixture_dataset, make_truncnorm_dataset
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    mean_percentage_sampled,
    run_trials,
    should_materialize,
)

__all__ = [
    "fig7a_percentage_vs_skew",
    "fig7b_percentage_vs_std",
    "fig7c_difficulty_vs_std",
]


def fig7a_percentage_vs_skew(scale: Scale | None = None) -> FigureResult:
    """Percentage sampled vs skew (first-group share of the dataset)."""
    scale = scale or current_scale()
    algorithms = algorithm_names()
    rows = []
    for fraction in scale.skew_fractions:
        def factory(seed: int, fraction=fraction):
            return make_skewed_mixture_dataset(
                k=scale.k,
                total_size=scale.default_size,
                first_fraction=fraction,
                seed=seed,
                materialize=should_materialize(scale.default_size),
            )

        row: list[object] = [fraction]
        for alg in algorithms:
            results = run_trials(
                factory,
                alg,
                scale.trials,
                delta=scale.delta,
                resolution=scale.resolution,
                seed=scale.seed + 90,
            )
            row.append(mean_percentage_sampled(results))
        rows.append(row)
    return FigureResult(
        figure="fig7a",
        title="Percentage sampled vs proportion of dataset in first group",
        headers=["first_fraction"] + algorithms,
        rows=rows,
        notes=["IFOCUS keeps its relative advantage under heavy skew"],
    )


def fig7b_percentage_vs_std(scale: Scale | None = None) -> FigureResult:
    """IFOCUS-R percentage sampled vs delta, per truncnorm std series."""
    scale = scale or current_scale()
    rows = []
    series: dict[float, dict[float, float]] = {}
    for std in scale.stds:
        series[std] = {}
        for delta in scale.deltas:
            def factory(seed: int, std=std):
                return make_truncnorm_dataset(
                    k=scale.k, total_size=scale.default_size, std=std, seed=seed,
                    materialize=should_materialize(scale.default_size),
                )

            results = run_trials(
                factory,
                "ifocusr",
                scale.trials,
                delta=delta,
                resolution=scale.resolution,
                seed=scale.seed + 100,
            )
            series[std][delta] = mean_percentage_sampled(results)
    for delta in scale.deltas:
        rows.append([delta] + [series[std][delta] for std in scale.stds])
    return FigureResult(
        figure="fig7b",
        title="IFOCUS-R percentage sampled vs delta, by truncnorm std",
        headers=["delta"] + [f"std={s:g}" for s in scale.stds],
        rows=rows,
        notes=["larger std samples slightly more at every delta"],
        raw={"series": series},
    )


def fig7c_difficulty_vs_std(scale: Scale | None = None) -> FigureResult:
    """Difficulty c^2/eta^2 vs truncnorm standard deviation."""
    scale = scale or current_scale()
    rows = []
    trials = max(scale.trials * 4, 20)
    for std in scale.stds:
        diffs = []
        for t in range(trials):
            population = make_truncnorm_dataset(
                k=scale.k, total_size=scale.k * 100, std=std, seed=scale.seed + 110 + t
            )
            diffs.append(population.difficulty())
        arr = np.array(diffs)
        rows.append([std] + [float(np.percentile(arr, q)) for q in (0, 25, 50, 75, 100)])
    return FigureResult(
        figure="fig7c",
        title="Difficulty c^2/eta^2 vs truncnorm std",
        headers=["std", "min", "q1", "median", "q3", "max"],
        rows=rows,
        notes=["wider groups push truncated means together: difficulty rises with std"],
    )
