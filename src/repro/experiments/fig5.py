"""Figure 5 reproductions: heuristic shrinking and convergence.

* Fig 5(a): accuracy vs heuristic factor 2^0..2^6 on the mixture workload -
  shrinking the intervals faster than the theory allows immediately costs
  accuracy.
* Fig 5(b): the same on the hard two-point instance with factors 1.0-1.2 -
  even sampling 1% less breaks correctness on hard inputs.
* Fig 5(c): number of active groups vs samples taken, averaged over all
  datasets ("0" series) and over the hard datasets that needed at least 30%
  of the data ("3M" series in the paper's 10M setting).
"""

from __future__ import annotations

import numpy as np

from repro.core.ifocus import _run_ifocus as run_ifocus
from repro.data.synthetic import make_hard_dataset, make_mixture_dataset
from repro.engines.memory import InMemoryEngine
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import should_materialize
from repro.viz.properties import check_ordering

__all__ = [
    "fig5a_heuristic_accuracy",
    "fig5b_heuristic_accuracy_hard",
    "fig5c_active_groups_convergence",
    "collect_traces",
]


def _accuracy_sweep(
    factories,
    factors,
    scale: Scale,
    seed_base: int,
) -> list[list[object]]:
    rows = []
    for factor in factors:
        correct = []
        samples = []
        for t in range(scale.trials):
            seed = seed_base + t
            population = factories(seed)
            engine = InMemoryEngine(population)
            result = run_ifocus(
                engine,
                delta=scale.delta,
                resolution=scale.resolution,
                heuristic_factor=factor,
                seed=seed,
            )
            ok = check_ordering(
                result.estimates, population.true_means(), resolution=scale.resolution
            )
            correct.append(ok)
            samples.append(result.total_samples)
        rows.append([factor, float(np.mean(correct)), float(np.mean(samples))])
    return rows


def fig5a_heuristic_accuracy(scale: Scale | None = None) -> FigureResult:
    """Accuracy vs heuristic factor (mixture workload, IFOCUS-R)."""
    scale = scale or current_scale()

    def factory(seed: int):
        return make_mixture_dataset(
            k=scale.k, total_size=scale.default_size, seed=seed,
            materialize=should_materialize(scale.default_size),
        )

    rows = _accuracy_sweep(factory, scale.heuristic_factors, scale, scale.seed + 40)
    return FigureResult(
        figure="fig5a",
        title="Accuracy vs heuristic shrinking factor (mixture)",
        headers=["factor", "accuracy", "mean_samples"],
        rows=rows,
        notes=["factor 1 = the sound algorithm; accuracy must be 1.0 there"],
    )


def fig5b_heuristic_accuracy_hard(scale: Scale | None = None) -> FigureResult:
    """Accuracy vs heuristic factor on the hard instance (gamma = eta)."""
    scale = scale or current_scale()
    group_size = max(scale.default_size // scale.k, 1)

    def factory(seed: int):
        return make_hard_dataset(
            k=scale.k, gamma=scale.hard_gamma, group_size=group_size, seed=seed,
            materialize=should_materialize(group_size * scale.k),
        )

    rows = _accuracy_sweep(factory, scale.hard_factors, scale, scale.seed + 50)
    notes = [
        "paper (gamma=0.1, 1M rows/group): accuracy < 95% already at factor "
        "1.01 and < 70% at 1.2",
    ]
    if scale.name != "paper":
        notes.append(
            "at this reduced scale the hard groups exhaust (exact answers) "
            "before mild shrinking can bite, so the factor range is extended "
            "until the guarantee visibly breaks"
        )
    return FigureResult(
        figure="fig5b",
        title=f"Accuracy vs heuristic factor (hard, gamma={scale.hard_gamma})",
        headers=["factor", "accuracy", "mean_samples"],
        rows=rows,
        notes=notes,
    )


def collect_traces(scale: Scale, seed_base: int, trials: int | None = None):
    """IFOCUS traces over fresh mixture datasets (shared by 5(c)/6(a))."""
    trials = trials or scale.trials
    group_size = max(scale.default_size // scale.k, 1)
    trace_every = max(group_size // 256, 1)
    traces = []
    for t in range(trials):
        seed = seed_base + t
        population = make_mixture_dataset(
            k=scale.k, total_size=scale.default_size, seed=seed,
            materialize=should_materialize(scale.default_size),
        )
        engine = InMemoryEngine(population)
        result = run_ifocus(
            engine, delta=scale.delta, seed=seed, trace_every=trace_every
        )
        traces.append((population, result))
    return traces


def _interp_series(traces, value_fn, grid_points: int = 40):
    """Average a per-snapshot quantity over trials on a common sample grid."""
    max_samples = max(
        int(res.trace.samples_series()[-1]) for _, res in traces if len(res.trace)
    )
    grid = np.linspace(0, max_samples, grid_points)
    stacked = []
    for population, res in traces:
        xs = res.trace.samples_series().astype(np.float64)
        ys = np.array([value_fn(population, snap) for snap in res.trace], dtype=np.float64)
        if xs.size == 0:
            continue
        stacked.append(np.interp(grid, xs, ys, left=ys[0], right=ys[-1]))
    return grid, np.mean(np.stack(stacked), axis=0)


def fig5c_active_groups_convergence(scale: Scale | None = None) -> FigureResult:
    """Average active-group count vs cumulative samples (0 and hard series)."""
    scale = scale or current_scale()
    traces = collect_traces(scale, scale.seed + 60)
    threshold = 0.3 * scale.default_size  # the paper's "3M of 10M" series
    hard = [(p, r) for p, r in traces if r.total_samples >= threshold]

    def active_count(population, snap):
        return len(snap.active)

    grid, all_series = _interp_series(traces, active_count)
    rows = []
    if hard:
        _, hard_series = _interp_series(hard, active_count)
    else:
        hard_series = None
    for i, g in enumerate(grid):
        row = [int(g), float(all_series[i])]
        row.append(float(hard_series[i]) if hard_series is not None else float("nan"))
        rows.append(row)
    notes = [
        f"'all' averages {len(traces)} datasets; 'hard' the {len(hard)} needing "
        f">= {int(threshold)} samples (paper's 3M-of-10M series)",
    ]
    return FigureResult(
        figure="fig5c",
        title="Active groups vs samples taken",
        headers=["samples", "active_all", "active_hard"],
        rows=rows,
        notes=notes,
        raw={"traces": len(traces), "hard": len(hard)},
    )
