"""Table 1 reproduction: an IFOCUS execution trace.

The paper's Table 1 walks four groups through the rounds, showing each
group's confidence interval and whether it is still active, plus the
resulting cost decomposition C = sum over phases of (#rounds x #active).
This module re-creates that trace on a four-group instance shaped like the
example (intervals around 75/35/25/55 on [0, 100]).
"""

from __future__ import annotations

import numpy as np

from repro.core.ifocus import _run_ifocus as run_ifocus
from repro.data.population import MaterializedGroup, Population
from repro.engines.memory import InMemoryEngine
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult

__all__ = ["table1_execution_trace"]


def _example_population(seed: int) -> Population:
    """Four groups echoing the paper's Table 1 example."""
    rng = np.random.default_rng(seed)
    means = [75.0, 35.0, 25.0, 55.0]
    groups = [
        MaterializedGroup(f"group{i+1}", np.clip(rng.normal(mu, 12.0, 30_000), 0, 100))
        for i, mu in enumerate(means)
    ]
    return Population(groups=groups, c=100.0)


def table1_execution_trace(scale: Scale | None = None) -> FigureResult:
    """Trace rows: per-round confidence intervals and active flags."""
    scale = scale or current_scale()
    population = _example_population(scale.seed + 1)
    engine = InMemoryEngine(population)
    result = run_ifocus(engine, delta=scale.delta, seed=scale.seed + 1, trace_every=1)
    trace = result.trace
    assert trace is not None

    # Show the first rounds, every round where the active set changes, and
    # the final round - the same rows the paper's table highlights.
    interesting: list[int] = []
    prev_active: tuple[int, ...] | None = None
    for idx, snap in enumerate(trace):
        if idx < 2 or snap.active != prev_active or idx == len(trace) - 1:
            interesting.append(idx)
        prev_active = snap.active
    rows = []
    snapshots = list(trace)
    for idx in interesting:
        snap = snapshots[idx]
        row: list[object] = [snap.round_index]
        for gid in range(population.k):
            lo = snap.estimates[gid] - snap.epsilon
            hi = snap.estimates[gid] + snap.epsilon
            flag = "A" if gid in snap.active else "I"
            row.append(f"[{lo:6.1f},{hi:6.1f}] {flag}")
        rows.append(row)

    # Cost decomposition like the paper's C = 21x4 + (58-21)x3 + ...
    exit_rounds = sorted(set(g.finalized_round for g in result.groups))
    active = population.k
    prev = 0
    pieces = []
    for r in exit_rounds:
        leaving = sum(1 for g in result.groups if g.finalized_round == r)
        pieces.append(f"({r}-{prev})x{active}")
        active -= leaving
        prev = r
    cost = " + ".join(pieces)
    notes = [
        f"total cost C = {result.total_samples} = {cost}",
        f"true means: {np.round(population.true_means(), 1).tolist()}",
    ]
    return FigureResult(
        figure="table1",
        title="IFOCUS execution trace (4 groups)",
        headers=["round"] + [g.name for g in population.groups],
        rows=rows,
        notes=notes,
        raw={"result": result},
    )
