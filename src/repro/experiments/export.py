"""Export reproduced figures to CSV/JSON for external plotting.

The text tables are the primary artifact, but downstream users typically
re-plot with their own tooling; these helpers serialize any
:class:`~repro.experiments.report.FigureResult` losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.report import FigureResult

__all__ = ["figure_to_csv", "figure_to_json", "write_figure"]


def figure_to_csv(fig: FigureResult) -> str:
    """CSV text: header row then data rows (notes are not representable)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(fig.headers)
    for row in fig.rows:
        writer.writerow(row)
    return buffer.getvalue()


def figure_to_json(fig: FigureResult) -> str:
    """JSON object with figure id, title, headers, rows and notes."""
    payload = {
        "figure": fig.figure,
        "title": fig.title,
        "headers": fig.headers,
        "rows": [[_jsonable(v) for v in row] for row in fig.rows],
        "notes": fig.notes,
    }
    return json.dumps(payload, indent=2)


def _jsonable(value):
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


def write_figure(fig: FigureResult, directory: str | Path, formats: tuple[str, ...] = ("csv", "json")) -> list[Path]:
    """Write the figure under ``directory`` as ``<figure>.<ext>`` files.

    Returns the written paths.  Unknown formats raise ValueError.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for fmt in formats:
        if fmt == "csv":
            path = directory / f"{fig.figure}.csv"
            path.write_text(figure_to_csv(fig))
        elif fmt == "json":
            path = directory / f"{fig.figure}.json"
            path.write_text(figure_to_json(fig))
        elif fmt == "txt":
            path = directory / f"{fig.figure}.txt"
            path.write_text(fig.format() + "\n")
        else:
            raise ValueError(f"unknown export format {fmt!r}")
        written.append(path)
    return written
