"""Ablation studies for the design choices DESIGN.md calls out.

Not part of the paper's evaluation - these quantify our implementation
decisions:

* batching - the vectorized executor vs the literal per-round loop
  (identical outputs, large wall-clock difference);
* removal policy - alternative (a) never-reactivate vs alternative (b)
  reactivation (Section 3.1 discusses both; (a) preserves optimality);
* cost model - constant-per-tuple NEEDLETAIL pricing vs the pessimistic
  block-cache model;
* kappa - the paper's footnote claims kappa near 1 changes little.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.ifocus import _run_ifocus as run_ifocus
from repro.core.reference import run_ifocus_reference
from repro.core.registry import run_algorithm
from repro.data.synthetic import make_mixture_dataset
from repro.engines.memory import InMemoryEngine
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.needletail.cost import BlockCacheCostModel, NeedletailCostModel
from repro.viz.properties import check_ordering

__all__ = [
    "ablation_batching",
    "ablation_removal_policy",
    "ablation_cost_model",
    "ablation_kappa",
]


def ablation_batching(scale: Scale | None = None) -> FigureResult:
    """Vectorized executor vs reference loop: wall-clock and equivalence."""
    scale = scale or current_scale()
    size = min(scale.default_size, 60_000)
    rows = []
    for trial in range(3):
        seed = scale.seed + 200 + trial
        # Materialized groups have stream-stable samplers, so the two
        # executors are bit-for-bit identical (virtual groups consume RNG
        # state batch-size-dependently and match only in distribution).
        population = make_mixture_dataset(
            k=scale.k, total_size=size, seed=seed, materialize=True
        )
        engine = InMemoryEngine(population)
        t0 = time.perf_counter()
        fast = run_ifocus(engine, delta=scale.delta, seed=seed)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref = run_ifocus_reference(engine, delta=scale.delta, seed=seed)
        t_ref = time.perf_counter() - t0
        identical = bool(
            np.allclose(fast.estimates, ref.estimates)
            and np.array_equal(fast.samples_per_group, ref.samples_per_group)
        )
        rows.append(
            [trial, fast.total_samples, t_fast, t_ref, t_ref / max(t_fast, 1e-9), identical]
        )
    return FigureResult(
        figure="ablation-batching",
        title="Vectorized executor vs reference loop",
        headers=["trial", "samples", "fast_s", "reference_s", "speedup", "identical"],
        rows=rows,
    )


def ablation_removal_policy(scale: Scale | None = None) -> FigureResult:
    """Never-reactivate (a) vs reactivation (b)."""
    scale = scale or current_scale()
    size = min(scale.default_size, 100_000)
    rows = []
    for policy, reactivate in (("a: never-reactivate", False), ("b: reactivate", True)):
        samples, correct = [], []
        for t in range(scale.trials):
            seed = scale.seed + 300 + t
            population = make_mixture_dataset(k=scale.k, total_size=size, seed=seed)
            engine = InMemoryEngine(population)
            res = run_ifocus_reference(
                engine, delta=scale.delta, seed=seed, reactivation=reactivate
            )
            samples.append(res.total_samples)
            correct.append(check_ordering(res.estimates, population.true_means()))
        rows.append([policy, float(np.mean(samples)), float(np.mean(correct))])
    return FigureResult(
        figure="ablation-removal",
        title="Active-set removal policy (Section 3.1 alternatives)",
        headers=["policy", "mean_samples", "accuracy"],
        rows=rows,
        notes=["(b) may take extra samples; optimality is only proven for (a)"],
    )


def ablation_cost_model(scale: Scale | None = None) -> FigureResult:
    """Constant-per-tuple vs block-cache pricing.

    Two regimes, both reported:

    * ``sparse-10k``: 10k samples over a 1e9-row table (pages >> samples) -
      the regime where the block-cache model is pessimistic, pricing every
      fresh 4 KB page as a random read;
    * algorithm runs at a moderate size, where dense sampling saturates the
      cache and the block-cache total is *capped* at pages x read_time
      (so it can undercut the constant model - cache hits are free I/O).
    """
    scale = scale or current_scale()
    rows = []

    # Sparse unit comparison: same 10k samples, both models, huge table.
    sparse_rows, sparse_samples = 10**9, 10_000
    io_const, _ = NeedletailCostModel().sample_cost(sparse_samples)
    io_cache, _ = BlockCacheCostModel(total_rows=sparse_rows, row_bytes=8).sample_cost(
        sparse_samples
    )
    rows.append(["(unit) sparse-10k", "constant", sparse_samples, io_const, 0.0])
    rows.append(["(unit) sparse-10k", "block-cache", sparse_samples, io_cache, 0.0])

    size = min(scale.default_size, 200_000)
    for alg in ("ifocus", "roundrobin", "scan"):
        for model_name in ("constant", "block-cache"):
            population = make_mixture_dataset(
                k=scale.k, total_size=size, seed=scale.seed + 400
            )
            if model_name == "constant":
                cm = NeedletailCostModel()
            else:
                cm = BlockCacheCostModel(total_rows=size, row_bytes=8)
            engine = InMemoryEngine(population, cost_model=cm)
            res = run_algorithm(
                alg, engine, delta=scale.delta, seed=scale.seed + 400
            )
            stats = res.stats
            rows.append(
                [alg, model_name, res.total_samples, stats.io_seconds, stats.cpu_seconds]
            )
    return FigureResult(
        figure="ablation-costmodel",
        title="Cost-model ablation: constant-per-tuple vs block-cache",
        headers=["workload", "model", "samples", "io_s", "cpu_s"],
        rows=rows,
        notes=[
            "block-cache prices first touches of 4 KB pages as random reads; "
            "pessimistic for sparse sampling, capped for dense sampling",
        ],
    )


def ablation_kappa(scale: Scale | None = None) -> FigureResult:
    """Effect of the kappa grid parameter (paper footnote: ~none near 1)."""
    scale = scale or current_scale()
    size = min(scale.default_size, 100_000)
    rows = []
    for kappa in (1.0, 1.01, 1.1, 1.5, 2.0):
        samples, correct = [], []
        for t in range(scale.trials):
            seed = scale.seed + 500 + t
            population = make_mixture_dataset(k=scale.k, total_size=size, seed=seed)
            engine = InMemoryEngine(population)
            res = run_ifocus(engine, delta=scale.delta, kappa=kappa, seed=seed)
            samples.append(res.total_samples)
            correct.append(check_ordering(res.estimates, population.true_means()))
        rows.append([kappa, float(np.mean(samples)), float(np.mean(correct))])
    return FigureResult(
        figure="ablation-kappa",
        title="kappa sensitivity (paper footnote: kappa ~ 1 is immaterial)",
        headers=["kappa", "mean_samples", "accuracy"],
        rows=rows,
    )
