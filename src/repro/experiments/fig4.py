"""Figure 4 reproduction: simulated runtimes vs dataset size.

Total (a), I/O (b) and CPU (c) time for the six sampling algorithms plus
SCAN, on the mixture workload, through the calibrated NEEDLETAIL cost model.
The paper's claims to reproduce: SCAN grows linearly (and is CPU-bound);
sampling algorithms grow sublinearly; the resolution variants are flat above
10^8; IFOCUS < IREFINE < ROUNDROBIN < SCAN at every size.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import algorithm_names
from repro.data.synthetic import make_mixture_dataset
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_trials, should_materialize

__all__ = ["fig4_runtime_vs_size"]


def fig4_runtime_vs_size(scale: Scale | None = None) -> FigureResult:
    """Simulated total/I-O/CPU seconds vs dataset size, including SCAN."""
    scale = scale or current_scale()
    algorithms = algorithm_names(include_scan=True)
    rows = []
    series: dict[str, dict[int, dict[str, float]]] = {a: {} for a in algorithms}
    for size in scale.dataset_sizes:
        def factory(seed: int, size=size):
            return make_mixture_dataset(
                k=scale.k, total_size=size, seed=seed,
                materialize=should_materialize(size),
            )

        for alg in algorithms:
            trials = scale.trials if alg != "scan" else 1
            results = run_trials(
                factory,
                alg,
                trials,
                delta=scale.delta,
                resolution=scale.resolution,
                seed=scale.seed + 3,
            )
            io = float(np.mean([r.io_seconds for r in results]))
            cpu = float(np.mean([r.cpu_seconds for r in results]))
            series[alg][size] = {"io": io, "cpu": cpu, "total": io + cpu}
            rows.append([size, alg, io + cpu, io, cpu])
    notes = [
        "simulated seconds via the calibrated NEEDLETAIL cost model "
        "(800 MB/s scan, 10M hash probes/s, constant-per-tuple sampling)",
    ]
    return FigureResult(
        figure="fig4",
        title="Total / I-O / CPU time vs dataset size",
        headers=["size", "algorithm", "total_s", "io_s", "cpu_s"],
        rows=rows,
        notes=notes,
        raw={"series": series},
    )
