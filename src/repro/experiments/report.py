"""Paper-style tabular reports for the figure/table reproductions.

Every experiment function returns a :class:`FigureResult`; its ``format()``
renders the same rows/series the paper plots, as a fixed-width text table the
benchmark harness prints.  EXPERIMENTS.md records these outputs against the
paper's reported shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["FigureResult", "format_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list[Any]], title: str = "") -> str:
    """Render an aligned fixed-width table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class FigureResult:
    """One reproduced figure or table."""

    figure: str  # e.g. "fig3a"
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    raw: Any = None  # experiment-specific payload (series dicts, traces, ...)

    def format(self) -> str:
        out = format_table(self.headers, self.rows, title=f"{self.figure}: {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def column(self, header: str) -> list[Any]:
        """One column of the table by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]
