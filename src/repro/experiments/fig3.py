"""Figure 3 reproductions: sampling vs dataset size, samples-vs-time, delta.

* Fig 3(a): percentage of the dataset sampled as a function of dataset size
  for the six algorithms (mixture workload, k = 10, delta = 0.05, r = 1).
* Fig 3(b): scatter of total samples vs simulated total runtime across all
  (algorithm, size) runs - the paper's evidence that runtime tracks samples.
* Fig 3(c): percentage sampled as a function of delta at the default size.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import algorithm_names
from repro.data.synthetic import make_mixture_dataset
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    mean_percentage_sampled,
    run_trials,
    should_materialize,
)

__all__ = ["fig3a_percentage_vs_size", "fig3b_samples_vs_time", "fig3c_percentage_vs_delta"]


def _mixture_factory(size: int, scale: Scale):
    def factory(seed: int):
        return make_mixture_dataset(
            k=scale.k, total_size=size, seed=seed,
            materialize=should_materialize(size),
        )

    return factory


def fig3a_percentage_vs_size(scale: Scale | None = None) -> FigureResult:
    """Percentage sampled vs dataset size for all six algorithms."""
    scale = scale or current_scale()
    algorithms = algorithm_names()
    rows = []
    series: dict[str, dict[int, float]] = {a: {} for a in algorithms}
    accuracy: dict[str, list[bool]] = {a: [] for a in algorithms}
    for size in scale.dataset_sizes:
        row: list[object] = [size]
        for alg in algorithms:
            results = run_trials(
                _mixture_factory(size, scale),
                alg,
                scale.trials,
                delta=scale.delta,
                resolution=scale.resolution,
                seed=scale.seed,
            )
            pct = mean_percentage_sampled(results)
            series[alg][size] = pct
            accuracy[alg].extend(r.correct for r in results)
            row.append(pct)
        rows.append(row)
    notes = [
        f"workload=mixture k={scale.k} delta={scale.delta} r={scale.resolution} "
        f"trials={scale.trials}",
        "accuracy: "
        + ", ".join(
            f"{a}={100.0 * np.mean(accuracy[a]):.0f}%" for a in algorithms
        ),
    ]
    return FigureResult(
        figure="fig3a",
        title="Percentage sampled vs dataset size",
        headers=["size"] + algorithms,
        rows=rows,
        notes=notes,
        raw={"series": series, "accuracy": accuracy},
    )


def fig3b_samples_vs_time(scale: Scale | None = None) -> FigureResult:
    """Samples vs simulated runtime scatter (one point per algorithm x size)."""
    scale = scale or current_scale()
    algorithms = algorithm_names()
    rows = []
    points = []
    for size in scale.dataset_sizes:
        for alg in algorithms:
            results = run_trials(
                _mixture_factory(size, scale),
                alg,
                max(scale.trials // 2, 2),
                delta=scale.delta,
                resolution=scale.resolution,
                seed=scale.seed + 1,
            )
            samples = float(np.mean([r.total_samples for r in results]))
            seconds = float(np.mean([r.total_seconds for r in results]))
            points.append((alg, size, samples, seconds))
            rows.append([alg, size, samples, seconds, samples / max(seconds, 1e-12)])
    # Runtime-proportionality check: correlation of samples and time.
    s = np.array([p[2] for p in points])
    t = np.array([p[3] for p in points])
    corr = float(np.corrcoef(s, t)[0, 1]) if len(points) > 2 else 1.0
    return FigureResult(
        figure="fig3b",
        title="Samples vs total simulated time (runtime tracks samples)",
        headers=["algorithm", "size", "samples", "seconds", "samples_per_sec"],
        rows=rows,
        notes=[f"pearson corr(samples, time) = {corr:.4f} (paper: linear scatter)"],
        raw={"points": points, "correlation": corr},
    )


def fig3c_percentage_vs_delta(scale: Scale | None = None) -> FigureResult:
    """Percentage sampled vs delta for all six algorithms (default size)."""
    scale = scale or current_scale()
    algorithms = algorithm_names()
    rows = []
    series: dict[str, dict[float, float]] = {a: {} for a in algorithms}
    factory = _mixture_factory(scale.default_size, scale)
    for delta in scale.deltas:
        row: list[object] = [delta]
        for alg in algorithms:
            results = run_trials(
                factory,
                alg,
                scale.trials,
                delta=delta,
                resolution=scale.resolution,
                seed=scale.seed + 2,
            )
            pct = mean_percentage_sampled(results)
            series[alg][delta] = pct
            row.append(pct)
        rows.append(row)
    notes = [
        "percentage decreases with delta but does not approach 0 "
        "(the log k and log log(1/eta) terms are delta-independent)",
    ]
    return FigureResult(
        figure="fig3c",
        title="Percentage sampled vs delta",
        headers=["delta"] + algorithms,
        rows=rows,
        notes=notes,
        raw={"series": series},
    )
