"""Experiment harness: one function per paper figure/table, plus ablations."""

from repro.experiments.ablations import (
    ablation_batching,
    ablation_cost_model,
    ablation_kappa,
    ablation_removal_policy,
)
from repro.experiments.config import PAPER, SMOKE, Scale, current_scale
from repro.experiments.fig3 import (
    fig3a_percentage_vs_size,
    fig3b_samples_vs_time,
    fig3c_percentage_vs_delta,
)
from repro.experiments.fig4 import fig4_runtime_vs_size
from repro.experiments.fig5 import (
    fig5a_heuristic_accuracy,
    fig5b_heuristic_accuracy_hard,
    fig5c_active_groups_convergence,
)
from repro.experiments.fig6 import (
    fig6a_incorrect_pairs,
    fig6b_percentage_vs_groups,
    fig6c_difficulty_vs_groups,
)
from repro.experiments.fig7 import (
    fig7a_percentage_vs_skew,
    fig7b_percentage_vs_std,
    fig7c_difficulty_vs_std,
)
from repro.experiments.export import figure_to_csv, figure_to_json, write_figure
from repro.experiments.headline import headline_claims
from repro.experiments.report import FigureResult, format_table
from repro.experiments.runner import TrialResult, run_trial, run_trials
from repro.experiments.table1 import table1_execution_trace
from repro.experiments.table3 import table3_flights_runtimes

__all__ = [
    "PAPER",
    "SMOKE",
    "Scale",
    "current_scale",
    "FigureResult",
    "format_table",
    "TrialResult",
    "run_trial",
    "run_trials",
    "fig3a_percentage_vs_size",
    "fig3b_samples_vs_time",
    "fig3c_percentage_vs_delta",
    "fig4_runtime_vs_size",
    "fig5a_heuristic_accuracy",
    "fig5b_heuristic_accuracy_hard",
    "fig5c_active_groups_convergence",
    "fig6a_incorrect_pairs",
    "fig6b_percentage_vs_groups",
    "fig6c_difficulty_vs_groups",
    "fig7a_percentage_vs_skew",
    "fig7b_percentage_vs_std",
    "fig7c_difficulty_vs_std",
    "figure_to_csv",
    "figure_to_json",
    "write_figure",
    "headline_claims",
    "table1_execution_trace",
    "table3_flights_runtimes",
    "ablation_batching",
    "ablation_cost_model",
    "ablation_kappa",
    "ablation_removal_policy",
]
