"""Section 8 headline claims: tiny sample fractions and large speedups.

The paper's conclusion quantifies the win at its largest scale (1e10 rows):
visualizations with correct visual properties after sampling **< 0.02%** of
the data, **> 60x** faster than ROUNDROBIN-with-guarantees and **~1000x**
faster than SCAN.  This experiment measures the same three quantities at the
campaign's largest dataset size (1e10 at paper scale; proportionally smaller
at smoke scale, where the sampled *fraction* is necessarily larger because
the absolute sample count is roughly size-independent).
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import make_mixture_dataset
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_trials

__all__ = ["headline_claims"]


def headline_claims(scale: Scale | None = None) -> FigureResult:
    """Percent sampled and speedups vs ROUNDROBIN/SCAN at the largest size."""
    scale = scale or current_scale()
    size = max(scale.dataset_sizes)

    def factory(seed: int):
        return make_mixture_dataset(k=scale.k, total_size=size, seed=seed)

    rows = []
    measured: dict[str, dict[str, float]] = {}
    for alg in ("ifocusr", "roundrobin", "scan"):
        trials = 1 if alg == "scan" else max(scale.trials // 2, 2)
        results = run_trials(
            factory,
            alg,
            trials,
            delta=scale.delta,
            resolution=scale.resolution,
            seed=scale.seed + 7,
        )
        pct = float(np.mean([r.percent_sampled for r in results]))
        secs = float(np.mean([r.total_seconds for r in results]))
        measured[alg] = {"pct": pct, "seconds": secs}
        rows.append([alg, size, pct, secs])

    speedup_rr = measured["roundrobin"]["seconds"] / max(measured["ifocusr"]["seconds"], 1e-12)
    speedup_scan = measured["scan"]["seconds"] / max(measured["ifocusr"]["seconds"], 1e-12)
    notes = [
        f"IFOCUS-R sampled {measured['ifocusr']['pct']:.4g}% of {size:.0e} rows "
        "(paper at 1e10: < 0.02%)",
        f"speedup vs ROUNDROBIN: {speedup_rr:.1f}x (paper: > 60x at 1e10)",
        f"speedup vs SCAN: {speedup_scan:.1f}x (paper: ~1000x at 1e10)",
    ]
    return FigureResult(
        figure="headline",
        title="Section 8 headline claims at the largest dataset size",
        headers=["algorithm", "size", "percent_sampled", "sim_seconds"],
        rows=rows,
        notes=notes,
        raw={"speedup_rr": speedup_rr, "speedup_scan": speedup_scan, "measured": measured},
    )
