"""Table 3 reproduction: flight-records runtimes.

For each of the three attributes (Elapsed Time, Arrival Delay, Departure
Delay) grouped by carrier, and each dataset size, measure the simulated
runtime of ROUNDROBIN, IFOCUS and IFOCUS-R (r = 1% of the value range).
Shapes to reproduce from the paper: IFOCUS ~3x faster than ROUNDROBIN,
IFOCUS-R ~6x; runtimes grow mildly (not 100x) across a 100x size scale-up,
driven by the conflicting carrier pairs with nearly equal means.
"""

from __future__ import annotations

from repro.core.registry import run_algorithm
from repro.data.flights import FLIGHT_ATTRIBUTES, make_flights_population
from repro.engines.memory import InMemoryEngine
from repro.experiments.config import Scale, current_scale
from repro.experiments.report import FigureResult
from repro.needletail.cost import NeedletailCostModel
from repro.viz.properties import check_ordering

__all__ = ["table3_flights_runtimes"]

_ALGS = ("roundrobin", "ifocus", "ifocusr")


def table3_flights_runtimes(scale: Scale | None = None) -> FigureResult:
    """Simulated runtimes on the synthetic flight data (Table 3)."""
    scale = scale or current_scale()
    rows = []
    all_correct = True
    for attribute in FLIGHT_ATTRIBUTES:
        _, c, _ = FLIGHT_ATTRIBUTES[attribute]
        resolution = 0.01 * c  # the paper's "IFOCUSR (1%)"
        for alg in _ALGS:
            row: list[object] = [attribute, alg]
            for size in scale.flights_sizes:
                population = make_flights_population(
                    attribute, total_rows=size, seed=scale.seed
                )
                engine = InMemoryEngine(population, cost_model=NeedletailCostModel())
                result = run_algorithm(
                    alg,
                    engine,
                    delta=scale.delta,
                    resolution=resolution if alg == "ifocusr" else 0.0,
                    seed=scale.seed + size % 97,
                )
                grading_res = resolution if alg == "ifocusr" else 0.0
                ok = check_ordering(
                    result.estimates, population.true_means(), resolution=grading_res
                )
                all_correct = all_correct and ok
                row.append(result.stats.total_seconds)
            rows.append(row)
    notes = [
        f"sizes: {list(scale.flights_sizes)}; r = 1% of each attribute's range",
        f"orderings returned were {'all correct' if all_correct else 'NOT all correct'} "
        "(paper: all correct)",
    ]
    return FigureResult(
        figure="table3",
        title="Flight data: simulated runtime (seconds)",
        headers=["attribute", "algorithm"] + [f"{s:.0e}" for s in scale.flights_sizes],
        rows=rows,
        notes=notes,
    )
