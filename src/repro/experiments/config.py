"""Experiment scales: paper-faithful parameters vs fast smoke parameters.

Every figure/table function takes a :class:`Scale`.  ``PAPER`` mirrors the
paper's setup (dataset sizes 1e7-1e10, 100 datasets per point, k = 10,
delta = 0.05, r = 1 on the [0, 100] value domain).  ``SMOKE`` shrinks sizes
and trial counts so the full benchmark suite finishes in minutes on a laptop
while preserving every qualitative shape.  Select with the ``REPRO_SCALE``
environment variable (``smoke`` default, ``paper`` for the full run).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["Scale", "SMOKE", "PAPER", "current_scale"]


@dataclass(frozen=True)
class Scale:
    """Knobs for one experiment campaign."""

    name: str
    dataset_sizes: tuple[int, ...]  # Fig 3(a)/4 sweep
    default_size: int  # the "10M records" default dataset
    trials: int  # datasets per data point (paper: 100)
    delta: float = 0.05
    k: int = 10
    resolution: float = 1.0  # r = 1 (1% of c = 100)
    group_counts: tuple[int, ...] = (5, 10, 20, 50)  # Fig 6(b)/(c)
    skew_fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)  # Fig 7(a)
    deltas: tuple[float, ...] = (0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.99)
    stds: tuple[float, ...] = (2.0, 5.0, 8.0, 10.0)  # Fig 7(b)/(c)
    heuristic_factors: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
    hard_factors: tuple[float, ...] = (1.0, 1.01, 1.05, 1.1, 1.15, 1.2)
    hard_gamma: float = 0.1
    flights_sizes: tuple[int, ...] = field(default=(10**8, 10**9, 10**10))
    groups_size_each: int = 1_000_000  # Fig 6(b): records per group
    seed: int = 0


SMOKE = Scale(
    name="smoke",
    dataset_sizes=(10**6, 10**7, 10**8),
    default_size=200_000,
    trials=5,
    group_counts=(5, 10, 20),
    skew_fractions=(0.1, 0.5, 0.9),
    deltas=(0.01, 0.05, 0.2, 0.5, 0.99),
    stds=(2.0, 5.0, 8.0, 10.0),
    # Smoke-sized hard instance.  The paper's gamma=0.1 with factors up to
    # 1.2 needs ~1e6 rounds per group to show mistakes; at smoke sizes the
    # groups exhaust (exact answers) before aggressive shrinking can bite,
    # so we keep gamma moderate and extend the factor range instead.  The
    # PAPER scale uses the paper's exact parameters.
    hard_gamma=0.4,
    hard_factors=(1.0, 1.2, 2.0, 8.0, 32.0),
    flights_sizes=(10**5, 10**6, 10**7),
    groups_size_each=20_000,
)

PAPER = Scale(
    name="paper",
    dataset_sizes=(10**7, 10**8, 10**9, 10**10),
    default_size=10_000_000,
    trials=100,
    flights_sizes=(10**8, 10**9, 10**10),
)


def current_scale() -> Scale:
    """Scale selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "smoke").lower()
    if name == "paper":
        return PAPER
    if name == "smoke":
        return SMOKE
    raise ValueError(f"REPRO_SCALE must be 'smoke' or 'paper', got {name!r}")
