"""Trial runner: one (dataset, algorithm) execution with full bookkeeping.

The paper's methodology (Section 5.2): every data point averages 100 trials,
each trial generating a *fresh* dataset with the sweep's parameters, running
the algorithm, and recording samples taken, whether the output respects the
(possibly relaxed) ordering property, and the simulated CPU/I-O times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.registry import RESOLUTION_VARIANTS, run_algorithm
from repro.data.population import Population
from repro.engines.base import CostModel
from repro.engines.memory import InMemoryEngine
from repro.needletail.cost import NeedletailCostModel
from repro.viz.properties import check_ordering

__all__ = [
    "TrialResult",
    "run_trial",
    "run_trials",
    "mean_percentage_sampled",
    "MATERIALIZE_BELOW",
    "should_materialize",
]

PopulationFactory = Callable[[int], Population]

# Populations at or below this many rows are materialized by the experiment
# factories, so without-replacement draws are genuine permutations.  Above
# it, virtual (distribution-backed) groups stand in; their with-replacement
# draws match without-replacement statistics only while m << n_i, which
# holds because the algorithms' absolute sample counts are roughly
# size-independent (see DESIGN.md section 4).
MATERIALIZE_BELOW = 2_000_000


def should_materialize(total_size: int) -> bool:
    """Materialize small populations; keep big ones virtual."""
    return total_size <= MATERIALIZE_BELOW


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one algorithm run on one generated dataset."""

    algorithm: str
    dataset_size: int
    total_samples: int
    percent_sampled: float
    correct: bool
    io_seconds: float
    cpu_seconds: float
    rounds: int
    difficulty: float  # c^2 / eta^2 of the generated dataset

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds


def run_trial(
    population: Population,
    algorithm: str,
    *,
    delta: float = 0.05,
    resolution: float = 1.0,
    seed: int | None = None,
    cost_model: CostModel | None = None,
    **kwargs,
) -> TrialResult:
    """Run one algorithm over one population and grade the output.

    The "-r" algorithm variants are graded against the *relaxed* ordering
    property with the same resolution they were given, exactly as the paper
    evaluates them; plain variants are graded on strict ordering.
    """
    engine = InMemoryEngine(
        population,
        cost_model=cost_model if cost_model is not None else NeedletailCostModel(),
    )
    result = run_algorithm(
        algorithm, engine, delta=delta, resolution=resolution, seed=seed, **kwargs
    )
    grading_resolution = resolution if algorithm in RESOLUTION_VARIANTS else 0.0
    true = population.true_means()
    correct = check_ordering(result.estimates, true, resolution=grading_resolution)
    total = population.total_size
    stats = result.stats
    return TrialResult(
        algorithm=algorithm,
        dataset_size=total,
        total_samples=result.total_samples,
        percent_sampled=100.0 * result.total_samples / total,
        correct=bool(correct),
        io_seconds=float(stats.io_seconds) if stats is not None else 0.0,
        cpu_seconds=float(stats.cpu_seconds) if stats is not None else 0.0,
        rounds=result.rounds,
        difficulty=population.difficulty(),
    )


def run_trials(
    factory: PopulationFactory,
    algorithm: str,
    trials: int,
    *,
    delta: float = 0.05,
    resolution: float = 1.0,
    seed: int = 0,
    cost_model_factory: Callable[[], CostModel] | None = None,
    **kwargs,
) -> list[TrialResult]:
    """Run ``trials`` independent trials, each on a freshly generated dataset.

    ``factory(trial_seed)`` must return a new population; the same seed is
    also used for the sampling streams so the whole campaign replays from one
    integer.
    """
    out = []
    for t in range(trials):
        trial_seed = seed * 100_003 + t
        population = factory(trial_seed)
        cm = cost_model_factory() if cost_model_factory is not None else None
        out.append(
            run_trial(
                population,
                algorithm,
                delta=delta,
                resolution=resolution,
                seed=trial_seed,
                cost_model=cm,
                **kwargs,
            )
        )
    return out


def mean_percentage_sampled(results: list[TrialResult]) -> float:
    return float(np.mean([r.percent_sampled for r in results]))
