"""Admission control: per-tenant quotas, a bounded queue, load shedding.

The policy, in order, for every incoming execution (cache hits and
single-flight followers never get here - they consume no execution slot):

1. **Admit** - the tenant has fewer than ``max_concurrent`` queries
   sampling: the request takes a slot and runs immediately.
2. **Queue** - the tenant is at quota but its bounded queue has room: the
   request waits (FIFO).  A finishing query hands its slot to the oldest
   waiter directly, so the running count never dips below quota while
   there is demand.  A queued request can be *cancelled* (``DELETE
   /query/{id}``): it leaves the queue without ever running.
3. **Shed** - the queue is full: the request is rejected *now* with a
   structured :class:`QueryShed` error carrying a ``retry_after_ms`` hint
   (HTTP 429 on the wire).  Nothing is ever queued unboundedly; a client
   storm degrades into fast, explicit rejections instead of latency
   collapse.

Tenants are isolated by construction: each tenant's running count and
queue are its own, so one tenant saturating its quota never delays
another's admission (the shared substrate below - session submit pools -
is sized by the service to at least the sum of provisioned quotas).

Everything here runs on the service event loop; no locks.
"""

from __future__ import annotations

import asyncio

from repro.errors import QueryCancelled, ReproError
from repro.serve.tenants import TenantRegistry, _TenantState

__all__ = ["QueryShed", "Admission", "AdmissionController"]


class QueryShed(ReproError):
    """The tenant's admission queue is full; the request was rejected.

    Attributes:
        tenant: the tenant that was shed.
        retry_after_ms: hint for when retrying is likely to be admitted
            (also sent as the HTTP ``Retry-After`` header, in seconds).
    """

    def __init__(self, tenant: str, retry_after_ms: int) -> None:
        self.tenant = tenant
        self.retry_after_ms = int(retry_after_ms)
        super().__init__(
            f"tenant {tenant!r} is at quota with a full admission queue; "
            f"retry in ~{retry_after_ms}ms"
        )


class Admission:
    """One granted-or-queued admission; a context manager around the slot.

    ``await wait()`` blocks until the slot is granted (instant when
    admitted directly).  ``release()`` returns the slot (idempotent) -
    always call it from a ``finally``.  ``cancel()`` abandons a *queued*
    admission: the entry leaves the queue without running and ``wait()``
    raises :class:`~repro.errors.QueryCancelled` in the waiting handler.
    """

    def __init__(
        self,
        controller: "AdmissionController",
        state: _TenantState,
        waiter: "asyncio.Future | None",
    ) -> None:
        self._controller = controller
        self._state = state
        self._waiter = waiter
        self._granted = waiter is None
        self._released = False

    @property
    def queued(self) -> bool:
        """True while the admission is still waiting in the queue."""
        return self._waiter is not None and not self._waiter.done()

    async def wait(self) -> None:
        if self._granted:
            return
        waiter = self._waiter
        assert waiter is not None
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.cancelled():
                # cancel() fired: the entry already left the queue.
                raise QueryCancelled("cancelled while queued for admission") from None
            # The *handler task* was cancelled (client gone) while queued:
            # withdraw from the queue so the slot is never granted to a
            # request nobody is waiting on.
            if waiter in self._state.waiters:
                self._state.waiters.remove(waiter)
            raise
        self._granted = True
        self._state.counters.admitted += 1

    def cancel(self) -> bool:
        """Remove a still-queued admission; True if there was one to remove."""
        waiter = self._waiter
        if waiter is None or waiter.done():
            return False
        self._state.waiters.remove(waiter)
        waiter.cancel()
        return True

    def release(self) -> None:
        """Return the execution slot (idempotent).

        If another request is queued, the slot transfers to it directly -
        the tenant's running count stays at quota, the waiter's ``wait()``
        resumes.  Otherwise the running count drops.
        """
        if self._released:
            return
        self._released = True
        if not self._granted:
            # Never held a slot (shed/cancelled before grant): nothing to return.
            return
        state = self._state
        while state.waiters:
            waiter = state.waiters.pop(0)
            if not waiter.done():  # pragma: no branch - done waiters were cancelled
                waiter.set_result(None)
                return
        state.running -= 1


class AdmissionController:
    """Applies the admit/queue/shed policy against a :class:`TenantRegistry`."""

    #: Base unit of the retry-after estimate (see :meth:`retry_after_ms`).
    BASE_RETRY_MS = 250

    def __init__(self, tenants: TenantRegistry) -> None:
        self.tenants = tenants

    def submit(self, tenant: str) -> Admission:
        """Apply the policy for one execution; raises :class:`QueryShed`.

        Returns an :class:`Admission` that is either already granted
        (``await wait()`` is a no-op) or queued.  The caller owns the slot
        until ``release()``.
        """
        state = self.tenants.state(tenant)
        config = state.config
        if state.running < config.max_concurrent:
            state.running += 1
            state.counters.admitted += 1
            return Admission(self, state, None)
        if len(state.waiters) >= config.queue_limit:
            state.counters.shed += 1
            raise QueryShed(tenant, self.retry_after_ms(state))
        waiter = asyncio.get_running_loop().create_future()
        state.waiters.append(waiter)
        state.counters.queued += 1
        return Admission(self, state, waiter)

    def retry_after_ms(self, state: _TenantState) -> int:
        """A load-proportional retry hint for shed requests.

        The estimate assumes each outstanding query costs roughly
        :data:`BASE_RETRY_MS` of service time, spread over the tenant's
        ``max_concurrent`` lanes:  ``base * outstanding / quota``.  It is a
        *hint* - well-behaved clients back off at least this long; the
        server re-sheds early arrivals anyway, so a wrong estimate costs
        one cheap round trip, never correctness.
        """
        outstanding = state.running + len(state.waiters) + 1
        return int(
            self.BASE_RETRY_MS * outstanding / max(1, state.config.max_concurrent)
        )
