"""HTTP/JSON wire helpers: request parsing, spec building, error shapes.

The service speaks one request shape on both execution endpoints
(``POST /query`` and ``POST /stream``)::

    {
      "sql":  "SELECT carrier, AVG(delay) FROM flights GROUP BY carrier",
      // ... or a full spec (QuerySpec.to_dict() form):
      "spec": {"table": "flights", "group_by": ["carrier"], ...},
      "seed": 0,                  // optional; default service seed
      "query_id": "dash-17"       // optional client token for DELETE-to-cancel
    }

Exactly one of ``sql``/``spec`` must be present.  SQL text is lowered by
the session front door (inheriting the service session's default engine,
algorithm, and delta, with schema validation); a ``spec`` object is
revalidated by :meth:`QuerySpec.from_dict`.  Tenant-scoped defaults
(``deadline_ms``, ``max_retries``) fill any knob the request left unset.

Errors are always structured::

    {"error": {"code": "shed", "message": "...", "retry_after_ms": 750}}

with the HTTP status carrying the class (400 bad request, 404 unknown,
409 duplicate query id, 429 shed, 499 cancelled, 500 internal).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.errors import ReproError
from repro.serve.tenants import TenantConfig
from repro.session.spec import QuerySpec

__all__ = [
    "WireError",
    "QueryRequest",
    "parse_json_body",
    "build_query_request",
    "apply_tenant_defaults",
    "error_payload",
    "canonical_json",
]


class WireError(ReproError):
    """A structured client-facing error with an HTTP status and code."""

    def __init__(
        self, status: int, code: str, message: str, **extra
    ) -> None:
        self.status = int(status)
        self.code = code
        self.extra = extra
        super().__init__(message)

    def payload(self) -> dict:
        return error_payload(self.code, str(self), **self.extra)


def error_payload(code: str, message: str, **extra) -> dict:
    """The one error envelope every failure path uses."""
    body = {"code": code, "message": message}
    body.update(extra)
    return {"error": body}


def canonical_json(obj) -> bytes:
    """Deterministic JSON bytes (sorted keys, tight separators).

    Canonical encoding is what makes "bit-identical results" a testable
    contract: every reader of one cached entry receives the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class QueryRequest:
    """One parsed execution request, ready for admission."""

    spec: QuerySpec
    seed: int | None
    query_id: str | None
    #: Keys the client set explicitly; tenant defaults skip these.
    explicit: frozenset


def parse_json_body(raw: bytes) -> dict:
    if not raw:
        raise WireError(400, "bad_request", "request body must be a JSON object")
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(400, "bad_json", f"request body is not valid JSON: {exc}")
    if not isinstance(body, dict):
        raise WireError(400, "bad_request", "request body must be a JSON object")
    return body


def build_query_request(body: dict, session, *, default_seed: int | None) -> QueryRequest:
    """Lower a request body to a validated :class:`QueryRequest`.

    ``session`` provides the SQL front door (schema-checked lowering with
    the service's default knobs) and the catalog used to reject unknown
    tables before admission.
    """
    sql = body.get("sql")
    spec_dict = body.get("spec")
    if (sql is None) == (spec_dict is None):
        raise WireError(
            400, "bad_request", "provide exactly one of 'sql' or 'spec'"
        )
    explicit: set = set()
    try:
        if sql is not None:
            if not isinstance(sql, str):
                raise WireError(400, "bad_request", "'sql' must be a string")
            spec = session.sql(sql).spec()
        else:
            if not isinstance(spec_dict, dict):
                raise WireError(400, "bad_request", "'spec' must be an object")
            explicit = set(spec_dict)
            spec = QuerySpec.from_dict(spec_dict)
    except WireError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(400, "bad_query", f"cannot build query: {exc}")
    if spec.table not in session.catalog:
        raise WireError(
            404,
            "unknown_table",
            f"unknown table {spec.table!r}; registered: {session.tables}",
        )
    seed = body.get("seed", default_seed)
    if seed is not None and not isinstance(seed, int):
        raise WireError(400, "bad_request", "'seed' must be an integer")
    query_id = body.get("query_id")
    if query_id is not None and (
        not isinstance(query_id, str) or not query_id or len(query_id) > 200
    ):
        raise WireError(
            400, "bad_request", "'query_id' must be a non-empty string (<= 200 chars)"
        )
    return QueryRequest(
        spec=spec, seed=seed, query_id=query_id, explicit=frozenset(explicit)
    )


def apply_tenant_defaults(request: QueryRequest, config: TenantConfig) -> QuerySpec:
    """Fill tenant-scoped defaults into knobs the request left unset.

    A spec that pinned its own ``deadline_ms`` (including an explicit JSON
    ``null`` for "really unlimited") keeps it; SQL-door queries never pin,
    so tenant defaults always apply there.
    """
    spec = request.spec
    changes: dict = {}
    if (
        config.deadline_ms is not None
        and spec.deadline_ms is None
        and "deadline_ms" not in request.explicit
    ):
        changes["deadline_ms"] = config.deadline_ms
    if config.max_retries is not None and "max_retries" not in request.explicit:
        changes["max_retries"] = config.max_retries
    return dataclasses.replace(spec, **changes) if changes else spec
