"""``repro.serve`` - the always-on multi-tenant query service.

One set of registered tables, served over HTTP/JSON to many consumers:
per-tenant admission control (quotas, bounded queueing, load shedding), a
shared result cache with single-flight collapse of concurrent identical
queries, SSE streaming of :class:`~repro.session.result.PartialUpdate`
convergence, and DELETE-to-cancel wired to the cooperative cancel tokens.
Start it with ``repro serve`` or embed :class:`QueryService` +
:func:`serve_in_thread` directly (how the tests and benchmarks run it).

Stdlib only: the HTTP layer is ~150 lines over ``asyncio.start_server``.
"""

from repro.serve.admission import Admission, AdmissionController, QueryShed
from repro.serve.app import (
    QueryService,
    ReproServer,
    ServerHandle,
    SessionPool,
    run_server,
    serve_in_thread,
)
from repro.serve.cache import CacheStats, Flight, ResultCache
from repro.serve.sse import SSE_HEADERS, sse_event
from repro.serve.tenants import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantCounters,
    TenantRegistry,
)
from repro.serve.wire import WireError, canonical_json, error_payload

__all__ = [
    "Admission",
    "AdmissionController",
    "QueryShed",
    "QueryService",
    "ReproServer",
    "ServerHandle",
    "SessionPool",
    "run_server",
    "serve_in_thread",
    "CacheStats",
    "Flight",
    "ResultCache",
    "SSE_HEADERS",
    "sse_event",
    "DEFAULT_TENANT",
    "TenantConfig",
    "TenantCounters",
    "TenantRegistry",
    "WireError",
    "canonical_json",
    "error_payload",
]
