"""Server-sent-events encoding for the streaming endpoint.

``POST /stream`` answers with ``Content-Type: text/event-stream`` and one
event per finalized group, exactly the shape ``.stream()`` yields locally:

* ``event: update`` / ``id: <n>`` - one :class:`PartialUpdate` as JSON;
  ``id`` is the update's 1-based sequence number, so an SSE client (or the
  ``Last-Event-ID`` convention) sees a monotonically increasing counter and
  ``data.emitted_so_far == id`` always.
* ``event: done`` - the final Result envelope, once, after the last update.
* ``event: error`` - a structured error payload if the run fails or is
  cancelled mid-stream; always terminal.

The encoder is deliberately tiny and dependency-free: SSE is just framed
lines over a long-lived response (data lines per chunk, blank-line
terminator), which is why it beats websockets for one-way bar-chart
convergence - every HTTP client, proxy, and ``curl`` already speaks it.
"""

from __future__ import annotations

import json

__all__ = ["sse_event", "SSE_HEADERS"]

#: Response headers for an event-stream reply.  ``no-cache`` keeps proxies
#: from buffering the stream into one giant flush at the end.
SSE_HEADERS = (
    ("Content-Type", "text/event-stream; charset=utf-8"),
    ("Cache-Control", "no-cache"),
    ("Connection", "close"),
)


def sse_event(
    data, *, event: str | None = None, event_id: int | str | None = None
) -> bytes:
    """Encode one server-sent event frame.

    ``data`` may be a pre-encoded string or any JSON-serializable object.
    Multi-line data is framed as multiple ``data:`` lines per the SSE spec.
    """
    if not isinstance(data, str):
        data = json.dumps(data, sort_keys=True, separators=(",", ":"))
    lines: list[str] = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    lines.extend(f"data: {chunk}" for chunk in data.split("\n"))
    return ("\n".join(lines) + "\n\n").encode("utf-8")
